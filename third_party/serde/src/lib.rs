//! Offline stand-in for the `serde` crate (marker-trait subset).
//!
//! Nothing in this workspace serializes *through* serde (JSON artifacts
//! are hand-written), but some types carry optional
//! `#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]`
//! attributes for downstream consumers. This stub supplies the traits and
//! no-op derives so those annotations compile offline.

#![forbid(unsafe_code)]

/// Marker for serializable types (no-op stand-in).
pub trait Serialize {}

/// Marker for deserializable types (no-op stand-in).
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
