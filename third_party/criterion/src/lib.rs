//! Offline stand-in for the `criterion` crate (API subset).
//!
//! Implements benchmark groups, `BenchmarkId`, `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros with simple wall-clock
//! measurement (fixed warm-up, mean/min report, no statistics or HTML
//! output).
//!
//! Because `cargo test` also executes `harness = false` bench targets,
//! benches run in **quick mode** (one warm-up + one sample per benchmark)
//! unless `CRITERION_FULL=1` is set, keeping the test suite fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a label plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
    parameter: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("solve", 16)` → `solve/16`.
    pub fn new(label: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: label.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.label, self.parameter)
    }
}

/// Times closures handed to it by the benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    num_samples: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.num_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                // The result is dropped; observable side effects (and the
                // non-inlinable call boundary) keep the work from being
                // optimized out in practice for these workloads.
                let _ = routine();
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed / self.iters_per_sample.max(1) as u32);
        }
    }
}

/// A named set of related benchmarks, created by
/// [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    quick: bool,
}

impl BenchmarkGroup {
    /// Sets the target measurement time (accepted for API compatibility;
    /// the stub always runs a fixed number of samples).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets the number of samples per benchmark (full mode only).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            num_samples: if self.quick { 1 } else { self.sample_size },
        };
        f(&mut b, input);
        if b.samples.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id);
            return self;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{}: mean {:?}, min {:?} ({} sample{})",
            self.name,
            id,
            mean,
            min,
            b.samples.len(),
            if b.samples.len() == 1 { "" } else { "s" }
        );
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Creates a driver; quick mode unless `CRITERION_FULL=1`.
    pub fn new() -> Self {
        Criterion {
            quick: std::env::var("CRITERION_FULL").map_or(true, |v| v != "1"),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            quick: self.quick,
        }
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group
            .measurement_time(Duration::from_secs(1))
            .sample_size(3);
        for n in [2u64, 4] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |bch, &n| {
                bch.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn id_formats_label_and_param() {
        assert_eq!(BenchmarkId::new("solve", 16).to_string(), "solve/16");
    }
}
