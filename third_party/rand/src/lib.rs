//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides exactly the surface the GOMIL workspace uses — seeded
//! [`rngs::StdRng`], [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! and [`SeedableRng::seed_from_u64`] — backed by SplitMix64. Statistical
//! quality is ample for test-vector generation; do not use for anything
//! security- or research-statistics-sensitive.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 128 bits.
    fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform sample over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u128()
    }
}

impl Standard for i128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u128() as i128
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u128() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                (s as i128 + (rng.next_u128() % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "cannot sample empty range");
        let span = e - s;
        if span == u128::MAX {
            return rng.next_u128();
        }
        s + rng.next_u128() % (span + 1)
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                s + u * (e - s)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator (SplitMix64 core).
    ///
    /// Not the real `StdRng` (ChaCha12): streams differ from upstream
    /// `rand`, but all in-tree uses derive expectations from sampled
    /// values rather than from a fixed stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Decorrelate small/sequential seeds.
            rng.next_u64();
            rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let f = rng.gen_range(0.1..3.0f64);
            assert!((0.1..3.0).contains(&f));
            let u = rng.gen_range(0..(1u128 << 100));
            assert!(u < 1u128 << 100);
            let w = rng.gen_range(5u32..6);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_covers_domain_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ones = 0;
        for _ in 0..1000 {
            if rng.gen::<bool>() {
                ones += 1;
            }
        }
        assert!((300..700).contains(&ones), "bool bias: {ones}");
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
