//! Offline stand-in for the `proptest` crate (API subset).
//!
//! Implements the surface the GOMIL workspace uses: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, range / [`any`] / tuple /
//! [`collection::vec`] strategies, and the `prop_assert*` / `prop_assume`
//! macros. Cases are generated from a deterministic per-test RNG; there
//! is **no shrinking** and no regression-file persistence. The case count
//! defaults to 64 and can be overridden with the `PROPTEST_CASES`
//! environment variable.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Why a single generated case did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed; carries the formatted message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(&'static str),
}

/// Number of cases each `proptest!` test runs (`PROPTEST_CASES` env
/// override, default 64).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test, per-case random source (SplitMix64).
pub mod test_runner {
    /// RNG handed to strategies while generating one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from the test name and case index, so
        /// failures reproduce without a persisted seed file.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng = TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            rng.next_u64();
            rng
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of values for one `proptest!` argument.
///
/// Unlike upstream proptest there is no value tree: `sample` directly
/// yields a value and failing cases are not shrunk.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let span = (e as i128 - s as i128) as u64 + 1;
                (s as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                s + rng.unit_f64() as $t * (e - s)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a whole-domain default strategy (subset of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (subset: only `vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`]: a fixed `usize`, a
    /// `Range<usize>`, or a `RangeInclusive<usize>`.
    pub trait IntoSizeRange {
        /// Converts to inclusive `(min, max)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Runs [`case_count`](crate::case_count) deterministic cases per test;
/// a `prop_assert*` failure panics with the case index (cases regenerate
/// deterministically from the test name + index, so no seed persistence
/// is needed).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::case_count();
                let mut __rejects = 0usize;
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => __rejects += 1,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case {}/{} for `{}` failed: {}",
                            __case + 1, __cases, stringify!($name), msg
                        ),
                    }
                }
                assert!(
                    __rejects < __cases,
                    "proptest `{}`: every case was rejected by prop_assume!",
                    stringify!($name)
                );
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a == __b, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a != __b, "assertion failed: both sides equal `{:?}`", __a);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 1u32..=8, (a, b) in (0i32..=3, any::<bool>())) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!((0..=3).contains(&a));
            let _ = b;
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0u8..=5, 2..=4).prop_map(|v| v.len())) {
            prop_assert!((2..=4).contains(&v));
        }

        #[test]
        fn assume_skips(n in 0u32..=1) {
            prop_assume!(n == 0);
            prop_assert_eq!(n, 0);
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
