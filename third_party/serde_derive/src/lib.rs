//! No-op `Serialize` / `Deserialize` derive macros for the offline serde
//! stand-in: they accept the serde attribute namespace and emit nothing,
//! so `#[derive(Serialize)]` annotations compile without generating code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
