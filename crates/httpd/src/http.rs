//! A hand-rolled, hard-limited HTTP/1.1 request parser and response
//! writer.
//!
//! The parser reads from any [`BufRead`] and enforces explicit byte
//! limits at every stage (request line, header block, body), so a
//! malicious or broken peer can cost at most a few tens of kilobytes of
//! memory and can never hang the connection on an unbounded read.
//! Malformed input is a typed [`HttpError`] that maps to a 4xx status —
//! never a panic. Responses are written either whole
//! ([`write_response`]) or incrementally with chunked transfer encoding
//! ([`ChunkedWriter`]) for streaming solves.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line (`METHOD SP target SP version`).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line (including obs-fold continuations).
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most header lines accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
pub const MAX_BODY: usize = 64 * 1024;

/// Why a request could not be parsed (or the connection ended).
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending any bytes of a
    /// request — the clean end of a keep-alive connection, not an error
    /// to answer.
    Closed,
    /// Transport failure mid-request.
    Io(io::Error),
    /// Malformed request; answer 400 and close.
    Bad(&'static str),
    /// A size limit tripped; answer `status` (413 or 431) and close.
    TooLarge(&'static str, u16),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "transport error: {e}"),
            HttpError::Bad(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m, _) => write!(f, "request too large: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

impl HttpError {
    /// The status code this error answers with (0 when no answer is due:
    /// a closed or broken transport gets no response).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed | HttpError::Io(_) => 0,
            HttpError::Bad(_) => 400,
            HttpError::TooLarge(_, status) => *status,
        }
    }

    /// The human-readable reason to put in the error reply body.
    pub fn reason(&self) -> String {
        self.to_string()
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// The request target exactly as sent (path plus optional `?query`).
    pub target: String,
    /// Header `(name, value)` pairs in arrival order, names lowercased,
    /// obs-fold continuations already joined.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component (everything before `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// The target's raw query string, if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Whether the query contains `key=value` or a bare `key` flag.
    pub fn query_flag(&self, key: &str, value: &str) -> bool {
        self.query()
            .map(|q| {
                q.split('&')
                    .any(|kv| kv == key || kv == format!("{key}={value}"))
            })
            .unwrap_or(false)
    }

    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes (CR stripped),
/// without ever buffering more than `max` bytes. `Ok(None)` is a clean
/// EOF before any byte of the line.
fn read_line_limited<R: BufRead>(r: &mut R, max: usize) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (found, used) = {
            let buf = r.fill_buf()?;
            if buf.is_empty() {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Bad("connection closed mid-line"));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..pos]);
                    (true, pos + 1)
                }
                None => {
                    line.extend_from_slice(buf);
                    (false, buf.len())
                }
            }
        };
        r.consume(used);
        if line.len() > max {
            return Err(HttpError::TooLarge("line exceeds limit", 431));
        }
        if found {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            // Header names/values must be visible ASCII (plus HT/SP);
            // raw control bytes or non-ASCII are a smuggling vector.
            if line
                .iter()
                .any(|&b| b != b'\t' && !(0x20..=0x7e).contains(&b))
            {
                return Err(HttpError::Bad("control or non-ASCII byte in line"));
            }
            return Ok(Some(String::from_utf8(line).expect("ASCII checked above")));
        }
    }
}

/// Validates an HTTP token (method or header name): RFC 7230 tchar.
fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Parses one request from `r`, enforcing every limit above.
///
/// # Errors
///
/// [`HttpError::Closed`] on clean EOF before a request starts (the normal
/// end of a keep-alive connection); [`HttpError::Bad`] /
/// [`HttpError::TooLarge`] for anything malformed or oversized — the
/// caller answers with [`HttpError::status`] and closes.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let request_line = match read_line_limited(r, MAX_REQUEST_LINE)? {
        Some(line) => line,
        None => return Err(HttpError::Closed),
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::Bad(
                "request line is not `METHOD SP target SP version`",
            ))
        }
    };
    if !is_token(method) || method.chars().any(|c| c.is_ascii_lowercase()) {
        return Err(HttpError::Bad("method is not an uppercase token"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Bad("target must be origin-form (start with /)"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Bad("unsupported HTTP version"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line_limited(r, MAX_HEADER_LINE)? {
            Some(line) => line,
            None => return Err(HttpError::Bad("connection closed inside header block")),
        };
        if line.is_empty() {
            break;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            // obs-fold continuation: RFC 7230 says replace the fold with
            // SP and append to the previous field value.
            let Some(last) = headers.last_mut() else {
                return Err(HttpError::Bad("header continuation before any header"));
            };
            if last.1.len() + line.len() > MAX_HEADER_LINE {
                return Err(HttpError::TooLarge("folded header exceeds limit", 431));
            }
            last.1.push(' ');
            last.1.push_str(line.trim());
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad("header line without a colon"));
        };
        if !is_token(name) {
            // Covers embedded whitespace before the colon too, which is
            // a request-smuggling vector RFC 7230 §3.2.4 forbids.
            return Err(HttpError::Bad("header name is not a token"));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers", 431));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body framing: reject ambiguity outright rather than guessing.
    let te = headers
        .iter()
        .filter(|(n, _)| n == "transfer-encoding")
        .count();
    if te > 0 {
        return Err(HttpError::Bad("chunked request bodies are not supported"));
    }
    let mut content_length: Option<usize> = None;
    for (n, v) in &headers {
        if n == "content-length" {
            if content_length.is_some() {
                return Err(HttpError::Bad("duplicate content-length"));
            }
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::Bad(
                    "content-length is not a nonnegative integer",
                ));
            }
            let Ok(len) = v.parse::<usize>() else {
                return Err(HttpError::Bad("content-length overflows"));
            };
            if len > MAX_BODY {
                return Err(HttpError::TooLarge("body exceeds limit", 413));
            }
            content_length = Some(len);
        }
    }

    let mut body = vec![0u8; content_length.unwrap_or(0)];
    if !body.is_empty() {
        r.read_exact(&mut body)
            .map_err(|_| HttpError::Bad("connection closed mid-body"))?;
    }

    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    })
}

/// The reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with `Content-Length` framing.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
    close: bool,
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {status} {}\r\n", reason_phrase(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    if close {
        write!(w, "Connection: close\r\n")?;
    }
    write!(w, "\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// An in-progress chunked-transfer response: one [`chunk`](Self::chunk)
/// per event, [`finish`](Self::finish) to terminate. A transport error at
/// any point surfaces immediately so the caller can cancel the work
/// feeding the stream.
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn start(mut w: W, status: u16, content_type: &str) -> io::Result<ChunkedWriter<W>> {
        write!(w, "HTTP/1.1 {status} {}\r\n", reason_phrase(status))?;
        write!(w, "Content-Type: {content_type}\r\n")?;
        write!(w, "Transfer-Encoding: chunked\r\n")?;
        write!(w, "Connection: close\r\n\r\n")?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Writes one chunk and flushes it (a streaming consumer must see
    /// events as they happen, not when a buffer fills).
    ///
    /// # Errors
    ///
    /// Propagates transport errors (e.g. the peer hung up).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        write!(self.w, "\r\n")?;
        self.w.flush()
    }

    /// Terminates the stream with the zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn finish(mut self) -> io::Result<()> {
        write!(self.w, "0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::BufReader::new(bytes))
    }

    #[test]
    fn a_simple_get_parses() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path(), "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn post_body_respects_content_length_with_pipelined_tail() {
        let mut reader = io::BufReader::new(
            &b"POST /solve HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"m\":4}GET /next HTTP/1.1\r\n\r\n"[..],
        );
        let r = read_request(&mut reader).unwrap();
        assert_eq!(r.body, b"{\"m\":4}");
        // The pipelined second request is still intact in the reader.
        let r2 = read_request(&mut reader).unwrap();
        assert_eq!(r2.path(), "/next");
    }

    #[test]
    fn query_parsing_and_flags() {
        let r = parse(b"POST /solve?stream=1&x HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path(), "/solve");
        assert!(r.query_flag("stream", "1"));
        assert!(r.query_flag("x", "anything"));
        assert!(!r.query_flag("stream", "2"));
    }

    #[test]
    fn obs_fold_continuations_join_with_a_space() {
        let r = parse(b"GET / HTTP/1.1\r\nX-Long: part one\r\n  part two\r\n\tpart three\r\n\r\n")
            .unwrap();
        assert_eq!(r.header("x-long"), Some("part one part two part three"));
    }

    #[test]
    fn malformed_requests_are_400_not_panics() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET / HTTP/2.0\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
            b"GET / HTTP/1.1\r\n  lead-fold: before any header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"GET / HTTP/1.1\r\nX: a\x01b\r\n\r\n",
        ] {
            match parse(bad) {
                Err(HttpError::Bad(_)) => {}
                other => panic!(
                    "{:?} must be Bad, got {other:?}",
                    String::from_utf8_lossy(bad)
                ),
            }
        }
    }

    #[test]
    fn oversized_inputs_trip_limits_not_memory() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(HttpError::TooLarge(_, 431))
        ));
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(
            parse(many.as_bytes()),
            Err(HttpError::TooLarge(_, 431))
        ));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge_body.as_bytes()),
            Err(HttpError::TooLarge(_, 413))
        ));
    }

    #[test]
    fn clean_eof_is_closed_and_midline_eof_is_bad() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        assert!(matches!(parse(b"GET / HT"), Err(HttpError::Bad(_))));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::Bad(_))
        ));
    }

    #[test]
    fn responses_and_chunked_streams_have_correct_framing() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            429,
            "application/json",
            b"{}",
            &[("Retry-After", "3")],
            true,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 3\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut buf = Vec::new();
        let mut cw = ChunkedWriter::start(&mut buf, 200, "application/json").unwrap();
        cw.chunk(b"hello").unwrap();
        cw.chunk(b"").unwrap(); // dropped, must not terminate the stream
        cw.chunk(&[0u8; 16]).unwrap();
        cw.finish().unwrap();
        let text = String::from_utf8_lossy(&buf).to_string();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("5\r\nhello\r\n"));
        assert!(text.contains("10\r\n")); // 16 bytes in hex
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
