//! The long-running HTTP solve server: accept loop, admission control,
//! load shedding, per-request deadlines, and graceful drain.
//!
//! ## Request lifecycle
//!
//! ```text
//! accept ──► parse ──► route
//!                       │ cache probe (hit answers immediately, no permit)
//!                       ▼
//!                  admission control
//!                  │        │        │
//!               permit    queue     shed ──► 429 + Retry-After
//!                  │     (bounded,  draining ──► 503
//!                  │      deadline-aware)
//!                  ▼
//!           SolveService::serve_with(request, budget)
//!                  │  budget = per-request deadline + cancel flag;
//!                  │  cancelled on client disconnect / server drain
//!                  ▼
//!           ServeOutcome JSON (or chunked incumbent stream)
//! ```
//!
//! ## Drain state machine
//!
//! `Running ──shutdown()──► Draining ──(in-flight done | budget up)──► Stopped`
//!
//! Draining stops accepting, answers queued waiters and new requests with
//! 503, and gives in-flight solves [`HttpdConfig::drain_budget`] to
//! finish. Past the budget every registered request [`Budget`] is
//! cancelled — the solver unwinds its degradation ladder and the request
//! still gets a correct (degraded) answer. Once idle, the cache is
//! persisted and [`Server::run`] returns.

use crate::http::{read_request, write_response, ChunkedWriter, HttpError, Request};
use crate::json::{self, Json};
use gomil_arith::PpgKind;
use gomil_budget::{parse_deadline_ms, Budget};
use gomil_ilp::{
    BranchConfig, Model, Solution as IlpSolution, SolveError as IlpSolveError,
};
use gomil_serve::{
    json_string, RungLatency, ServeError, ServeOutcome, SolveKey, SolveRequest, SolveService,
};
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of the HTTP layer (the solve pipeline itself is
/// configured on the injected [`SolveService`]).
#[derive(Debug, Clone)]
pub struct HttpdConfig {
    /// Solves allowed to run concurrently (admission permits).
    pub max_inflight: usize,
    /// Requests allowed to wait for a permit beyond `max_inflight`;
    /// arrivals past this bound are shed with 429.
    pub max_queue: usize,
    /// Deadline applied to requests that do not carry their own
    /// (`X-Gomil-Deadline-Ms` header or `budget_ms` body field).
    pub default_deadline: Option<Duration>,
    /// How long a drain waits for in-flight work before cancelling it.
    pub drain_budget: Duration,
}

impl Default for HttpdConfig {
    fn default() -> HttpdConfig {
        HttpdConfig {
            max_inflight: 4,
            max_queue: 16,
            default_deadline: None,
            drain_budget: Duration::from_secs(5),
        }
    }
}

/// What admission control decided for one solve request.
enum Ticket {
    /// Run now; the caller must call [`Admission::release`] afterwards.
    Admitted,
    /// Queue and in-flight capacity are exhausted (or the request's own
    /// deadline would pass before a permit frees up): shed.
    Shed,
    /// The server is draining: no new work.
    Draining,
}

#[derive(Default)]
struct AdmissionState {
    inflight: usize,
    waiting: usize,
    draining: bool,
}

/// Permits + bounded waiting room. A classic counting semaphore except
/// that waiters are deadline-aware (a queued request sheds itself once
/// its own deadline means it could never finish) and drain-aware (drain
/// wakes every waiter with [`Ticket::Draining`]).
struct Admission {
    state: Mutex<AdmissionState>,
    changed: Condvar,
}

impl Admission {
    fn new() -> Admission {
        Admission {
            state: Mutex::new(AdmissionState::default()),
            changed: Condvar::new(),
        }
    }

    fn acquire(&self, max_inflight: usize, max_queue: usize, deadline: Option<Instant>) -> Ticket {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if s.draining {
            return Ticket::Draining;
        }
        if s.inflight < max_inflight {
            s.inflight += 1;
            return Ticket::Admitted;
        }
        if s.waiting >= max_queue {
            return Ticket::Shed;
        }
        s.waiting += 1;
        loop {
            if s.draining {
                s.waiting -= 1;
                return Ticket::Draining;
            }
            if s.inflight < max_inflight {
                s.inflight += 1;
                s.waiting -= 1;
                return Ticket::Admitted;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    // Deadline pressure: this request could not finish in
                    // time even if it started now, so free its queue slot
                    // for one that can.
                    s.waiting -= 1;
                    return Ticket::Shed;
                }
            }
            let (guard, _) = self
                .changed
                .wait_timeout(s, Duration::from_millis(100))
                .unwrap_or_else(|p| p.into_inner());
            s = guard;
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        s.inflight = s.inflight.saturating_sub(1);
        drop(s);
        self.changed.notify_all();
    }

    fn start_drain(&self) {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .draining = true;
        self.changed.notify_all();
    }

    fn snapshot(&self) -> (usize, usize, bool) {
        let s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        (s.inflight, s.waiting, s.draining)
    }
}

/// State shared by the accept loop, every connection thread, and
/// [`ServerHandle`]s.
struct Shared {
    service: Arc<SolveService>,
    cfg: HttpdConfig,
    admission: Admission,
    shutdown: AtomicBool,
    open_conns: AtomicUsize,
    /// Budgets of in-flight requests, cancelled wholesale when the drain
    /// budget runs out (and individually on client disconnect).
    budgets: Mutex<HashMap<u64, Budget>>,
    budget_seq: AtomicU64,
}

impl Shared {
    fn register_budget(&self, budget: &Budget) -> u64 {
        let id = self.budget_seq.fetch_add(1, Ordering::Relaxed);
        self.budgets
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, budget.clone());
        id
    }

    fn unregister_budget(&self, id: u64) {
        self.budgets
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
    }

    fn cancel_all_budgets(&self) -> usize {
        let budgets = self.budgets.lock().unwrap_or_else(|p| p.into_inner());
        for budget in budgets.values() {
            budget.cancel();
        }
        budgets.len()
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// `Retry-After` seconds for a shed reply: the expected time for the
    /// backlog ahead of a retry to clear, from the service's mean solve
    /// latency — clamped to [1, 60] so the header is always sane even
    /// with no latency history yet.
    fn retry_after_secs(&self) -> u64 {
        let (_, waiting, _) = self.admission.snapshot();
        let report = self.service.report();
        let mean_secs = mean_solve_secs(&report.per_rung);
        let backlog = (waiting + 1) as f64 / self.cfg.max_inflight.max(1) as f64;
        (mean_secs * backlog).ceil().clamp(1.0, 60.0) as u64
    }
}

/// Whether a per-rung latency row measures an actual solver run.
/// `cache-hit` and `mart-hit` rows time fast-path lookups and `verify`
/// times per-netlist equivalence checks — averaging any of them into the
/// solve latency would drag the mean down and under-estimate
/// `Retry-After` exactly when the server is overloaded.
fn is_solver_rung(rung: &str) -> bool {
    !matches!(rung, "cache-hit" | "mart-hit" | "verify")
}

/// Mean solve latency in seconds across actual solver rungs (1s when no
/// solver latency history exists yet).
fn mean_solve_secs(per_rung: &[(String, RungLatency)]) -> f64 {
    let (mut total_us, mut count) = (0u64, 0u64);
    for (rung, h) in per_rung {
        if is_solver_rung(rung) {
            total_us += h.total_us;
            count += h.count;
        }
    }
    if count == 0 {
        1.0
    } else {
        (total_us as f64 / count as f64) / 1e6
    }
}

/// A cloneable remote control for a running [`Server`]: triggers drain
/// from another thread (or from the `POST /shutdown` endpoint).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Initiates graceful drain; idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.admission.start_drain();
    }

    /// Whether drain has been initiated.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }
}

/// The HTTP solve server. [`bind`](Server::bind), then [`run`](Server::run)
/// on a dedicated thread; stop it with a [`ServerHandle`] or
/// `POST /shutdown`.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) around
    /// an existing solve service.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(service: Arc<SolveService>, addr: &str, cfg: HttpdConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                service,
                cfg,
                admission: Admission::new(),
                shutdown: AtomicBool::new(false),
                open_conns: AtomicUsize::new(0),
                budgets: Mutex::new(HashMap::new()),
                budget_seq: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until drain completes, then persists the
    /// cache and returns. See the module docs for the drain state
    /// machine.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop transport errors and the final cache
    /// persistence failure (in-flight answers are never lost to either).
    pub fn run(self) -> io::Result<()> {
        while !self.shared.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    shared.open_conns.fetch_add(1, Ordering::Relaxed);
                    std::thread::spawn(move || {
                        let _ = handle_connection(&shared, stream);
                        shared.open_conns.fetch_sub(1, Ordering::Relaxed);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }

        // Draining: no new connections; give in-flight work the budget.
        self.shared.admission.start_drain();
        let deadline = Instant::now() + self.shared.cfg.drain_budget;
        while Instant::now() < deadline {
            let (inflight, _, _) = self.shared.admission.snapshot();
            if inflight == 0 && self.shared.open_conns.load(Ordering::Relaxed) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // Budget up: cancel stragglers — each unwinds the degradation
        // ladder and still answers its client — then wait briefly for
        // the unwind itself.
        if self.shared.cancel_all_budgets() > 0 {
            let grace = Instant::now() + self.shared.cfg.drain_budget;
            while Instant::now() < grace {
                let (inflight, _, _) = self.shared.admission.snapshot();
                if inflight == 0 && self.shared.open_conns.load(Ordering::Relaxed) == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        // No lost cache writes: persistence is the last drain step, after
        // every in-flight publish has settled.
        self.shared.service.persist()?;
        Ok(())
    }
}

/// Serves one connection: keep-alive request loop with a drain-aware
/// idle wait.
fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    loop {
        // Idle wait: poll for the next request so a parked keep-alive
        // connection notices drain instead of pinning the server open.
        loop {
            if !reader.buffer().is_empty() {
                break;
            }
            let mut probe = [0u8; 1];
            match reader.get_ref().peek(&mut probe) {
                Ok(0) => return Ok(()), // peer closed
                Ok(_) => break,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shared.draining() {
                        return Ok(());
                    }
                }
                Err(_) => return Ok(()),
            }
        }
        match read_request(&mut reader) {
            Ok(request) => {
                let close = request.wants_close();
                match route(shared, &mut stream, &request, close) {
                    Ok(()) => {}
                    Err(_) => return Ok(()), // transport gone mid-reply
                }
                if close {
                    return Ok(());
                }
            }
            Err(HttpError::Closed) => return Ok(()),
            Err(e) => {
                let status = e.status();
                if status != 0 {
                    let body = format!("{{\"error\":{}}}\n", json_string(&e.reason()));
                    let _ = write_response(
                        &mut stream,
                        status,
                        "application/json",
                        body.as_bytes(),
                        &[],
                        true,
                    );
                }
                return Ok(());
            }
        }
    }
}

fn reply_json<W: Write>(w: &mut W, status: u16, body: &str, close: bool) -> io::Result<()> {
    write_response(w, status, "application/json", body.as_bytes(), &[], close)
}

fn reply_error<W: Write>(w: &mut W, status: u16, message: &str, close: bool) -> io::Result<()> {
    reply_json(
        w,
        status,
        &format!("{{\"error\":{}}}\n", json_string(message)),
        close,
    )
}

/// Dispatches one parsed request to its endpoint.
fn route(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    close: bool,
) -> io::Result<()> {
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => {
            if shared.draining() {
                write_response(stream, 503, "text/plain", b"draining\n", &[], close)
            } else {
                write_response(stream, 200, "text/plain", b"ok\n", &[], close)
            }
        }
        ("GET", "/metrics") => {
            let text = shared.service.report().to_prometheus();
            write_response(
                stream,
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
                &[],
                close,
            )
        }
        ("GET", path) if path.starts_with("/design/") => {
            let hex = &path["/design/".len()..];
            let Ok(fingerprint) = u64::from_str_radix(hex, 16) else {
                return reply_error(stream, 400, "fingerprint must be hexadecimal", close);
            };
            match shared.service.lookup_fingerprint(fingerprint) {
                Some((key, outcome)) => reply_json(
                    stream,
                    200,
                    &solve_reply_json(&key, fingerprint, &outcome),
                    close,
                ),
                None => reply_error(stream, 404, "no cached design with that fingerprint", close),
            }
        }
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::Relaxed);
            shared.admission.start_drain();
            reply_json(stream, 200, "{\"status\":\"draining\"}\n", close)
        }
        ("POST", "/solve") => handle_solve(shared, stream, request, close),
        ("POST", "/lp") => handle_lp(shared, stream, request, close),
        ("GET", "/solve" | "/lp") | ("POST", "/healthz" | "/metrics") => {
            reply_error(stream, 405, "method not allowed", close)
        }
        _ => reply_error(stream, 404, "unknown endpoint", close),
    }
}

/// The solve reply: the outcome plus the cache fingerprint a client can
/// later `GET /design/{fingerprint}` with — and the full canonical `key`,
/// because the 64-bit fingerprint is not an identity (two keys can
/// collide on it): a client that remembers the key it solved for can
/// compare it against a later `/design` reply and detect a mismatch.
fn solve_reply_json(key: &str, fingerprint: u64, outcome: &ServeOutcome) -> String {
    format!(
        "{{\"fingerprint\":\"{fingerprint:016x}\",\"key\":{},\"outcome\":{}}}\n",
        json_string(key),
        outcome.to_json()
    )
}

/// Decodes the solve configuration body plus the per-request deadline.
fn parse_solve_request(request: &Request) -> Result<(SolveRequest, Option<Duration>), String> {
    let body = std::str::from_utf8(&request.body).map_err(|_| "body is not UTF-8".to_string())?;
    let config = if body.trim().is_empty() {
        Json::Obj(Default::default())
    } else {
        json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?
    };
    let m = config
        .get("m")
        .ok_or_else(|| "missing required field \"m\"".to_string())?
        .as_u64()
        .ok_or_else(|| "\"m\" must be a nonnegative integer".to_string())?;
    if !(2..=256).contains(&m) {
        return Err(format!("\"m\" must be in 2..=256, got {m}"));
    }
    let ppg = match config.get("ppg") {
        None => PpgKind::And,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| "\"ppg\" must be a string".to_string())?;
            PpgKind::from_name(name).ok_or_else(|| format!("unknown ppg {name:?}"))?
        }
    };
    // Deadline precedence: header > body budget_ms (both strict).
    let deadline = match request.header("x-gomil-deadline-ms") {
        Some(value) => Some(
            parse_deadline_ms(value)
                .ok_or_else(|| format!("invalid X-Gomil-Deadline-Ms {value:?}"))?,
        ),
        None => match config.get("budget_ms") {
            Some(v) => {
                let ms = v
                    .as_u64()
                    .ok_or_else(|| "\"budget_ms\" must be a nonnegative integer".to_string())?;
                Some(
                    parse_deadline_ms(&ms.to_string())
                        .ok_or_else(|| format!("\"budget_ms\" {ms} out of range"))?,
                )
            }
            None => None,
        },
    };
    Ok((SolveRequest { m: m as usize, ppg }, deadline))
}

fn serve_error_status(e: &ServeError) -> u16 {
    match e {
        // The pipeline rejected the *request* (bad m/ppg combination) or
        // failed internally; both are this server's fault only in the
        // latter case, but a client can't fix either by retrying, so 500
        // with the message is the honest answer — except verification,
        // which is a hard internal invariant violation.
        ServeError::Solve(_) | ServeError::Verification(_) | ServeError::Panic(_) => 500,
    }
}

/// `POST /solve`: cache fast path → admission → budgeted solve → JSON
/// (or chunked incumbent stream with `?stream=1`).
fn handle_solve(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    close: bool,
) -> io::Result<()> {
    let (solve_req, deadline) = match parse_solve_request(request) {
        Ok(parsed) => parsed,
        Err(message) => return reply_error(stream, 400, &message, close),
    };
    let streaming = request.query_flag("stream", "1");
    let key = shared.service.key_for(&solve_req);
    let fingerprint = key.hash64();

    // Precomputed (mart) and cached answers bypass admission control
    // entirely: a full mart or cache must stay servable even while the
    // solve queue sheds.
    if let Some(hit) = shared.service.cached(&solve_req) {
        let body = solve_reply_json(key.canonical(), fingerprint, &hit);
        if streaming {
            let mut cw = ChunkedWriter::start(&mut *stream, 200, "application/x-ndjson")?;
            cw.chunk(done_event(key.canonical(), fingerprint, &hit).as_bytes())?;
            return cw.finish();
        }
        return reply_json(stream, 200, &body, close);
    }

    let budget = match deadline.or(shared.cfg.default_deadline) {
        Some(limit) => Budget::with_limit(limit),
        None => Budget::unlimited(),
    };
    match shared.admission.acquire(
        shared.cfg.max_inflight.max(1),
        shared.cfg.max_queue,
        budget.deadline(),
    ) {
        Ticket::Shed => {
            shared
                .service
                .metrics()
                .shed
                .fetch_add(1, Ordering::Relaxed);
            let retry = shared.retry_after_secs().to_string();
            write_response(
                stream,
                429,
                "application/json",
                b"{\"error\":\"overloaded, retry later\"}\n",
                &[("Retry-After", &retry)],
                close,
            )
        }
        Ticket::Draining => reply_error(stream, 503, "server is draining", close),
        Ticket::Admitted => {
            let result = if streaming {
                stream_solve(shared, stream, &solve_req, &budget, &key)
            } else {
                blocking_solve(shared, stream, &solve_req, &budget, &key, close)
            };
            shared.admission.release();
            if budget.check().is_err() {
                shared
                    .service
                    .metrics()
                    .deadline_cancelled
                    .fetch_add(1, Ordering::Relaxed);
            }
            result
        }
    }
}

fn blocking_solve(
    shared: &Shared,
    stream: &mut TcpStream,
    solve_req: &SolveRequest,
    budget: &Budget,
    key: &SolveKey,
    close: bool,
) -> io::Result<()> {
    let id = shared.register_budget(budget);
    let result = shared.service.serve_with(solve_req, Some(budget));
    shared.unregister_budget(id);
    match result {
        Ok(outcome) => reply_json(
            stream,
            200,
            &solve_reply_json(key.canonical(), key.hash64(), &outcome),
            close,
        ),
        Err(e) => reply_error(stream, serve_error_status(&e), &e.to_string(), close),
    }
}

/// `POST /lp`: solve a raw CPLEX LP-format model uploaded as the request
/// body. Unlike `/solve` there is no cache (arbitrary models have no
/// design identity), but the request goes through the same admission
/// control and honors the same `X-Gomil-Deadline-Ms` header — an
/// uploaded model competes for the same solver permits as a design
/// solve, so a flood of `/lp` posts sheds instead of piling up.
fn handle_lp(
    shared: &Shared,
    stream: &mut TcpStream,
    request: &Request,
    close: bool,
) -> io::Result<()> {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return reply_error(stream, 400, "body is not UTF-8", close);
    };
    if text.trim().is_empty() {
        return reply_error(stream, 400, "empty body: expected an LP-format model", close);
    }
    let model = match Model::from_lp_format(text) {
        Ok(m) => m,
        Err(e) => return reply_error(stream, 400, &e.to_string(), close),
    };
    let deadline = match request.header("x-gomil-deadline-ms") {
        Some(value) => match parse_deadline_ms(value) {
            Some(d) => Some(d),
            None => {
                return reply_error(
                    stream,
                    400,
                    &format!("invalid X-Gomil-Deadline-Ms {value:?}"),
                    close,
                )
            }
        },
        None => None,
    };
    let budget = match deadline.or(shared.cfg.default_deadline) {
        Some(limit) => Budget::with_limit(limit),
        None => Budget::unlimited(),
    };
    match shared.admission.acquire(
        shared.cfg.max_inflight.max(1),
        shared.cfg.max_queue,
        budget.deadline(),
    ) {
        Ticket::Shed => {
            shared
                .service
                .metrics()
                .shed
                .fetch_add(1, Ordering::Relaxed);
            let retry = shared.retry_after_secs().to_string();
            write_response(
                stream,
                429,
                "application/json",
                b"{\"error\":\"overloaded, retry later\"}\n",
                &[("Retry-After", &retry)],
                close,
            )
        }
        Ticket::Draining => reply_error(stream, 503, "server is draining", close),
        Ticket::Admitted => {
            let id = shared.register_budget(&budget);
            let cfg = BranchConfig {
                budget: budget.clone(),
                ..BranchConfig::default()
            };
            // An arbitrary uploaded model can trip solver panics the
            // design pipeline never would; contain them to a 500.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                model.solve_with(&cfg)
            }));
            shared.unregister_budget(id);
            shared.admission.release();
            if budget.check().is_err() {
                shared
                    .service
                    .metrics()
                    .deadline_cancelled
                    .fetch_add(1, Ordering::Relaxed);
            }
            match result {
                Ok(solved) => reply_json(stream, 200, &lp_reply_json(&model, &solved), close),
                Err(_) => reply_error(stream, 500, "solver panicked", close),
            }
        }
    }
}

/// The `POST /lp` reply. Model outcomes (infeasible, unbounded, limit)
/// are 200s with a `status` field — they are answers about the uploaded
/// model, not transport failures.
fn lp_reply_json(model: &Model, result: &Result<IlpSolution, IlpSolveError>) -> String {
    match result {
        Ok(sol) => {
            let mut vars = String::new();
            for (i, v) in sol.values().iter().enumerate() {
                if i > 0 {
                    vars.push(',');
                }
                let name = model.var_name(gomil_ilp::Var::from_index(i));
                vars.push_str(&format!("{}:{}", json_string(name), json_number(*v)));
            }
            format!(
                "{{\"status\":{},\"objective\":{},\"gap\":{},\"nodes\":{},\"certified\":{},\"vars\":{{{vars}}}}}\n",
                json_string(if sol.is_optimal() { "optimal" } else { "feasible" }),
                json_number(sol.objective()),
                json_number(sol.gap()),
                sol.nodes(),
                sol.certificate().is_some(),
            )
        }
        Err(IlpSolveError::Infeasible) => "{\"status\":\"infeasible\"}\n".to_string(),
        Err(IlpSolveError::Unbounded) => "{\"status\":\"unbounded\"}\n".to_string(),
        Err(e) => format!(
            "{{\"status\":\"error\",\"error\":{}}}\n",
            json_string(&e.to_string())
        ),
    }
}

/// JSON-safe float rendering: finite values via shortest round-trip,
/// non-finite as null (JSON has no Infinity/NaN literals).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn done_event(key: &str, fingerprint: u64, outcome: &ServeOutcome) -> String {
    format!(
        "{{\"event\":\"done\",\"fingerprint\":\"{fingerprint:016x}\",\"key\":{},\"outcome\":{}}}\n",
        json_string(key),
        outcome.to_json()
    )
}

/// `POST /solve?stream=1`: chunked newline-delimited JSON events. While
/// the solve runs, heartbeats keep the connection demonstrably alive (and
/// detect a vanished client — whose budget is then cancelled so the
/// worker actually stops); on completion the solver's incumbent timeline
/// is replayed as `incumbent` events followed by one `done` event.
fn stream_solve(
    shared: &Shared,
    stream: &mut TcpStream,
    solve_req: &SolveRequest,
    budget: &Budget,
    key: &SolveKey,
) -> io::Result<()> {
    let id = shared.register_budget(budget);
    let (tx, rx) = mpsc::channel();
    let service = Arc::clone(&shared.service);
    let req = solve_req.clone();
    let worker_budget = budget.clone();
    let worker = std::thread::spawn(move || {
        let result = service.serve_with(&req, Some(&worker_budget));
        tx.send(result).ok();
    });

    let mut cw = ChunkedWriter::start(&mut *stream, 200, "application/x-ndjson")?;
    let t0 = Instant::now();
    let outcome = loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(result) => break result,
            Err(RecvTimeoutError::Timeout) => {
                let beat = format!(
                    "{{\"event\":\"heartbeat\",\"elapsed_ms\":{}}}\n",
                    t0.elapsed().as_millis()
                );
                if cw.chunk(beat.as_bytes()).is_err() {
                    // Client hung up mid-solve: cancel so the worker
                    // unwinds instead of solving for nobody, then wait
                    // for its (degraded) result to keep singleflight
                    // joiners coherent.
                    budget.cancel();
                    let _ = rx.recv();
                    worker.join().ok();
                    shared.unregister_budget(id);
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "client disconnected during stream",
                    ));
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                break Err(ServeError::Panic("solve worker vanished".into()))
            }
        }
    };
    worker.join().ok();
    shared.unregister_budget(id);

    match outcome {
        Ok(outcome) => {
            for (at_us, objective) in &outcome.improvements {
                let event = format!(
                    "{{\"event\":\"incumbent\",\"at_us\":{at_us},\"objective\":{objective}}}\n"
                );
                cw.chunk(event.as_bytes())?;
            }
            cw.chunk(done_event(key.canonical(), key.hash64(), &outcome).as_bytes())?;
        }
        Err(e) => {
            let event = format!(
                "{{\"event\":\"error\",\"status\":{},\"error\":{}}}\n",
                serve_error_status(&e),
                json_string(&e.to_string())
            );
            cw.chunk(event.as_bytes())?;
        }
    }
    cw.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_permits_queue_and_shed() {
        let adm = Admission::new();
        assert!(matches!(adm.acquire(2, 1, None), Ticket::Admitted));
        assert!(matches!(adm.acquire(2, 1, None), Ticket::Admitted));
        // Queue full ⇒ third concurrent waiter sheds when a fourth asks.
        let expired = Some(Instant::now() - Duration::from_millis(1));
        // With an already-expired deadline the waiter sheds instead of
        // queueing forever.
        assert!(matches!(adm.acquire(2, 1, expired), Ticket::Shed));
        adm.release();
        assert!(matches!(adm.acquire(2, 1, None), Ticket::Admitted));
    }

    #[test]
    fn draining_turns_waiters_away() {
        let adm = Arc::new(Admission::new());
        assert!(matches!(adm.acquire(1, 4, None), Ticket::Admitted));
        let a2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || a2.acquire(1, 4, None));
        std::thread::sleep(Duration::from_millis(50));
        adm.start_drain();
        assert!(matches!(waiter.join().unwrap(), Ticket::Draining));
        assert!(matches!(adm.acquire(1, 4, None), Ticket::Draining));
    }

    #[test]
    fn queued_waiter_gets_the_freed_permit() {
        let adm = Arc::new(Admission::new());
        assert!(matches!(adm.acquire(1, 4, None), Ticket::Admitted));
        let a2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || a2.acquire(1, 4, None));
        std::thread::sleep(Duration::from_millis(50));
        adm.release();
        assert!(matches!(waiter.join().unwrap(), Ticket::Admitted));
        let (inflight, waiting, _) = adm.snapshot();
        assert_eq!((inflight, waiting), (1, 0));
    }

    /// Regression for the Retry-After under-estimate: the mean solve
    /// latency used to average every per-rung row except `cache-hit`, so
    /// the per-netlist `verify` row (and the `mart-hit` row) dragged the
    /// mean toward zero exactly when the server was overloaded. Only
    /// actual solver rungs may contribute.
    #[test]
    fn retry_after_mean_ignores_fast_path_and_verify_rows() {
        let row = |count: u64, total_us: u64| RungLatency {
            buckets: [count, 0, 0, 0, 0],
            count,
            total_us,
        };
        let per_rung = vec![
            ("cache-hit".to_string(), row(50, 500)),
            ("joint-ilp".to_string(), row(2, 4_000_000)), // mean 2s
            ("mart-hit".to_string(), row(50, 250)),
            ("verify".to_string(), row(2, 3_000)),
        ];
        let mean = mean_solve_secs(&per_rung);
        assert!((mean - 2.0).abs() < 1e-9, "solver rows only, got {mean}s");
        // The buggy filter (everything but cache-hit) would have reported
        // (4_000_000 + 250 + 3_000) / 54 ≈ 0.074s — a 27× under-estimate.
        assert!(
            mean_solve_secs(&per_rung[..1]) == 1.0 && mean_solve_secs(&[]) == 1.0,
            "no solver history falls back to 1s"
        );
        assert!(is_solver_rung("joint-ilp") && is_solver_rung("error"));
        assert!(!is_solver_rung("cache-hit") && !is_solver_rung("mart-hit"));
        assert!(!is_solver_rung("verify"));
    }
}
