//! A minimal blocking HTTP/1.1 client for tests, benches, and smoke
//! checks — the consumer side of exactly the protocol subset the server
//! speaks (`Content-Length` and chunked framing, one request per call).

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One complete HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Lowercased header `(name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request to `addr` and reads the full response.
///
/// # Errors
///
/// Transport failures and malformed responses surface as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_nodelay(true).ok();
    write!(stream, "{method} {path} HTTP/1.1\r\n")?;
    write!(stream, "Host: {addr}\r\n")?;
    write!(stream, "Connection: close\r\n")?;
    for (name, value) in headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    if !body.is_empty() || method == "POST" {
        write!(stream, "Content-Length: {}\r\n", body.len())?;
    }
    write!(stream, "\r\n")?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// Convenience: POST a JSON body.
///
/// # Errors
///
/// Same as [`request`].
pub fn post_json(addr: &str, path: &str, json: &str) -> io::Result<HttpResponse> {
    request(
        addr,
        "POST",
        path,
        &[("Content-Type", "application/json")],
        json.as_bytes(),
    )
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_line<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(bad("unexpected EOF"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parses one response (status line, headers, framed body) from `r`.
///
/// # Errors
///
/// Transport failures and malformed responses surface as `io::Error`.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<HttpResponse> {
    let status_line = read_line(r)?;
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(bad("malformed status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP/1.x response"));
    }
    let status: u16 = code.parse().map_err(|_| bad("non-numeric status"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("header line without a colon"));
        };
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(r)?;
            let size =
                usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                let _ = read_line(r); // trailing CRLF after the last chunk
                break;
            }
            let mut chunk = vec![0u8; size];
            r.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            r.read_exact(&mut crlf)?;
        }
    } else if let Some(length) = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body = vec![0u8; length];
        r.read_exact(&mut body)?;
    } else {
        r.read_to_end(&mut body)?;
    }

    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}
