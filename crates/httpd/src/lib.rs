//! # gomil-httpd — serving GOMIL solves over HTTP
//!
//! A long-running HTTP/1.1 server over [`std::net::TcpListener`] — no
//! external dependencies, hand-rolled request parsing and chunked
//! responses — that fronts a [`gomil_serve::SolveService`] with the
//! robustness layer every production solver needs:
//!
//! * **admission control** — a fixed number of concurrent solve permits
//!   plus a bounded, deadline-aware waiting room;
//! * **load shedding** — arrivals past the queue bound (or whose own
//!   deadline cannot be met) answer `429 Too Many Requests` with a
//!   `Retry-After` estimate instead of piling up;
//! * **per-request deadlines** — `X-Gomil-Deadline-Ms` header or
//!   `budget_ms` body field becomes a [`gomil_budget::Budget`] threaded
//!   into the solver; cancellation (deadline, client disconnect, drain)
//!   degrades the solve down its fallback ladder rather than failing it;
//! * **graceful drain** — `POST /shutdown` (or [`ServerHandle::shutdown`])
//!   stops accepting, lets in-flight work finish within a drain budget,
//!   cancels stragglers, persists the cache, and exits cleanly.
//!
//! ## Endpoints
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `POST /solve` | JSON config → certified outcome JSON |
//! | `POST /solve?stream=1` | chunked NDJSON: heartbeats, incumbents, `done` |
//! | `GET /design/{fingerprint}` | cache lookup by solve fingerprint, 404 on miss |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /healthz` | `200 ok` / `503 draining` |
//! | `POST /shutdown` | initiate graceful drain |
//!
//! Cached results bypass admission control entirely: a hot cache keeps
//! answering even while the solve queue sheds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod http;
mod json;
mod server;

pub use http::{
    read_request, reason_phrase, write_response, ChunkedWriter, HttpError, Request, MAX_BODY,
    MAX_HEADERS, MAX_HEADER_LINE, MAX_REQUEST_LINE,
};
pub use json::{parse as parse_json, Json};
pub use server::{HttpdConfig, Server, ServerHandle};
