//! A minimal, hard-limited JSON parser for solve-request bodies.
//!
//! The server only needs to read tiny configuration objects
//! (`{"m": 8, "ppg": "and", "budget_ms": 500}`), so this is a strict
//! recursive-descent RFC 8259 subset with an explicit nesting limit —
//! enough to reject garbage with a useful message and impossible to
//! blow the stack with `[[[[…`. Output JSON is produced elsewhere
//! ([`gomil_serve::ServeOutcome::to_json`]); this module only parses.

use std::collections::BTreeMap;

/// Deepest accepted nesting of arrays/objects.
const MAX_DEPTH: usize = 16;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (later duplicate keys win, map order is sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a nonnegative integer, when it is a whole number
    /// that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses `text` as one JSON value (with nothing but whitespace after).
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its byte
/// offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let Json::Str(key) = parse_value(b, pos, depth + 1)? else {
                    return Err(format!("object key at byte {} is not a string", *pos));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {}", *pos));
                }
                *pos += 1;
                let value = parse_value(b, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-UTF8 number".to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-UTF8 \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                        // Surrogates degrade to the replacement character;
                        // solve configs have no business containing them.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte in string at byte {}", *pos))
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the body was validated as
                // UTF-8 by the caller handing us a &str).
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let ch = s.chars().next().expect("non-empty by match arm");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_config_shapes_parse() {
        let v = parse(r#"{"m": 8, "ppg": "booth4", "budget_ms": 250}"#).unwrap();
        assert_eq!(v.get("m").and_then(Json::as_u64), Some(8));
        assert_eq!(v.get("ppg").and_then(Json::as_str), Some("booth4"));
        assert_eq!(v.get("budget_ms").and_then(Json::as_u64), Some(250));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn scalars_arrays_and_escapes_parse() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            parse(r#""a\"b\n\u0041""#).unwrap(),
            Json::Str("a\"b\nA".into())
        );
        assert_eq!(
            parse("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(BTreeMap::new())
            ])
        );
    }

    #[test]
    fn garbage_is_an_error_never_a_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{1:2}",
            "tru",
            "\"",
            "\"\\x\"",
            "1 2",
            "{\"a\":1,}",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
        // Nesting bomb trips the depth limit, not the stack.
        let bomb = "[".repeat(10_000);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
