//! Property tests for the HTTP/1.1 request parser: arbitrary and
//! adversarial input must produce a typed error (→ 4xx) or a valid
//! request — never a panic, never an unbounded read, and round-trips of
//! well-formed requests must be lossless.

use gomil_httpd::{read_request, HttpError, MAX_BODY};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::BufReader;

fn parse(bytes: &[u8]) -> Result<gomil_httpd::Request, HttpError> {
    read_request(&mut BufReader::new(bytes))
}

/// A generated header name: mostly valid tokens, sometimes hostile.
fn header_name(seed: u64) -> String {
    match seed % 5 {
        0 => "Content-Length".into(),
        1 => "X-Gomil-Deadline-Ms".into(),
        2 => format!("X-Fuzz-{}", seed),
        3 => "Bad Name".into(),          // space → must be rejected
        _ => "Transfer-Encoding".into(), // unsupported → must be rejected
    }
}

proptest! {
    /// Arbitrary bytes never panic or hang the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..512)) {
        let _ = parse(&bytes);
    }

    /// Mostly-structured garbage (method-ish line + random header lines +
    /// folds) never panics, and any `Ok` parse yields sane fields.
    #[test]
    fn structured_garbage_is_rejected_or_sane(
        method_seed in 0u64..6,
        names in vec(any::<u64>(), 0..8),
        fold in any::<bool>(),
        pipeline_tail in vec(any::<u8>(), 0..64),
    ) {
        let method = ["GET", "POST", "get", "G@T", "", "DELETE"][method_seed as usize];
        let mut raw = format!("{method} /solve HTTP/1.1\r\n");
        for (i, seed) in names.iter().enumerate() {
            raw.push_str(&format!("{}: v{i}\r\n", header_name(*seed)));
            if fold && i == 0 {
                raw.push_str("  folded continuation\r\n");
            }
        }
        raw.push_str("\r\n");
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&pipeline_tail);
        match parse(&bytes) {
            Ok(req) => {
                prop_assert!(req.method == "GET" || req.method == "POST" || req.method == "DELETE");
                prop_assert_eq!(req.path(), "/solve");
                for (name, _) in &req.headers {
                    prop_assert_eq!(name.to_ascii_lowercase(), name.clone());
                    prop_assert!(!name.contains(' '));
                }
            }
            Err(e) => {
                // Every rejection carries a 4xx status (or is a transport
                // condition that gets no reply) — never a 5xx, because the
                // peer is at fault.
                let status = e.status();
                prop_assert!(status == 0 || (400..500).contains(&status),
                    "unexpected status {status}");
            }
        }
    }

    /// Bad content-length values are always a 400-class rejection.
    #[test]
    fn bad_content_length_is_rejected(value in vec(any::<u8>(), 1..12)) {
        let printable: String = value
            .iter()
            .map(|b| (b'!' + (b % 90)) as char)
            .collect();
        // Skip the (rare) case where the fuzz value is a small valid number.
        if printable.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = printable.parse::<usize>() {
                if n <= MAX_BODY {
                    return Ok(());
                }
            }
        }
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {printable}\r\n\r\n");
        let result = parse(raw.as_bytes());
        prop_assert!(result.is_err(), "CL {printable:?} must be rejected");
    }

    /// Valid requests round-trip: method, target, headers (with folds
    /// joined), and an exact-length body survive parsing.
    #[test]
    fn valid_requests_round_trip(
        m in 2usize..64,
        body_len in 0usize..256,
        deadline_ms in 0u64..100_000,
        folded in any::<bool>(),
    ) {
        let body: Vec<u8> = (0..body_len).map(|i| b'a' + (i % 26) as u8).collect();
        let mut raw = format!(
            "POST /solve?stream=1 HTTP/1.1\r\nHost: test\r\nX-Gomil-Deadline-Ms: {deadline_ms}\r\nX-M: {m}\r\n"
        );
        if folded {
            raw.push_str("X-Folded: one\r\n two\r\n");
        }
        raw.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&body);
        let req = parse(&bytes).expect("well-formed request must parse");
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.path(), "/solve");
        prop_assert!(req.query_flag("stream", "1"));
        let deadline_text = deadline_ms.to_string();
        let m_text = m.to_string();
        prop_assert_eq!(req.header("x-gomil-deadline-ms"), Some(deadline_text.as_str()));
        prop_assert_eq!(req.header("X-M"), Some(m_text.as_str()));
        if folded {
            prop_assert_eq!(req.header("x-folded"), Some("one two"));
        }
        prop_assert_eq!(req.body, body);
    }

    /// Pipelined garbage after a valid request leaves the first request
    /// intact and fails (or cleanly ends) on the second — never a panic.
    #[test]
    fn pipelined_garbage_cannot_corrupt_the_first_request(tail in vec(any::<u8>(), 0..128)) {
        let mut bytes = b"GET /healthz HTTP/1.1\r\n\r\n".to_vec();
        bytes.extend_from_slice(&tail);
        let mut reader = BufReader::new(&bytes[..]);
        let first = read_request(&mut reader).expect("valid first request");
        prop_assert_eq!(first.path(), "/healthz");
        let _ = read_request(&mut reader); // must not panic
    }
}
