//! End-to-end tests of the HTTP layer over real sockets, with a
//! synthetic (sleeping) solver so shedding, deadlines, streaming, and
//! drain are deterministic and fast.

use gomil_httpd::{client, HttpdConfig, Server};
use gomil_mart::{Mart, MartBuilder};
use gomil_serve::{DesignMetrics, PpgKind, ServeConfig, ServeOutcome, SolveService, VerdictTier};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn outcome_for(m: usize) -> ServeOutcome {
    ServeOutcome {
        name: format!("HTTPD-{m}"),
        m,
        ppg: PpgKind::And,
        metrics: DesignMetrics {
            area: m as f64 * 2.0,
            delay: 4.0,
            power: 1.0,
        },
        gates: 12 * m,
        verified: true,
        strategy: "joint-ilp".into(),
        objective: 100.0 + m as f64,
        degraded: false,
        vs_counts: vec![1, 2, 1],
        solver_nodes: 5,
        solver_lp_iters: 50,
        solver_gap: 0.0,
        solver_warm_attempts: 0,
        solver_warm_hits: 0,
        solver_refactors: 0,
        verdict: VerdictTier::Proved,
        verify_vectors: 256,
        verify_us: 10,
        root_us: 100,
        root_lp_iters: 5,
        cuts_added: 0,
        improvements: vec![(1_000, 110.0), (5_000, 100.0 + m as f64)],
    }
}

/// A server whose solver sleeps `solve_ms` per request (cancellation-
/// aware) and counts invocations.
fn start_server(
    solve_ms: u64,
    httpd: HttpdConfig,
) -> (
    String,
    gomil_httpd::ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
    Arc<AtomicU64>,
) {
    let invocations = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&invocations);
    let service = SolveService::new(
        "httpd-test".into(),
        Box::new(move |req, _hint, budget| {
            counter.fetch_add(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_millis(solve_ms);
            let mut cancelled = false;
            while Instant::now() < deadline {
                if let Some(b) = budget {
                    if b.check().is_err() {
                        cancelled = true;
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let mut outcome = outcome_for(req.m);
            if cancelled {
                outcome.degraded = true;
                outcome.strategy = "dadda".into();
            }
            Ok(outcome)
        }),
        ServeConfig {
            jobs: 1,
            warm_start: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server = Server::bind(Arc::new(service), "127.0.0.1:0", httpd).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join, invocations)
}

#[test]
fn solve_healthz_metrics_design_and_drain_work_end_to_end() {
    let (addr, handle, join, invocations) = start_server(5, HttpdConfig::default());

    let health = client::request(&addr, "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "ok\n");

    let solve = client::post_json(&addr, "/solve", r#"{"m": 8, "ppg": "and"}"#).unwrap();
    assert_eq!(solve.status, 200, "{}", solve.text());
    let body = solve.text();
    assert!(body.contains("\"name\":\"HTTPD-8\""), "{body}");
    assert!(body.contains("\"verdict\":\"proved\""), "{body}");
    assert!(body.contains("\"fingerprint\":\""), "{body}");

    // Same request again: served from cache, no second invocation.
    let again = client::post_json(&addr, "/solve", r#"{"m": 8, "ppg": "and"}"#).unwrap();
    assert_eq!(again.status, 200);
    assert_eq!(invocations.load(Ordering::SeqCst), 1);

    // The fingerprint in the reply resolves through GET /design/.
    let fp = body
        .split("\"fingerprint\":\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();
    let design = client::request(&addr, "GET", &format!("/design/{fp}"), &[], b"").unwrap();
    assert_eq!(design.status, 200);
    assert!(design.text().contains("\"name\":\"HTTPD-8\""));
    let missing = client::request(&addr, "GET", "/design/ffffffffffffffff", &[], b"").unwrap();
    assert_eq!(missing.status, 404);
    let malformed = client::request(&addr, "GET", "/design/not-hex", &[], b"").unwrap();
    assert_eq!(malformed.status, 400);

    // Metrics are Prometheus-parseable and carry the request counters.
    let metrics = client::request(&addr, "GET", "/metrics", &[], b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("gomil_requests_total"), "{text}");
    assert!(text.contains("gomil_shed_total 0"), "{text}");
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (_, value) = line.rsplit_once(' ').expect("metric line");
        assert!(value.parse::<f64>().is_ok(), "unparseable {line}");
    }

    // Malformed solve bodies are 400s.
    for bad in [
        "not json",
        "{}",
        r#"{"m": 1}"#,
        r#"{"m": 8, "ppg": "quantum"}"#,
        r#"{"m": 8, "budget_ms": -2}"#,
    ] {
        let resp = client::post_json(&addr, "/solve", bad).unwrap();
        assert_eq!(resp.status, 400, "{bad} → {}", resp.text());
    }
    let bad_header = client::request(
        &addr,
        "POST",
        "/solve",
        &[("X-Gomil-Deadline-Ms", "soon")],
        br#"{"m": 8}"#,
    )
    .unwrap();
    assert_eq!(bad_header.status, 400);

    // Graceful drain: POST /shutdown, run() returns, healthz goes away.
    let down = client::post_json(&addr, "/shutdown", "").unwrap();
    assert_eq!(down.status, 200);
    assert!(handle.is_draining());
    join.join().unwrap().unwrap();
    assert!(client::request(&addr, "GET", "/healthz", &[], b"").is_err());
}

#[test]
fn bursts_past_the_queue_shed_with_429_and_retry_after() {
    // One permit, zero queue, slow solver: any concurrent second request
    // must shed.
    let (addr, handle, join, invocations) = start_server(
        300,
        HttpdConfig {
            max_inflight: 1,
            max_queue: 0,
            ..HttpdConfig::default()
        },
    );

    let addr2 = addr.clone();
    let slow =
        std::thread::spawn(move || client::post_json(&addr2, "/solve", r#"{"m": 10}"#).unwrap());
    std::thread::sleep(Duration::from_millis(100)); // let the leader start
    assert_eq!(invocations.load(Ordering::SeqCst), 1, "leader is in flight");

    // A *different* request (same key would coalesce via singleflight).
    let shed = client::post_json(&addr, "/solve", r#"{"m": 12}"#).unwrap();
    assert_eq!(shed.status, 429, "{}", shed.text());
    let retry: u64 = shed
        .header("retry-after")
        .expect("shed reply carries Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!((1..=60).contains(&retry));

    let ok = slow.join().unwrap();
    assert_eq!(ok.status, 200);
    assert!(!ok.text().contains("\"degraded\":true"));

    // The shed is visible in /metrics; the admitted request completed.
    let metrics = client::request(&addr, "GET", "/metrics", &[], b"").unwrap();
    assert!(
        metrics.text().contains("gomil_shed_total 1"),
        "{}",
        metrics.text()
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// `POST /lp` solves an uploaded LP-format model with the real branch
/// and bound (no synthetic solver in this path) and reports model
/// outcomes — optimal, infeasible — as 200s with a status field.
#[test]
fn post_lp_solves_uploaded_models() {
    let (addr, handle, join, invocations) = start_server(1, HttpdConfig::default());

    let knap = "Maximize\n obj: +3 a +4 b +2 c\n\
                Subject To\n weight: +2 a +3 b +1 c <= 4\n\
                Binaries\n a b c\nEnd\n";
    let resp = client::request(&addr, "POST", "/lp", &[], knap.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let body = resp.text();
    assert!(body.contains("\"status\":\"optimal\""), "{body}");
    assert!(body.contains("\"objective\":6"), "{body}");
    assert!(body.contains("\"certified\":true"), "{body}");
    assert!(body.contains("\"b\":1"), "{body}");

    // An infeasible model is an answer, not an error.
    let infeasible = "Minimize\n obj: x\nSubject To\n lo: x >= 2\n hi: x <= 1\nEnd\n";
    let resp = client::request(&addr, "POST", "/lp", &[], infeasible.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"status\":\"infeasible\""));

    // Unparseable text and empty bodies are client errors.
    let bad = client::request(&addr, "POST", "/lp", &[], b"this is not an lp file").unwrap();
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert!(bad.text().contains("error"));
    let empty = client::request(&addr, "POST", "/lp", &[], b"").unwrap();
    assert_eq!(empty.status, 400);
    let wrong_method = client::request(&addr, "GET", "/lp", &[], b"").unwrap();
    assert_eq!(wrong_method.status, 405);

    // /lp never touches the design pipeline or its cache.
    assert_eq!(invocations.load(Ordering::SeqCst), 0);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// A request covered by the precomputed design mart must be served with
/// zero solver invocations and zero admission permits — even while the
/// queue is actively shedding — and the hit must show up in `/metrics`.
#[test]
fn mart_hits_bypass_admission_while_the_queue_sheds() {
    // Build a tiny mart covering m=8 on disk, exactly as `gomil mart
    // build` would.
    let dir = std::env::temp_dir().join(format!("gomil-httpd-mart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mart_path = dir.join("designs.mart");
    let probe = SolveService::new(
        "httpd-test".into(),
        Box::new(|req, _, _| Ok(outcome_for(req.m))),
        ServeConfig::default(),
    )
    .unwrap();
    let covered_key = probe.key_for(&gomil_serve::SolveRequest {
        m: 8,
        ppg: PpgKind::And,
    });
    let mut precomputed = outcome_for(8);
    precomputed.name = "MART-8".into();
    let mut builder = MartBuilder::new(1);
    builder.insert(&covered_key, &precomputed);
    builder.write(&mart_path).unwrap();

    // One permit, zero queue, slow solver — same shedding setup as the
    // 429 test, but with the mart attached.
    let invocations = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&invocations);
    let service = SolveService::new(
        "httpd-test".into(),
        Box::new(move |req, _hint, _budget| {
            counter.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(300));
            Ok(outcome_for(req.m))
        }),
        ServeConfig {
            jobs: 1,
            warm_start: false,
            ..ServeConfig::default()
        },
    )
    .unwrap()
    .with_mart(Arc::new(Mart::load(&mart_path).unwrap()));
    let server = Server::bind(
        Arc::new(service),
        "127.0.0.1:0",
        HttpdConfig {
            max_inflight: 1,
            max_queue: 0,
            ..HttpdConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    // Occupy the only permit with a slow solve.
    let addr2 = addr.clone();
    let slow =
        std::thread::spawn(move || client::post_json(&addr2, "/solve", r#"{"m": 10}"#).unwrap());
    while invocations.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // An uncovered request sheds: the queue really is full.
    let shed = client::post_json(&addr, "/solve", r#"{"m": 12}"#).unwrap();
    assert_eq!(shed.status, 429, "{}", shed.text());

    // The mart-covered request is served *now*, despite zero available
    // permits, with zero extra solver invocations.
    let hit = client::post_json(&addr, "/solve", r#"{"m": 8, "ppg": "and"}"#).unwrap();
    assert_eq!(hit.status, 200, "{}", hit.text());
    let body = hit.text();
    assert!(body.contains("\"name\":\"MART-8\""), "{body}");
    assert!(
        body.contains(&format!("\"key\":\"{}\"", covered_key.canonical())),
        "solve reply echoes the canonical key: {body}"
    );
    assert_eq!(
        invocations.load(Ordering::SeqCst),
        1,
        "only the slow leader ever reached the solver"
    );

    // The hit resolves through GET /design/ too, key echoed.
    let fp = format!("{:016x}", covered_key.hash64());
    let design = client::request(&addr, "GET", &format!("/design/{fp}"), &[], b"").unwrap();
    assert_eq!(design.status, 200);
    assert!(
        design.text().contains("\"name\":\"MART-8\""),
        "{}",
        design.text()
    );
    assert!(
        design
            .text()
            .contains(&format!("\"key\":\"{}\"", covered_key.canonical())),
        "design reply echoes the canonical key: {}",
        design.text()
    );

    let slow_resp = slow.join().unwrap();
    assert_eq!(slow_resp.status, 200);

    // Mart serving is visible in /metrics.
    let metrics = client::request(&addr, "GET", "/metrics", &[], b"").unwrap();
    let text = metrics.text();
    assert!(text.contains("gomil_mart_entries 1"), "{text}");
    let hits: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("gomil_mart_hits_total "))
        .expect("gomil_mart_hits_total exported")
        .parse()
        .unwrap();
    assert!(hits >= 1, "the covered solve hit the mart, got {hits}");
    let coverage: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("gomil_mart_coverage "))
        .expect("gomil_mart_coverage exported")
        .parse()
        .unwrap();
    assert!(coverage > 0.0, "{text}");

    handle.shutdown();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deadlines_cancel_the_solve_and_count_in_metrics() {
    let (addr, handle, join, _invocations) = start_server(5_000, HttpdConfig::default());
    let t0 = Instant::now();
    let resp = client::request(
        &addr,
        "POST",
        "/solve",
        &[("X-Gomil-Deadline-Ms", "100")],
        br#"{"m": 9}"#,
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "deadline must cut the 5s solve short, took {:?}",
        t0.elapsed()
    );
    assert!(
        resp.text().contains("\"degraded\":true"),
        "a deadline-cut solve is degraded: {}",
        resp.text()
    );
    let metrics = client::request(&addr, "GET", "/metrics", &[], b"").unwrap();
    assert!(
        metrics.text().contains("gomil_deadline_cancelled_total 1"),
        "{}",
        metrics.text()
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn streaming_solves_emit_heartbeats_incumbents_and_done() {
    let (addr, handle, join, _invocations) = start_server(600, HttpdConfig::default());
    let resp = client::post_json(&addr, "/solve?stream=1", r#"{"m": 7}"#).unwrap();
    assert_eq!(resp.status, 200);
    let events = resp.text();
    assert!(events.contains("\"event\":\"heartbeat\""), "{events}");
    assert!(events.contains("\"event\":\"incumbent\""), "{events}");
    assert!(events.contains("\"at_us\":1000"), "{events}");
    let done = events.lines().last().expect("stream has a final line");
    assert!(done.contains("\"event\":\"done\""), "{events}");
    assert!(done.contains("\"name\":\"HTTPD-7\""), "{events}");

    // A cached streaming request answers with just the done event.
    let cached = client::post_json(&addr, "/solve?stream=1", r#"{"m": 7}"#).unwrap();
    let events = cached.text();
    assert!(!events.contains("heartbeat"), "{events}");
    assert!(events.contains("\"event\":\"done\""), "{events}");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn drain_cancels_inflight_work_within_the_budget_and_persists() {
    let dir = std::env::temp_dir().join(format!("gomil-httpd-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("cache.tsv");

    let invocations = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&invocations);
    let service = SolveService::new(
        "httpd-drain".into(),
        Box::new(move |req, _hint, budget| {
            counter.fetch_add(1, Ordering::SeqCst);
            // "Infinite" solve: only cancellation ends it.
            let budget = budget.expect("server always passes a budget registry entry");
            while budget.check().is_ok() {
                std::thread::sleep(Duration::from_millis(2));
            }
            let mut outcome = outcome_for(req.m);
            outcome.degraded = true;
            Ok(outcome)
        }),
        ServeConfig {
            jobs: 1,
            warm_start: false,
            cache_path: Some(cache_path.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    // Pre-seed one cacheable entry via a direct insert-equivalent: solve
    // is never non-degraded here, so persistence proving ground is the
    // empty-but-written file plus a clean exit.
    let server = Server::bind(
        Arc::new(service),
        "127.0.0.1:0",
        HttpdConfig {
            drain_budget: Duration::from_millis(400),
            ..HttpdConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let addr2 = addr.clone();
    let inflight =
        std::thread::spawn(move || client::post_json(&addr2, "/solve", r#"{"m": 11}"#).unwrap());
    while invocations.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shut down while the solve is "stuck": drain must cancel it, the
    // client must still get its degraded answer, and run() must return
    // within the drain budget (plus unwind grace), not hang.
    let t0 = Instant::now();
    handle.shutdown();
    join.join().unwrap().unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "drain took {:?}",
        t0.elapsed()
    );
    let resp = inflight.join().unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"degraded\":true"), "{}", resp.text());

    // The cache file was flushed on drain (header-only: degraded results
    // are never cached).
    assert!(cache_path.exists(), "drain must persist the cache");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn socket_level_singleflight_coalesces_identical_requests() {
    let (addr, handle, join, invocations) = start_server(200, HttpdConfig::default());
    let mut clients = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            client::post_json(&addr, "/solve", r#"{"m": 6}"#).unwrap()
        }));
    }
    let bodies: Vec<String> = clients
        .into_iter()
        .map(|c| {
            let resp = c.join().unwrap();
            assert_eq!(resp.status, 200);
            resp.text()
        })
        .collect();
    for body in &bodies {
        assert_eq!(body, &bodies[0], "all replies identical");
    }
    // Coalescing bound: the 8 concurrent identical requests trigger far
    // fewer solves (typically 1; cache race can allow a stray).
    assert!(
        invocations.load(Ordering::SeqCst) <= 2,
        "expected coalescing, got {} invocations",
        invocations.load(Ordering::SeqCst)
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}
