//! # gomil-serve — a concurrent multiplier-generation service
//!
//! The ROADMAP's north star is a system that serves heavy multiplier
//! traffic; this crate supplies the serving substrate. A GOMIL solve is a
//! deterministic function of `(m, PPG kind, solve-relevant config)`, which
//! makes the workload ideal for caching and request coalescing:
//!
//! * [`SolveKey`] — a canonical, order-independent cache key (stable FNV-1a
//!   hash over a canonical string) for one solve request;
//! * [`ShardedCache`] — a sharded LRU result cache with optional on-disk
//!   persistence, so repeated and restarted workloads hit in `O(1)`;
//! * [`SingleFlight`] — request coalescing: `N` concurrent requests for
//!   the same key trigger exactly one solve, the rest block and share the
//!   leader's result;
//! * [`SolveService`] — a fixed worker pool (std threads + a bounded job
//!   queue) that drains request batches, deduplicates via singleflight,
//!   offers completed incumbents to queued *neighbor* requests as warm
//!   starts, and records [`ServiceMetrics`];
//! * [`MetricsReport`] — hits/misses/evictions/dedup joins/queue depth and
//!   a per-rung latency histogram, rendered as a summary table or as
//!   Prometheus text exposition ([`MetricsReport::to_prometheus`]) for the
//!   `gomil-httpd` network layer.
//!
//! The crate is deliberately **solver-agnostic**: the actual GOMIL
//! pipeline is injected as a [`SolverFn`] closure (the `gomil` crate
//! provides the standard adapter, [`gomil::serve_service`]), so the
//! service layer has no dependency cycle with the optimizer and can be
//! unit-tested with synthetic solvers.
//!
//! [`gomil::serve_service`]: https://docs.rs/gomil
//!
//! ## Caching contract
//!
//! Only *certified, full-quality* results enter the cache: outcomes whose
//! degradation ladder absorbed a failure or ran out of budget
//! ([`ServeOutcome::degraded`]) are returned to their requester but never
//! cached, so a batch run under a dead budget cannot poison later lookups.
//! Budgets are therefore deliberately excluded from [`SolveKey`].
//!
//! On top of that, every outcome carries an equivalence verdict
//! ([`ServeOutcome::verdict`], a [`VerdictTier`]): a `Failed` netlist
//! never reaches the cache or the warm-hint pool (the production solver
//! errors out with [`ServeError::Verification`] before an outcome even
//! exists), and [`ServeConfig::min_verdict`] lets strict deployments
//! demand `Tested` or `Proved` before an outcome may be pinned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod key;
mod metrics;
mod outcome;
mod service;
mod singleflight;

pub use cache::ShardedCache;
pub use key::{fnv1a_64, SolveKey};
pub use metrics::{MetricsReport, RungLatency, ServiceMetrics, SolverSample, LATENCY_BUCKETS};
pub use outcome::{json_string, ServeOutcome};
pub use service::{
    DesignStore, ServeConfig, ServeError, SolveRequest, SolveService, SolverFn, WarmHint,
};
pub use singleflight::SingleFlight;

// Re-export the request vocabulary the service speaks.
pub use gomil_arith::PpgKind;
pub use gomil_netlist::{DesignMetrics, VerdictTier};
