//! The cacheable result of one solve.

use gomil_arith::PpgKind;
use gomil_netlist::{DesignMetrics, VerdictTier};
use std::fmt;

/// Everything the service returns (and persists) for one request: the
/// measured quality-of-results plus the optimizer provenance.
///
/// Deliberately *flat* — no netlist — so an entry costs a few hundred
/// bytes in memory and one line on disk; callers that need the gates
/// re-run `build_gomil` (the report tells them the exact strategy and
/// objective they will get).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServeOutcome {
    /// Design name (e.g. `GOMIL-AND-16`).
    pub name: String,
    /// Word length.
    pub m: usize,
    /// Partial product generator.
    pub ppg: PpgKind,
    /// Measured area/delay/power.
    pub metrics: DesignMetrics,
    /// Logic gate count.
    pub gates: usize,
    /// Whether functional verification passed.
    pub verified: bool,
    /// Winning optimizer rung (a `Rung::label` string).
    pub strategy: String,
    /// Combined objective `ct_cost + prefix_cost` of the winning solution.
    pub objective: f64,
    /// Whether the degradation ladder absorbed a failure or was shaped by
    /// budget expiry. Degraded outcomes are served but never cached.
    pub degraded: bool,
    /// Final BCV column counts (LSB first, entries 1 or 2) — the incumbent
    /// profile offered to neighbor requests as a warm start.
    pub vs_counts: Vec<u32>,
    /// Branch-and-bound nodes the winning ILP rung explored (0 when a
    /// non-ILP rung won, or for records persisted before telemetry).
    pub solver_nodes: u64,
    /// Simplex iterations the winning ILP rung spent (0 when a non-ILP
    /// rung won, or for records persisted before telemetry).
    pub solver_lp_iters: u64,
    /// Final relative MIP gap of the winning ILP rung (0 for a proved
    /// optimum, non-ILP rungs, or pre-telemetry records). A root-only
    /// solve with no dual bound yet has an *infinite* gap, which the wire
    /// format carries as the explicit sentinel `inf` — distinguishable
    /// from both 0 and a missing field.
    pub solver_gap: f64,
    /// Warm-restart attempts: nodes that carried a parent basis into the
    /// dual simplex (0 for non-ILP rungs or pre-telemetry records).
    pub solver_warm_attempts: u64,
    /// Warm-restart hits: attempts that reoptimized without a from-scratch
    /// primal fallback (0 for non-ILP rungs or pre-telemetry records).
    pub solver_warm_hits: u64,
    /// Basis refactorizations (eta-file rebuilds) the winning ILP rung
    /// performed (0 for non-ILP rungs or pre-telemetry records).
    pub solver_refactors: u64,
    /// Equivalence-verdict tier of the emitted netlist (`Skipped` for
    /// records persisted before the verification gate existed).
    pub verdict: VerdictTier,
    /// Operand pairs the verifier simulated (0 for skipped verdicts and
    /// pre-verification records).
    pub verify_vectors: u64,
    /// Verification wall-clock in microseconds (0 for skipped verdicts
    /// and pre-verification records).
    pub verify_us: u64,
    /// Root-stage wall-clock of the winning ILP rung in microseconds:
    /// model build + presolve + root LP + cut separation (0 for non-ILP
    /// rungs or pre-root-profile records).
    pub root_us: u64,
    /// Simplex iterations of the root LP alone (0 for non-ILP rungs or
    /// pre-root-profile records).
    pub root_lp_iters: u64,
    /// Cutting planes appended at the root (0 when cuts were off, a
    /// non-ILP rung won, or the record predates root profiles).
    pub cuts_added: u64,
    /// Incumbent-improvement timeline of the winning ILP rung: one
    /// `(microseconds from solve start, objective)` pair per admitted
    /// improvement, in admission order (empty for non-ILP rungs and
    /// pre-timeline records). This is what `POST /solve?stream=1` replays
    /// as chunked progress events.
    pub improvements: Vec<(u64, f64)>,
}

impl ServeOutcome {
    /// Serializes to one tab-separated line (field order is the struct
    /// order; floats use Rust's shortest-roundtrip formatting, so
    /// [`from_line`](Self::from_line) reproduces them bit-exactly).
    pub fn to_line(&self) -> String {
        let counts: Vec<String> = self.vs_counts.iter().map(u32::to_string).collect();
        let improvements: Vec<String> = self
            .improvements
            .iter()
            .map(|(at_us, obj)| format!("{at_us}:{obj}"))
            .collect();
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.name.replace(['\t', '\n'], " "),
            self.m,
            self.ppg.label(),
            self.metrics.area,
            self.metrics.delay,
            self.metrics.power,
            self.gates,
            self.verified,
            self.strategy,
            self.objective,
            self.degraded,
            counts.join(","),
            self.solver_nodes,
            self.solver_lp_iters,
            self.solver_gap,
            self.solver_warm_attempts,
            self.solver_warm_hits,
            self.solver_refactors,
            self.verdict.label(),
            self.verify_vectors,
            self.verify_us,
            self.root_us,
            self.root_lp_iters,
            self.cuts_added,
            improvements.join(","),
        )
    }

    /// Parses a [`to_line`](Self::to_line) record; `None` on any malformed
    /// field (a corrupted persisted entry is skipped, not fatal). Accepts
    /// the current 25-field format plus the five legacy ones: 24 fields
    /// (before incumbent timelines), 21 fields (before root-LP profiles),
    /// 18 fields (before verification verdicts), 15 fields (before
    /// warm-restart telemetry) and 12 fields (before any solver
    /// telemetry), defaulting the missing verdict to `Skipped` and missing
    /// counters and timelines to empty.
    pub fn from_line(line: &str) -> Option<ServeOutcome> {
        let f: Vec<&str> = line.split('\t').collect();
        if ![12, 15, 18, 21, 24, 25].contains(&f.len()) {
            return None;
        }
        let vs_counts = if f[11].is_empty() {
            Vec::new()
        } else {
            f[11]
                .split(',')
                .map(|c| c.parse::<u32>().ok())
                .collect::<Option<Vec<u32>>>()?
        };
        let (solver_nodes, solver_lp_iters, solver_gap) = if f.len() >= 15 {
            (
                f[12].parse().ok()?,
                f[13].parse().ok()?,
                f[14].parse().ok()?,
            )
        } else {
            (0, 0, 0.0)
        };
        let (solver_warm_attempts, solver_warm_hits, solver_refactors) = if f.len() >= 18 {
            (
                f[15].parse().ok()?,
                f[16].parse().ok()?,
                f[17].parse().ok()?,
            )
        } else {
            (0, 0, 0)
        };
        let (verdict, verify_vectors, verify_us) = if f.len() >= 21 {
            (
                VerdictTier::from_label(f[18])?,
                f[19].parse().ok()?,
                f[20].parse().ok()?,
            )
        } else {
            (VerdictTier::Skipped, 0, 0)
        };
        let (root_us, root_lp_iters, cuts_added) = if f.len() >= 24 {
            (
                f[21].parse().ok()?,
                f[22].parse().ok()?,
                f[23].parse().ok()?,
            )
        } else {
            (0, 0, 0)
        };
        let improvements = if f.len() == 25 && !f[24].is_empty() {
            f[24]
                .split(',')
                .map(|pair| {
                    let (at_us, obj) = pair.split_once(':')?;
                    Some((at_us.parse::<u64>().ok()?, obj.parse::<f64>().ok()?))
                })
                .collect::<Option<Vec<(u64, f64)>>>()?
        } else {
            Vec::new()
        };
        Some(ServeOutcome {
            name: f[0].to_string(),
            m: f[1].parse().ok()?,
            ppg: PpgKind::from_name(f[2])?,
            metrics: DesignMetrics {
                area: f[3].parse().ok()?,
                delay: f[4].parse().ok()?,
                power: f[5].parse().ok()?,
            },
            gates: f[6].parse().ok()?,
            verified: f[7].parse().ok()?,
            strategy: f[8].to_string(),
            objective: f[9].parse().ok()?,
            degraded: f[10].parse().ok()?,
            vs_counts,
            solver_nodes,
            solver_lp_iters,
            solver_gap,
            solver_warm_attempts,
            solver_warm_hits,
            solver_refactors,
            verdict,
            verify_vectors,
            verify_us,
            root_us,
            root_lp_iters,
            cuts_added,
            improvements,
        })
    }

    /// Serializes to a JSON object — the body of the HTTP service's
    /// `POST /solve` and `GET /design/{fingerprint}` replies.
    ///
    /// Hand-rolled (the workspace runs offline with no `serde_json`):
    /// strings are escaped per RFC 8259, and non-finite floats — which
    /// JSON cannot represent as numbers — are emitted as the same quoted
    /// sentinels the TSV wire format uses (`"inf"`, `"-inf"`, `"NaN"`),
    /// so a root-only solve's infinite gap survives the trip.
    pub fn to_json(&self) -> String {
        let counts: Vec<String> = self.vs_counts.iter().map(u32::to_string).collect();
        let improvements: Vec<String> = self
            .improvements
            .iter()
            .map(|(at_us, obj)| format!("{{\"at_us\":{at_us},\"objective\":{}}}", json_f64(*obj)))
            .collect();
        format!(
            "{{\"name\":{},\"m\":{},\"ppg\":{},\"area\":{},\"delay\":{},\"power\":{},\
             \"gates\":{},\"verified\":{},\"strategy\":{},\"objective\":{},\"degraded\":{},\
             \"vs_counts\":[{}],\"solver_nodes\":{},\"solver_lp_iters\":{},\"solver_gap\":{},\
             \"solver_warm_attempts\":{},\"solver_warm_hits\":{},\"solver_refactors\":{},\
             \"verdict\":{},\"verify_vectors\":{},\"verify_us\":{},\"root_us\":{},\
             \"root_lp_iters\":{},\"cuts_added\":{},\"improvements\":[{}]}}",
            json_string(&self.name),
            self.m,
            json_string(self.ppg.label()),
            json_f64(self.metrics.area),
            json_f64(self.metrics.delay),
            json_f64(self.metrics.power),
            self.gates,
            self.verified,
            json_string(&self.strategy),
            json_f64(self.objective),
            self.degraded,
            counts.join(","),
            self.solver_nodes,
            self.solver_lp_iters,
            json_f64(self.solver_gap),
            self.solver_warm_attempts,
            self.solver_warm_hits,
            self.solver_refactors,
            json_string(self.verdict.label()),
            self.verify_vectors,
            self.verify_us,
            self.root_us,
            self.root_lp_iters,
            self.cuts_added,
            improvements.join(","),
        )
    }
}

/// RFC 8259 string escaping (quotes included in the output).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A float as a JSON value: a bare number when finite (Rust's shortest
/// roundtrip formatting is valid JSON for every finite `f64`), otherwise
/// the quoted TSV sentinel.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `75.0` formats as `75`, which JSON accepts as a number.
        format!("{v}")
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

impl fmt::Display for ServeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} m={:<3} {} gates={} [{}{}, {}]",
            self.name,
            self.m,
            self.metrics,
            self.gates,
            self.strategy,
            if self.degraded { ", degraded" } else { "" },
            self.verdict,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeOutcome {
        ServeOutcome {
            name: "GOMIL-AND-8".into(),
            m: 8,
            ppg: PpgKind::And,
            metrics: DesignMetrics {
                area: 123.456789,
                delay: 0.1 + 0.2, // deliberately non-representable exactly
                power: 7.25,
            },
            gates: 321,
            verified: true,
            strategy: "joint-ilp".into(),
            objective: 456.125,
            degraded: false,
            vs_counts: vec![1, 2, 2, 1],
            solver_nodes: 42,
            solver_lp_iters: 1_337,
            solver_gap: 0.0625,
            solver_warm_attempts: 40,
            solver_warm_hits: 36,
            solver_refactors: 9,
            verdict: VerdictTier::Proved,
            verify_vectors: 65_536,
            verify_us: 4_200,
            root_us: 12_500,
            root_lp_iters: 96,
            cuts_added: 5,
            improvements: vec![(1_500, 512.5), (9_000, 456.125)],
        }
    }

    #[test]
    fn line_roundtrip_is_bit_exact() {
        let o = sample();
        let back = ServeOutcome::from_line(&o.to_line()).unwrap();
        assert_eq!(o, back);
        assert_eq!(o.metrics.delay.to_bits(), back.metrics.delay.to_bits());
        assert_eq!(o.to_line(), back.to_line());
    }

    #[test]
    fn legacy_twelve_field_lines_parse_with_zero_telemetry() {
        let line = sample().to_line();
        let legacy: Vec<&str> = line.split('\t').take(12).collect();
        let back = ServeOutcome::from_line(&legacy.join("\t")).unwrap();
        assert_eq!(back.name, "GOMIL-AND-8");
        assert_eq!(back.vs_counts, vec![1, 2, 2, 1]);
        assert_eq!(back.solver_nodes, 0);
        assert_eq!(back.solver_lp_iters, 0);
        assert_eq!(back.solver_gap, 0.0);
        assert_eq!(back.solver_warm_attempts, 0);
        assert_eq!(back.solver_warm_hits, 0);
        assert_eq!(back.solver_refactors, 0);
        assert_eq!(back.verdict, VerdictTier::Skipped);
        assert_eq!(back.verify_vectors, 0);
    }

    #[test]
    fn legacy_fifteen_field_lines_parse_with_zero_warm_telemetry() {
        let line = sample().to_line();
        let legacy: Vec<&str> = line.split('\t').take(15).collect();
        let back = ServeOutcome::from_line(&legacy.join("\t")).unwrap();
        assert_eq!(back.solver_nodes, 42);
        assert_eq!(back.solver_lp_iters, 1_337);
        assert_eq!(back.solver_gap, 0.0625);
        assert_eq!(back.solver_warm_attempts, 0);
        assert_eq!(back.solver_warm_hits, 0);
        assert_eq!(back.solver_refactors, 0);
        assert_eq!(back.verdict, VerdictTier::Skipped);
    }

    #[test]
    fn legacy_eighteen_field_lines_parse_with_a_skipped_verdict() {
        let line = sample().to_line();
        let legacy: Vec<&str> = line.split('\t').take(18).collect();
        let back = ServeOutcome::from_line(&legacy.join("\t")).unwrap();
        assert_eq!(back.solver_warm_attempts, 40);
        assert_eq!(back.solver_warm_hits, 36);
        assert_eq!(back.solver_refactors, 9);
        assert_eq!(back.verdict, VerdictTier::Skipped);
        assert_eq!(back.verify_vectors, 0);
        assert_eq!(back.verify_us, 0);
    }

    #[test]
    fn legacy_twentyone_field_lines_parse_with_zero_root_profile() {
        let line = sample().to_line();
        let legacy: Vec<&str> = line.split('\t').take(21).collect();
        let back = ServeOutcome::from_line(&legacy.join("\t")).unwrap();
        assert_eq!(back.verdict, VerdictTier::Proved);
        assert_eq!(back.verify_vectors, 65_536);
        assert_eq!(back.verify_us, 4_200);
        assert_eq!(back.root_us, 0);
        assert_eq!(back.root_lp_iters, 0);
        assert_eq!(back.cuts_added, 0);
    }

    #[test]
    fn legacy_twentyfour_field_lines_parse_with_an_empty_timeline() {
        let line = sample().to_line();
        let legacy: Vec<&str> = line.split('\t').take(24).collect();
        let back = ServeOutcome::from_line(&legacy.join("\t")).unwrap();
        assert_eq!(back.root_us, 12_500);
        assert_eq!(back.root_lp_iters, 96);
        assert_eq!(back.cuts_added, 5);
        assert!(back.improvements.is_empty());
    }

    #[test]
    fn current_lines_carry_the_incumbent_timeline() {
        let line = sample().to_line();
        assert_eq!(line.split('\t').count(), 25);
        let back = ServeOutcome::from_line(&line).unwrap();
        assert_eq!(back.verdict, VerdictTier::Proved);
        assert_eq!(back.verify_vectors, 65_536);
        assert_eq!(back.verify_us, 4_200);
        assert_eq!(back.root_us, 12_500);
        assert_eq!(back.root_lp_iters, 96);
        assert_eq!(back.cuts_added, 5);
        assert_eq!(back.improvements, vec![(1_500, 512.5), (9_000, 456.125)]);
        // An empty timeline roundtrips as an empty field, not a parse error.
        let mut o = sample();
        o.improvements.clear();
        let back = ServeOutcome::from_line(&o.to_line()).unwrap();
        assert!(back.improvements.is_empty());
        assert_eq!(o, back);
    }

    #[test]
    fn json_rendering_is_parseable_and_complete() {
        let mut o = sample();
        o.name = "GOMIL \"quoted\"\t8".into();
        o.solver_gap = f64::INFINITY;
        let json = o.to_json();
        // Structural sanity a real JSON parser would enforce: balanced
        // braces/brackets, escaped quotes, sentinel for the infinite gap.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"name\":\"GOMIL \\\"quoted\\\"\\t8\""));
        assert!(json.contains("\"solver_gap\":\"inf\""));
        assert!(json.contains("\"verdict\":\"proved\""));
        assert!(json.contains("\"improvements\":[{\"at_us\":1500,\"objective\":512.5}"));
        assert!(json.contains("\"vs_counts\":[1,2,2,1]"));
        assert!(!json.contains('\n'), "JSON body must be single-line");
    }

    #[test]
    fn infinite_gap_roundtrips_as_an_explicit_sentinel() {
        // A root-only solve has no dual bound, so its gap is infinite.
        // The wire format must carry that as a real sentinel (`inf`),
        // not collapse it to something indistinguishable from a missing
        // or zero field.
        let mut o = sample();
        o.solver_gap = f64::INFINITY;
        let line = o.to_line();
        assert!(
            line.split('\t').nth(14) == Some("inf"),
            "gap field must be the explicit sentinel, got {:?}",
            line.split('\t').nth(14)
        );
        let back = ServeOutcome::from_line(&line).unwrap();
        assert!(back.solver_gap.is_infinite() && back.solver_gap > 0.0);
        assert_eq!(o, back);
        assert_eq!(line, back.to_line());
    }

    #[test]
    fn malformed_lines_are_rejected_not_fatal() {
        assert!(ServeOutcome::from_line("garbage").is_none());
        assert!(ServeOutcome::from_line("").is_none());
        let mut truncated = sample().to_line();
        truncated.truncate(truncated.len() / 2);
        assert!(ServeOutcome::from_line(&truncated).is_none());
        // Field counts between (or beyond) the known formats are no format.
        let line = sample().to_line();
        for n in [13usize, 14, 16, 17, 19, 20, 22, 23] {
            let partial: Vec<&str> = line.split('\t').take(n).collect();
            assert!(
                ServeOutcome::from_line(&partial.join("\t")).is_none(),
                "{n}-field line must be rejected"
            );
        }
        let overlong = format!("{line}\t0");
        assert!(ServeOutcome::from_line(&overlong).is_none());
        // A corrupted timeline field is malformed, not silently empty.
        let head: Vec<&str> = line.split('\t').take(24).collect();
        for bad in ["garbage", "12:x", ":1.0", "5:1.0,7"] {
            assert!(
                ServeOutcome::from_line(&format!("{}\t{bad}", head.join("\t"))).is_none(),
                "timeline {bad:?} must be rejected"
            );
        }
        // An unknown verdict label is a malformed field, not Skipped.
        let bad = line.replace("\tproved\t", "\tmaybe\t");
        assert_ne!(bad, line);
        assert!(ServeOutcome::from_line(&bad).is_none());
    }
}
