//! The cacheable result of one solve.

use gomil_arith::PpgKind;
use gomil_netlist::DesignMetrics;
use std::fmt;

/// Everything the service returns (and persists) for one request: the
/// measured quality-of-results plus the optimizer provenance.
///
/// Deliberately *flat* — no netlist — so an entry costs a few hundred
/// bytes in memory and one line on disk; callers that need the gates
/// re-run `build_gomil` (the report tells them the exact strategy and
/// objective they will get).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServeOutcome {
    /// Design name (e.g. `GOMIL-AND-16`).
    pub name: String,
    /// Word length.
    pub m: usize,
    /// Partial product generator.
    pub ppg: PpgKind,
    /// Measured area/delay/power.
    pub metrics: DesignMetrics,
    /// Logic gate count.
    pub gates: usize,
    /// Whether functional verification passed.
    pub verified: bool,
    /// Winning optimizer rung (a `Rung::label` string).
    pub strategy: String,
    /// Combined objective `ct_cost + prefix_cost` of the winning solution.
    pub objective: f64,
    /// Whether the degradation ladder absorbed a failure or was shaped by
    /// budget expiry. Degraded outcomes are served but never cached.
    pub degraded: bool,
    /// Final BCV column counts (LSB first, entries 1 or 2) — the incumbent
    /// profile offered to neighbor requests as a warm start.
    pub vs_counts: Vec<u32>,
}

impl ServeOutcome {
    /// Serializes to one tab-separated line (field order is the struct
    /// order; floats use Rust's shortest-roundtrip formatting, so
    /// [`from_line`](Self::from_line) reproduces them bit-exactly).
    pub fn to_line(&self) -> String {
        let counts: Vec<String> = self.vs_counts.iter().map(u32::to_string).collect();
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.name.replace(['\t', '\n'], " "),
            self.m,
            self.ppg.label(),
            self.metrics.area,
            self.metrics.delay,
            self.metrics.power,
            self.gates,
            self.verified,
            self.strategy,
            self.objective,
            self.degraded,
            counts.join(","),
        )
    }

    /// Parses a [`to_line`](Self::to_line) record; `None` on any malformed
    /// field (a corrupted persisted entry is skipped, not fatal).
    pub fn from_line(line: &str) -> Option<ServeOutcome> {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 12 {
            return None;
        }
        let vs_counts = if f[11].is_empty() {
            Vec::new()
        } else {
            f[11]
                .split(',')
                .map(|c| c.parse::<u32>().ok())
                .collect::<Option<Vec<u32>>>()?
        };
        Some(ServeOutcome {
            name: f[0].to_string(),
            m: f[1].parse().ok()?,
            ppg: PpgKind::from_name(f[2])?,
            metrics: DesignMetrics {
                area: f[3].parse().ok()?,
                delay: f[4].parse().ok()?,
                power: f[5].parse().ok()?,
            },
            gates: f[6].parse().ok()?,
            verified: f[7].parse().ok()?,
            strategy: f[8].to_string(),
            objective: f[9].parse().ok()?,
            degraded: f[10].parse().ok()?,
            vs_counts,
        })
    }
}

impl fmt::Display for ServeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} m={:<3} {} gates={} [{}{}]",
            self.name,
            self.m,
            self.metrics,
            self.gates,
            self.strategy,
            if self.degraded { ", degraded" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeOutcome {
        ServeOutcome {
            name: "GOMIL-AND-8".into(),
            m: 8,
            ppg: PpgKind::And,
            metrics: DesignMetrics {
                area: 123.456789,
                delay: 0.1 + 0.2, // deliberately non-representable exactly
                power: 7.25,
            },
            gates: 321,
            verified: true,
            strategy: "joint-ilp".into(),
            objective: 456.125,
            degraded: false,
            vs_counts: vec![1, 2, 2, 1],
        }
    }

    #[test]
    fn line_roundtrip_is_bit_exact() {
        let o = sample();
        let back = ServeOutcome::from_line(&o.to_line()).unwrap();
        assert_eq!(o, back);
        assert_eq!(o.metrics.delay.to_bits(), back.metrics.delay.to_bits());
        assert_eq!(o.to_line(), back.to_line());
    }

    #[test]
    fn malformed_lines_are_rejected_not_fatal() {
        assert!(ServeOutcome::from_line("garbage").is_none());
        assert!(ServeOutcome::from_line("").is_none());
        let mut truncated = sample().to_line();
        truncated.truncate(truncated.len() / 2);
        assert!(ServeOutcome::from_line(&truncated).is_none());
    }
}
