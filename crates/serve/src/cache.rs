//! Sharded LRU result cache with optional on-disk persistence.
//!
//! Shard selection uses the key's stable FNV hash, so contention between
//! worker threads splits across `shards` independent mutexes instead of
//! one global lock. Each shard holds an LRU-ordered map bounded at
//! `capacity / shards` entries; recency is a monotone tick shared by all
//! shards (an `AtomicU64`), so eviction is a cheap min-scan of the full
//! shard — fine at the few-thousand-entry capacities this service runs.
//!
//! Persistence is a line-per-entry text file (`canonical key \t outcome`)
//! using Rust's shortest-roundtrip float formatting, so a reloaded entry
//! is bit-identical to the one saved. Corrupted lines are skipped, not
//! fatal: a damaged cache file degrades to a partial (or cold) cache.

use crate::key::SolveKey;
use crate::outcome::ServeOutcome;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version tag of the persisted format; bumped on incompatible changes so
/// stale files are ignored rather than misparsed. v2 appends a per-line
/// FNV-1a checksum so a torn line (truncated mid-float by a crashed or
/// interrupted writer) is *rejected* instead of loading as a plausible but
/// wrong value; v1 files (no checksums) still load best-effort.
const PERSIST_HEADER: &str = "gomil-serve-cache v2";

/// The pre-checksum header, still accepted on load.
const PERSIST_HEADER_V1: &str = "gomil-serve-cache v1";

struct Entry {
    value: ServeOutcome,
    last_used: u64,
}

type Shard = HashMap<String, Entry>;

/// A sharded, bounded, persistable map from [`SolveKey`] to
/// [`ServeOutcome`]. All methods take `&self`; internal mutexes make it
/// shareable across worker threads.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedCache {
    /// A cache with `shards` shards holding at most ~`capacity` entries in
    /// total (each shard is bounded at `ceil(capacity / shards)`, minimum
    /// one entry).
    pub fn new(shards: usize, capacity: usize) -> ShardedCache {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &SolveKey) -> &Mutex<Shard> {
        &self.shards[key.shard(self.shards.len())]
    }

    fn lock(&self, key: &SolveKey) -> std::sync::MutexGuard<'_, Shard> {
        // A panic while holding a shard lock poisons only that shard;
        // recover the data rather than cascading the panic across workers.
        self.shard(key).lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Looks `key` up, refreshing its recency. Records a hit or miss.
    pub fn get(&self, key: &SolveKey) -> Option<ServeOutcome> {
        let mut shard = self.lock(key);
        match shard.get_mut(key.canonical()) {
            Some(e) => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`get`](Self::get) but *silent on a miss*: a hit refreshes
    /// recency and counts, a miss counts nothing. Used by the HTTP fast
    /// path, which probes the cache before deciding whether a request
    /// must pass admission control — a probe miss is not a lookup miss,
    /// because the same request is immediately looked up again inside the
    /// solve path.
    pub fn probe(&self, key: &SolveKey) -> Option<ServeOutcome> {
        let mut shard = self.lock(key);
        let e = shard.get_mut(key.canonical())?;
        e.last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(e.value.clone())
    }

    /// Finds an entry whose canonical key hashes (stable FNV-1a) to
    /// `hash`: a read-only linear scan across the shards, no recency
    /// refresh, no hit/miss accounting. `O(entries)` — fine at the
    /// few-thousand-entry capacities this cache runs, and only used by
    /// the `GET /design/{fingerprint}` endpoint.
    ///
    /// Returns the *canonical key alongside the outcome*: a 64-bit hash is
    /// an index hint, not an identity — two distinct keys can collide — so
    /// a caller that knows the full key must compare it (see
    /// [`find_by_hash_checked`](Self::find_by_hash_checked)), and a caller
    /// that doesn't must surface the key so its own client can.
    pub fn find_by_hash(&self, hash: u64) -> Option<(String, ServeOutcome)> {
        self.find_by_hash_checked(hash, None)
    }

    /// [`find_by_hash`](Self::find_by_hash) with an authoritative key
    /// compare: when `expected_key` is supplied, only the entry whose full
    /// canonical key matches is returned — a hash-colliding sibling is
    /// skipped instead of being served silently as the wrong design.
    pub fn find_by_hash_checked(
        &self,
        hash: u64,
        expected_key: Option<&str>,
    ) -> Option<(String, ServeOutcome)> {
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            for (canonical, entry) in shard.iter() {
                if crate::key::fnv1a_64(canonical.as_bytes()) != hash {
                    continue;
                }
                if expected_key.is_some_and(|k| k != canonical) {
                    continue; // hash collision: not the design asked for
                }
                return Some((canonical.clone(), entry.value.clone()));
            }
        }
        None
    }

    /// Inserts (or refreshes) `key → value`, evicting the shard's
    /// least-recently-used entry if the shard is full.
    pub fn insert(&self, key: &SolveKey, value: ServeOutcome) {
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.lock(key);
        if shard.len() >= self.per_shard_capacity && !shard.contains_key(key.canonical()) {
            if let Some(lru) = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(key.canonical().to_string(), Entry { value, last_used });
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits recorded by [`get`](Self::get).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses recorded by [`get`](Self::get).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU policy.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Writes every entry to `path`, atomically: the data goes to a
    /// sibling temp file (suffixed with this process's PID, so two
    /// services persisting to the same path never interleave into one
    /// temp file), is flushed *and fsynced*, and only then renamed into
    /// place. A crash at any point leaves either the old complete file or
    /// the new complete file — never a torn mix — and a stray temp file
    /// from a crashed writer is invisible to [`load`](Self::load).
    /// Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the temp file is removed on error).
    pub fn save(&self, path: &Path) -> io::Result<usize> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = self.save_to_tmp(&tmp, path);
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    fn save_to_tmp(&self, tmp: &Path, path: &Path) -> io::Result<usize> {
        let mut written = 0usize;
        let file = std::fs::File::create(tmp)?;
        let mut out = io::BufWriter::new(file);
        writeln!(out, "{PERSIST_HEADER}")?;
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            for (canonical, entry) in shard.iter() {
                let content = format!("{canonical}\t{}", entry.value.to_line());
                let sum = crate::key::fnv1a_64(content.as_bytes());
                writeln!(out, "{content}\t#{sum:016x}")?;
                written += 1;
            }
        }
        out.flush()?;
        // The rename only commits bytes that are durably on disk: without
        // the fsync a crash shortly after rename could surface a complete-
        // looking file with a zeroed tail.
        out.get_ref().sync_all()?;
        std::fs::rename(tmp, path)?;
        Ok(written)
    }

    /// Loads entries persisted by [`save`](Self::save), inserting them with
    /// cold recency. Malformed lines and version-mismatched files are
    /// skipped silently (a damaged file means a colder cache, not a
    /// failed service). Returns the number of entries loaded.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (other than the file simply not
    /// existing, which loads zero entries).
    pub fn load(&self, path: &Path) -> io::Result<usize> {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut lines = io::BufReader::new(file).lines();
        let checksummed = match lines.next() {
            Some(Ok(header)) if header == PERSIST_HEADER => true,
            Some(Ok(header)) if header == PERSIST_HEADER_V1 => false,
            _ => return Ok(0),
        };
        let mut loaded = 0usize;
        for line in lines {
            let mut line = line?;
            if checksummed {
                // A v2 line must end with `\t#<16-hex fnv of everything
                // before it>`; a torn tail fails this gate instead of
                // parsing as a plausible shorter number.
                let Some((content, tag)) = line.rsplit_once('\t') else {
                    continue;
                };
                let Some(hex) = tag.strip_prefix('#') else {
                    continue;
                };
                let Ok(sum) = u64::from_str_radix(hex, 16) else {
                    continue;
                };
                if hex.len() != 16 || crate::key::fnv1a_64(content.as_bytes()) != sum {
                    continue;
                }
                line.truncate(content.len());
            }
            let Some((canonical, rest)) = line.split_once('\t') else {
                continue;
            };
            let Some(outcome) = ServeOutcome::from_line(rest) else {
                continue;
            };
            self.insert(&SolveKey::from_canonical(canonical.to_string()), outcome);
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomil_arith::PpgKind;
    use gomil_netlist::DesignMetrics;

    fn outcome(m: usize, tag: &str) -> ServeOutcome {
        ServeOutcome {
            name: format!("D-{tag}-{m}"),
            m,
            ppg: PpgKind::And,
            metrics: DesignMetrics {
                area: m as f64 * 1.5,
                delay: 3.25,
                power: 0.5,
            },
            gates: 10 * m,
            verified: true,
            strategy: "target-search".into(),
            objective: 100.0 + m as f64,
            degraded: false,
            vs_counts: vec![1, 2],
            solver_nodes: 1,
            solver_lp_iters: 7,
            solver_gap: 0.0,
            solver_warm_attempts: 0,
            solver_warm_hits: 0,
            solver_refactors: 0,
            verdict: gomil_netlist::VerdictTier::Proved,
            verify_vectors: 256,
            verify_us: 12,
            root_us: 800,
            root_lp_iters: 9,
            cuts_added: 0,
            improvements: vec![(25, 110.0 + m as f64), (80, 100.0 + m as f64)],
        }
    }

    fn key(m: usize) -> SolveKey {
        SolveKey::new(m, PpgKind::And, "w=8")
    }

    #[test]
    fn get_after_insert_hits_and_counts() {
        let c = ShardedCache::new(4, 16);
        assert!(c.get(&key(8)).is_none());
        c.insert(&key(8), outcome(8, "a"));
        assert_eq!(c.get(&key(8)).unwrap().name, "D-a-8");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        // One shard of capacity 2 makes the eviction order observable.
        let c = ShardedCache::new(1, 2);
        c.insert(&key(1), outcome(1, "a"));
        c.insert(&key(2), outcome(2, "a"));
        let _ = c.get(&key(1)); // refresh 1; 2 becomes LRU
        c.insert(&key(3), outcome(3, "a"));
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_none(), "stalest entry must be evicted");
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let dir = std::env::temp_dir().join("gomil-serve-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cache");
        let c = ShardedCache::new(4, 16);
        for m in [4usize, 6, 8] {
            c.insert(&key(m), outcome(m, "p"));
        }
        assert_eq!(c.save(&path).unwrap(), 3);

        let d = ShardedCache::new(2, 16); // different shard count is fine
        assert_eq!(d.load(&path).unwrap(), 3);
        for m in [4usize, 6, 8] {
            assert_eq!(d.get(&key(m)).unwrap(), outcome(m, "p"));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn probe_hits_without_counting_misses() {
        let c = ShardedCache::new(2, 8);
        assert!(c.probe(&key(8)).is_none());
        assert_eq!(c.misses(), 0, "a probe miss is not a lookup miss");
        c.insert(&key(8), outcome(8, "p"));
        assert_eq!(c.probe(&key(8)).unwrap().name, "D-p-8");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn find_by_hash_scans_all_shards_without_touching_counters() {
        let c = ShardedCache::new(4, 16);
        for m in [4usize, 5, 6, 7] {
            c.insert(&key(m), outcome(m, "h"));
        }
        let k = key(6);
        let (canonical, found) = c.find_by_hash(k.hash64()).unwrap();
        assert_eq!(canonical, k.canonical());
        assert_eq!(found, outcome(6, "h"));
        assert!(c.find_by_hash(k.hash64() ^ 1).is_none());
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    /// Regression for the hash-only `/design` lookup: a 64-bit FNV-1a
    /// collision between two cached keys would have served whichever
    /// entry the shard scan reached first. Constructing a real 64-bit
    /// FNV collision is computationally impractical in a unit test, so
    /// this forces the exact code path a collision takes: a lookup whose
    /// hash resolves to an entry but whose full key belongs to a
    /// *different* design must refuse the hash match instead of serving
    /// the wrong outcome.
    #[test]
    fn forced_hash_collision_is_detected_by_the_key_compare() {
        let c = ShardedCache::new(4, 16);
        c.insert(&key(6), outcome(6, "h"));
        c.insert(&key(7), outcome(7, "h"));
        // Caller knows the full key and it matches: served.
        let (canonical, found) = c
            .find_by_hash_checked(key(6).hash64(), Some(key(6).canonical()))
            .unwrap();
        assert_eq!(canonical, key(6).canonical());
        assert_eq!(found, outcome(6, "h"));
        // Collision scenario: the hash resolves (to m=6's entry) but the
        // caller's full key names m=7 — the key compare must win.
        assert!(
            c.find_by_hash_checked(key(6).hash64(), Some(key(7).canonical()))
                .is_none(),
            "a hash match with a mismatched key must never be served"
        );
    }

    /// The crash simulation behind the atomic-persistence contract: a
    /// writer dying mid-save leaves only a temp file (the real path keeps
    /// its previous complete contents), and even if a torn file somehow
    /// reached the real path — a crashed pre-hardening writer, a copy cut
    /// short — loading it can never corrupt the cache: every byte-level
    /// truncation of a valid file loads some prefix of the saved entries,
    /// each bit-exact, and never errors or panics.
    #[test]
    fn torn_writes_can_never_corrupt_the_load_path() {
        let dir = std::env::temp_dir().join(format!("gomil-serve-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        let c = ShardedCache::new(2, 16);
        for m in [4usize, 6, 8, 10] {
            c.insert(&key(m), outcome(m, "t"));
        }
        assert_eq!(c.save(&path).unwrap(), 4);
        let full = std::fs::read(&path).unwrap();

        // A stray temp file from a crashed writer must not affect loads.
        std::fs::write(dir.join("cache.tsv.tmp.12345"), b"half a hea").unwrap();

        let torn_path = dir.join("torn.tsv");
        for cut in 0..=full.len() {
            std::fs::write(&torn_path, &full[..cut]).unwrap();
            let d = ShardedCache::new(4, 16);
            let loaded = d.load(&torn_path).expect("a torn file is not an I/O error");
            assert_eq!(loaded, d.len());
            // Every entry that did survive the tear is bit-exact.
            let mut found = 0;
            for m in [4usize, 6, 8, 10] {
                if let Some(v) = d.probe(&key(m)) {
                    assert_eq!(v.to_line(), outcome(m, "t").to_line());
                    found += 1;
                }
            }
            assert_eq!(found, loaded, "nothing bogus may be loaded");
            if cut == full.len() {
                assert_eq!(loaded, 4, "the untorn file loads everything");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_replaces_the_old_file_atomically_not_in_place() {
        let dir = std::env::temp_dir().join(format!("gomil-serve-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        let c = ShardedCache::new(1, 8);
        c.insert(&key(4), outcome(4, "a"));
        assert_eq!(c.save(&path).unwrap(), 1);
        c.insert(&key(5), outcome(5, "a"));
        assert_eq!(c.save(&path).unwrap(), 2);
        // No temp residue after a successful save.
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(residue.is_empty(), "temp files must be renamed away");
        let d = ShardedCache::new(1, 8);
        assert_eq!(d.load(&path).unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_corrupt_files_load_cold() {
        let c = ShardedCache::new(2, 8);
        let missing = std::env::temp_dir().join("gomil-serve-does-not-exist.cache");
        assert_eq!(c.load(&missing).unwrap(), 0);

        let dir = std::env::temp_dir().join("gomil-serve-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("corrupt.cache");
        std::fs::write(&bad, "wrong header\njunk\n").unwrap();
        assert_eq!(c.load(&bad).unwrap(), 0);
        std::fs::write(&bad, format!("{PERSIST_HEADER}\nnot-a-valid-entry\n")).unwrap();
        assert_eq!(c.load(&bad).unwrap(), 0);
        std::fs::remove_file(&bad).unwrap();
    }

    #[test]
    fn v1_files_without_checksums_still_load() {
        let dir = std::env::temp_dir().join(format!("gomil-serve-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.cache");
        let k = key(4);
        let body = format!(
            "{PERSIST_HEADER_V1}\n{}\t{}\n",
            k.canonical(),
            outcome(4, "v1").to_line()
        );
        std::fs::write(&path, body).unwrap();
        let c = ShardedCache::new(2, 8);
        assert_eq!(c.load(&path).unwrap(), 1);
        assert_eq!(c.probe(&k).unwrap(), outcome(4, "v1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
