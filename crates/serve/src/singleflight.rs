//! Request coalescing: concurrent duplicate work runs once.
//!
//! `N` threads asking for the same key at the same time trigger exactly
//! one execution of the compute closure; the leader publishes its result
//! through a condition variable and the `N − 1` followers block until it
//! lands, then share a clone. Requests arriving *after* the flight
//! completes are not coalesced (the flight is removed on completion) —
//! that is the cache's job, not this type's.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Flight<V> {
    result: Mutex<Option<V>>,
    done: Condvar,
}

/// Deduplicates concurrent executions per key. `V` must be `Clone` so the
/// leader's result can be fanned out to every follower.
pub struct SingleFlight<V> {
    inflight: Mutex<HashMap<String, Arc<Flight<V>>>>,
    joins: AtomicU64,
    leads: AtomicU64,
}

impl<V: Clone> Default for SingleFlight<V> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl<V: Clone> SingleFlight<V> {
    /// An empty flight table.
    pub fn new() -> SingleFlight<V> {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
            joins: AtomicU64::new(0),
            leads: AtomicU64::new(0),
        }
    }

    /// Runs `compute` for `key`, unless a flight for `key` is already in
    /// progress — in that case blocks until the leader finishes and
    /// returns a clone of its result. The flag is `true` when this call
    /// was the leader (actually executed `compute`).
    ///
    /// `compute` must not unwind: a panicking leader would strand its
    /// followers. Callers wrap fallible work in `catch_unwind` and encode
    /// the panic into `V` (see the service's solve path).
    pub fn run(&self, key: &str, compute: impl FnOnce() -> V) -> (V, bool) {
        let flight = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(existing) = inflight.get(key) {
                // Follower: wait for the leader's result outside the map lock.
                let flight = Arc::clone(existing);
                drop(inflight);
                self.joins.fetch_add(1, Ordering::Relaxed);
                let mut slot = flight.result.lock().unwrap_or_else(|p| p.into_inner());
                while slot.is_none() {
                    slot = flight.done.wait(slot).unwrap_or_else(|p| p.into_inner());
                }
                return (slot.clone().expect("leader published a result"), false);
            }
            let flight = Arc::new(Flight {
                result: Mutex::new(None),
                done: Condvar::new(),
            });
            inflight.insert(key.to_string(), Arc::clone(&flight));
            flight
        };

        // Leader: compute, publish, deregister, wake followers.
        self.leads.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        *flight.result.lock().unwrap_or_else(|p| p.into_inner()) = Some(value.clone());
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(key);
        flight.done.notify_all();
        (value, true)
    }

    /// How many calls joined an existing flight instead of computing.
    pub fn joins(&self) -> u64 {
        self.joins.load(Ordering::Relaxed)
    }

    /// How many calls led a flight (executed the compute closure).
    pub fn leads(&self) -> u64 {
        self.leads.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn sequential_runs_do_not_coalesce() {
        let sf = SingleFlight::new();
        let (a, led_a) = sf.run("k", || 1);
        let (b, led_b) = sf.run("k", || 2);
        assert_eq!((a, b), (1, 2), "completed flights must not linger");
        assert!(led_a && led_b);
        assert_eq!(sf.joins(), 0);
    }

    #[test]
    fn concurrent_duplicates_compute_once() {
        let sf = Arc::new(SingleFlight::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let sf = Arc::clone(&sf);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                sf.run("shared", || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough for others to join.
                    std::thread::sleep(Duration::from_millis(50));
                    42
                })
                .0
            }));
        }
        let values: Vec<i32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(values.iter().all(|&v| v == 42));
        // At least some threads must have overlapped the leader's sleep;
        // every overlap is a join, and each join skipped a compute.
        assert_eq!(
            computes.load(Ordering::SeqCst) as u64 + sf.joins(),
            16,
            "every call either computes or joins"
        );
        assert!(sf.joins() > 0, "16 threads over a 50ms flight must overlap");
    }

    #[test]
    fn distinct_keys_do_not_block_each_other() {
        let sf = Arc::new(SingleFlight::new());
        let a = {
            let sf = Arc::clone(&sf);
            std::thread::spawn(move || sf.run("a", || "a").0)
        };
        let b = {
            let sf = Arc::clone(&sf);
            std::thread::spawn(move || sf.run("b", || "b").0)
        };
        assert_eq!(a.join().unwrap(), "a");
        assert_eq!(b.join().unwrap(), "b");
        assert_eq!(sf.joins(), 0);
        assert_eq!(sf.leads(), 2);
    }
}
