//! Service observability: counters and per-rung latency histograms.

use gomil_netlist::VerdictTier;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// *Inclusive* upper edges (milliseconds) of the latency histogram
/// buckets, Prometheus `le` style: a sample lands in the first bucket
/// whose edge it does not exceed. The last bucket is open-ended.
pub const LATENCY_BUCKETS: [u64; 5] = [10, 100, 1_000, 10_000, u64::MAX];

/// A latency histogram for one degradation-ladder rung (or the synthetic
/// `cache-hit` row).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RungLatency {
    /// Sample counts per [`LATENCY_BUCKETS`] bucket.
    pub buckets: [u64; 5],
    /// Total samples.
    pub count: u64,
    /// Sum of sample durations in microseconds (for the mean).
    pub total_us: u64,
}

impl RungLatency {
    fn record(&mut self, took: Duration) {
        let ms = took.as_millis() as u64;
        // Prometheus `le` convention: edges are inclusive upper bounds,
        // so an exactly-10ms sample counts in the ≤10ms bucket.
        let idx = LATENCY_BUCKETS
            .iter()
            .position(|&edge| ms <= edge)
            .unwrap_or(LATENCY_BUCKETS.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_us += took.as_micros() as u64;
    }

    /// Mean latency over all samples.
    pub fn mean(&self) -> Duration {
        match self.total_us.checked_div(self.count) {
            Some(us) => Duration::from_micros(us),
            None => Duration::ZERO,
        }
    }
}

/// One solve's branch-and-bound telemetry, as fed to
/// [`ServiceMetrics::record_solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverSample {
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Simplex iterations spent.
    pub lp_iters: u64,
    /// Warm-restart attempts (nodes that carried a parent basis).
    pub warm_attempts: u64,
    /// Warm-restart hits (dual simplex succeeded, no primal fallback).
    pub warm_hits: u64,
    /// Basis refactorizations (eta-file rebuilds).
    pub refactors: u64,
    /// Root-stage wall-clock in microseconds (build + presolve + root LP
    /// + cut separation).
    pub root_us: u64,
    /// Simplex iterations of the root LP alone.
    pub root_lp_iters: u64,
    /// Cutting planes appended at the root.
    pub cuts_added: u64,
}

/// Thread-safe counters a [`SolveService`](crate::SolveService) maintains
/// while draining batches.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Requests accepted.
    pub requests: AtomicU64,
    /// Solves actually executed (ILP pipeline runs) — cache hits and
    /// singleflight joins do not count.
    pub solves: AtomicU64,
    /// Solves that came back degraded (budget-shaped or failure-absorbing).
    pub degraded: AtomicU64,
    /// Requests that failed outright.
    pub errors: AtomicU64,
    /// Solves that were offered a neighbor's incumbent as a warm start.
    pub warm_hints: AtomicU64,
    /// Peak depth of the bounded job queue.
    pub queue_peak: AtomicU64,
    /// Branch-and-bound nodes explored across all executed solves.
    pub solver_nodes: AtomicU64,
    /// Simplex iterations spent across all executed solves.
    pub solver_lp_iters: AtomicU64,
    /// Warm-restart attempts (nodes that carried a parent basis) across
    /// all executed solves.
    pub solver_warm_attempts: AtomicU64,
    /// Warm-restart hits (no from-scratch fallback) across all solves.
    pub solver_warm_hits: AtomicU64,
    /// Basis refactorizations across all executed solves.
    pub solver_refactors: AtomicU64,
    /// Root-stage wall-clock (µs) across all executed solves.
    pub solver_root_us: AtomicU64,
    /// Root-LP simplex iterations across all executed solves.
    pub solver_root_lp_iters: AtomicU64,
    /// Root cutting planes appended across all executed solves.
    pub solver_cuts_added: AtomicU64,
    /// Solves whose netlist equivalence was proved exhaustively.
    pub verdict_proved: AtomicU64,
    /// Solves whose netlist passed the sampled equivalence check.
    pub verdict_tested: AtomicU64,
    /// Solves whose netlist failed equivalence (these error out and are
    /// never cached or served).
    pub verdict_failed: AtomicU64,
    /// Solves that skipped equivalence verification (disabled, or an
    /// approximate/rectangular design).
    pub verdict_skipped: AtomicU64,
    /// Outcomes the admission gate refused to cache because their verdict
    /// tier fell below [`ServeConfig::min_verdict`](crate::ServeConfig).
    pub verify_rejected: AtomicU64,
    /// Requests refused by HTTP admission control (429 load shedding).
    /// Bumped by the `gomil-httpd` layer, not by the in-process service.
    pub shed: AtomicU64,
    /// Requests whose solve was cancelled because the per-request deadline
    /// passed or the client disconnected. Bumped by the HTTP layer.
    pub deadline_cancelled: AtomicU64,
    /// Requests answered from the precomputed design mart (recency-neutral:
    /// these never touch the LRU cache or the solver).
    pub mart_hits: AtomicU64,
    latency: Mutex<BTreeMap<String, RungLatency>>,
}

impl ServiceMetrics {
    /// Records one latency sample for `rung` (a `Rung::label` string, or
    /// `cache-hit` for served-from-cache requests).
    pub fn record_latency(&self, rung: &str, took: Duration) {
        let mut map = self.latency.lock().unwrap_or_else(|p| p.into_inner());
        map.entry(rung.to_string()).or_default().record(took);
    }

    /// Raises the recorded queue-depth peak to at least `depth`.
    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Accumulates one solve's branch-and-bound telemetry (nodes explored,
    /// simplex iterations, warm-restart attempts/hits, and basis
    /// refactorizations) into the service-wide totals.
    pub fn record_solver(&self, stats: SolverSample) {
        self.solver_nodes.fetch_add(stats.nodes, Ordering::Relaxed);
        self.solver_lp_iters
            .fetch_add(stats.lp_iters, Ordering::Relaxed);
        self.solver_warm_attempts
            .fetch_add(stats.warm_attempts, Ordering::Relaxed);
        self.solver_warm_hits
            .fetch_add(stats.warm_hits, Ordering::Relaxed);
        self.solver_refactors
            .fetch_add(stats.refactors, Ordering::Relaxed);
        self.solver_root_us
            .fetch_add(stats.root_us, Ordering::Relaxed);
        self.solver_root_lp_iters
            .fetch_add(stats.root_lp_iters, Ordering::Relaxed);
        self.solver_cuts_added
            .fetch_add(stats.cuts_added, Ordering::Relaxed);
    }

    /// Counts one solve's equivalence verdict toward the per-tier totals.
    pub fn record_verdict(&self, tier: VerdictTier) {
        let counter = match tier {
            VerdictTier::Proved => &self.verdict_proved,
            VerdictTier::Tested => &self.verdict_tested,
            VerdictTier::Failed => &self.verdict_failed,
            VerdictTier::Skipped => &self.verdict_skipped,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the per-rung latency histograms.
    pub fn latency_snapshot(&self) -> Vec<(String, RungLatency)> {
        self.latency
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// A point-in-time summary of one service's counters, renderable as the
/// CLI's metrics table.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Requests accepted.
    pub requests: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Singleflight joins (deduplicated concurrent requests).
    pub dedup_joins: u64,
    /// Solves executed.
    pub solves: u64,
    /// Degraded solves (served, not cached).
    pub degraded: u64,
    /// Failed requests.
    pub errors: u64,
    /// Solves offered a warm-start hint.
    pub warm_hints: u64,
    /// Peak job-queue depth.
    pub queue_peak: u64,
    /// Branch-and-bound nodes explored across all executed solves.
    pub solver_nodes: u64,
    /// Simplex iterations spent across all executed solves.
    pub solver_lp_iters: u64,
    /// Warm-restart attempts across all executed solves.
    pub solver_warm_attempts: u64,
    /// Warm-restart hits across all executed solves.
    pub solver_warm_hits: u64,
    /// Basis refactorizations across all executed solves.
    pub solver_refactors: u64,
    /// Root-stage wall-clock (µs) across all executed solves.
    pub solver_root_us: u64,
    /// Root-LP simplex iterations across all executed solves.
    pub solver_root_lp_iters: u64,
    /// Root cutting planes appended across all executed solves.
    pub solver_cuts_added: u64,
    /// Solves with an exhaustively proved equivalence verdict.
    pub verdict_proved: u64,
    /// Solves with a sampled (tested) equivalence verdict.
    pub verdict_tested: u64,
    /// Solves whose netlist failed equivalence verification.
    pub verdict_failed: u64,
    /// Solves that skipped equivalence verification.
    pub verdict_skipped: u64,
    /// Outcomes refused by the verdict admission gate (not cached).
    pub verify_rejected: u64,
    /// Requests shed by HTTP admission control (429).
    pub shed: u64,
    /// Solves cancelled on deadline or client disconnect.
    pub deadline_cancelled: u64,
    /// Requests answered from the precomputed design mart.
    pub mart_hits: u64,
    /// Entries available in the attached mart (0 when none is attached).
    pub mart_entries: usize,
    /// Entries currently cached.
    pub cache_len: usize,
    /// Per-rung latency histograms, alphabetical by rung.
    pub per_rung: Vec<(String, RungLatency)>,
}

impl MetricsReport {
    /// Cache hit rate over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Fraction of accepted requests answered straight from the mart
    /// (0 when no requests were accepted).
    pub fn mart_coverage(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.mart_hits as f64 / self.requests as f64
        }
    }

    /// Warm-restart hit rate across all executed solves (0 when no
    /// restart was attempted).
    pub fn warm_restart_rate(&self) -> f64 {
        if self.solver_warm_attempts == 0 {
            0.0
        } else {
            self.solver_warm_hits as f64 / self.solver_warm_attempts as f64
        }
    }

    /// Average simplex pivots per branch-and-bound node.
    pub fn pivots_per_node(&self) -> f64 {
        self.solver_lp_iters as f64 / self.solver_nodes.max(1) as f64
    }

    /// Renders the report in the Prometheus text exposition format
    /// (version 0.0.4), served by `GET /metrics`. Counters become
    /// `gomil_*_total`, gauges keep their name, and each per-rung
    /// histogram becomes a `gomil_rung_latency_ms` histogram family with a
    /// `rung` label — [`LATENCY_BUCKETS`] already uses Prometheus's
    /// inclusive-`le` convention, so the cumulative buckets here are a
    /// running sum, with the final open bucket rendered as `le="+Inf"`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter("gomil_requests_total", "Requests accepted.", self.requests);
        counter(
            "gomil_shed_total",
            "Requests shed by admission control (HTTP 429).",
            self.shed,
        );
        counter(
            "gomil_deadline_cancelled_total",
            "Solves cancelled on deadline or client disconnect.",
            self.deadline_cancelled,
        );
        counter("gomil_solves_total", "Solves executed.", self.solves);
        counter(
            "gomil_degraded_total",
            "Degraded solves (served, never cached).",
            self.degraded,
        );
        counter("gomil_errors_total", "Failed requests.", self.errors);
        counter(
            "gomil_mart_hits_total",
            "Requests answered from the precomputed design mart.",
            self.mart_hits,
        );
        counter("gomil_cache_hits_total", "Cache hits.", self.hits);
        counter("gomil_cache_misses_total", "Cache misses.", self.misses);
        counter(
            "gomil_cache_evictions_total",
            "LRU evictions.",
            self.evictions,
        );
        counter(
            "gomil_dedup_joins_total",
            "Singleflight joins (deduplicated concurrent requests).",
            self.dedup_joins,
        );
        counter(
            "gomil_warm_hints_total",
            "Solves offered a warm-start hint.",
            self.warm_hints,
        );
        counter(
            "gomil_solver_nodes_total",
            "Branch-and-bound nodes explored.",
            self.solver_nodes,
        );
        counter(
            "gomil_solver_lp_iters_total",
            "Simplex iterations spent.",
            self.solver_lp_iters,
        );
        counter(
            "gomil_verify_rejected_total",
            "Outcomes refused by the verdict admission gate.",
            self.verify_rejected,
        );
        let _ = writeln!(
            out,
            "# HELP gomil_verdicts_total Equivalence verdicts by tier."
        );
        let _ = writeln!(out, "# TYPE gomil_verdicts_total counter");
        for (tier, value) in [
            ("proved", self.verdict_proved),
            ("tested", self.verdict_tested),
            ("failed", self.verdict_failed),
            ("skipped", self.verdict_skipped),
        ] {
            let _ = writeln!(out, "gomil_verdicts_total{{tier=\"{tier}\"}} {value}");
        }
        let _ = writeln!(out, "# HELP gomil_cache_entries Entries currently cached.");
        let _ = writeln!(out, "# TYPE gomil_cache_entries gauge");
        let _ = writeln!(out, "gomil_cache_entries {}", self.cache_len);
        let _ = writeln!(
            out,
            "# HELP gomil_mart_entries Entries available in the attached design mart."
        );
        let _ = writeln!(out, "# TYPE gomil_mart_entries gauge");
        let _ = writeln!(out, "gomil_mart_entries {}", self.mart_entries);
        let _ = writeln!(
            out,
            "# HELP gomil_mart_coverage Fraction of requests answered from the mart."
        );
        let _ = writeln!(out, "# TYPE gomil_mart_coverage gauge");
        let _ = writeln!(out, "gomil_mart_coverage {}", self.mart_coverage());
        let _ = writeln!(out, "# HELP gomil_queue_peak Peak job-queue depth.");
        let _ = writeln!(out, "# TYPE gomil_queue_peak gauge");
        let _ = writeln!(out, "gomil_queue_peak {}", self.queue_peak);
        let _ = writeln!(
            out,
            "# HELP gomil_rung_latency_ms Request latency by degradation rung."
        );
        let _ = writeln!(out, "# TYPE gomil_rung_latency_ms histogram");
        for (rung, h) in &self.per_rung {
            let mut cumulative = 0u64;
            for (i, &edge) in LATENCY_BUCKETS.iter().enumerate() {
                cumulative += h.buckets[i];
                let le = if edge == u64::MAX {
                    "+Inf".to_string()
                } else {
                    edge.to_string()
                };
                let _ = writeln!(
                    out,
                    "gomil_rung_latency_ms_bucket{{rung=\"{rung}\",le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "gomil_rung_latency_ms_sum{{rung=\"{rung}\"}} {}",
                h.total_us as f64 / 1_000.0
            );
            let _ = writeln!(
                out,
                "gomil_rung_latency_ms_count{{rung=\"{rung}\"}} {}",
                h.count
            );
        }
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "── service metrics ────────────────────────────────────────"
        )?;
        writeln!(
            f,
            "requests {:>6}   solves {:>6}   errors {:>6}   degraded {:>4}",
            self.requests, self.solves, self.errors, self.degraded
        )?;
        writeln!(
            f,
            "hits     {:>6}   misses {:>6}   hit-rate {:>5.1}%  evictions {:>3}",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.evictions
        )?;
        writeln!(
            f,
            "dedup joins {:>3}   warm-start hints {:>3}   queue peak {:>4}   cached {:>4}",
            self.dedup_joins, self.warm_hints, self.queue_peak, self.cache_len
        )?;
        writeln!(
            f,
            "B&B nodes {:>9}   simplex iterations {:>11}   ({:.1} pivots/node)",
            self.solver_nodes,
            self.solver_lp_iters,
            self.pivots_per_node()
        )?;
        writeln!(
            f,
            "warm restarts {:>5}/{:<5} ({:>5.1}% hit)   refactorizations {:>6}",
            self.solver_warm_hits,
            self.solver_warm_attempts,
            100.0 * self.warm_restart_rate(),
            self.solver_refactors
        )?;
        writeln!(
            f,
            "root stage {:>9}µs   root LP iterations {:>9}   cuts added {:>6}",
            self.solver_root_us, self.solver_root_lp_iters, self.solver_cuts_added
        )?;
        writeln!(
            f,
            "verdicts: proved {:>5}  tested {:>5}  skipped {:>5}  failed {:>3}  gate-rejected {:>3}",
            self.verdict_proved,
            self.verdict_tested,
            self.verdict_skipped,
            self.verdict_failed,
            self.verify_rejected
        )?;
        writeln!(
            f,
            "admission: shed {:>6}   deadline-cancelled {:>6}",
            self.shed, self.deadline_cancelled
        )?;
        writeln!(
            f,
            "mart: hits {:>6}   entries {:>6}   coverage {:>5.1}%",
            self.mart_hits,
            self.mart_entries,
            100.0 * self.mart_coverage()
        )?;
        writeln!(
            f,
            "{:<14} {:>6} {:>9} | {:>6} {:>7} {:>6} {:>6} {:>6}",
            "latency/rung", "count", "mean", "≤10ms", "≤100ms", "≤1s", "≤10s", ">10s"
        )?;
        for (rung, h) in &self.per_rung {
            writeln!(
                f,
                "{:<14} {:>6} {:>9.1?} | {:>6} {:>7} {:>6} {:>6} {:>6}",
                rung,
                h.count,
                h.mean(),
                h.buckets[0],
                h.buckets[1],
                h.buckets[2],
                h.buckets[3],
                h.buckets[4]
            )?;
        }
        write!(
            f,
            "───────────────────────────────────────────────────────────"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude() {
        let mut h = RungLatency::default();
        h.record(Duration::from_millis(1));
        h.record(Duration::from_millis(50));
        h.record(Duration::from_millis(500));
        h.record(Duration::from_secs(5));
        h.record(Duration::from_secs(50));
        assert_eq!(h.buckets, [1, 1, 1, 1, 1]);
        assert_eq!(h.count, 5);
        assert!(h.mean() > Duration::from_secs(10));
    }

    #[test]
    fn histogram_edges_are_inclusive_upper_bounds() {
        // Prometheus `le` convention: a sample exactly on an edge belongs
        // to that edge's bucket, and the first strictly-above value rolls
        // into the next one.
        let mut h = RungLatency::default();
        h.record(Duration::from_millis(10));
        h.record(Duration::from_millis(11));
        h.record(Duration::from_millis(100));
        h.record(Duration::from_millis(101));
        h.record(Duration::from_millis(1_000));
        h.record(Duration::from_millis(1_001));
        h.record(Duration::from_millis(10_000));
        h.record(Duration::from_millis(10_001));
        assert_eq!(h.buckets, [1, 2, 2, 2, 1]);
        assert_eq!(h.count, 8);
    }

    #[test]
    fn solver_counters_accumulate_across_solves() {
        let m = ServiceMetrics::default();
        m.record_solver(SolverSample {
            nodes: 120,
            lp_iters: 4_500,
            warm_attempts: 100,
            warm_hits: 90,
            refactors: 7,
            root_us: 900,
            root_lp_iters: 60,
            cuts_added: 4,
        });
        m.record_solver(SolverSample {
            nodes: 3,
            lp_iters: 80,
            warm_attempts: 2,
            warm_hits: 1,
            refactors: 1,
            root_us: 100,
            root_lp_iters: 12,
            cuts_added: 0,
        });
        assert_eq!(m.solver_nodes.load(Ordering::Relaxed), 123);
        assert_eq!(m.solver_lp_iters.load(Ordering::Relaxed), 4_580);
        assert_eq!(m.solver_warm_attempts.load(Ordering::Relaxed), 102);
        assert_eq!(m.solver_warm_hits.load(Ordering::Relaxed), 91);
        assert_eq!(m.solver_refactors.load(Ordering::Relaxed), 8);
        assert_eq!(m.solver_root_us.load(Ordering::Relaxed), 1_000);
        assert_eq!(m.solver_root_lp_iters.load(Ordering::Relaxed), 72);
        assert_eq!(m.solver_cuts_added.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn verdict_counters_route_by_tier() {
        let m = ServiceMetrics::default();
        m.record_verdict(VerdictTier::Proved);
        m.record_verdict(VerdictTier::Proved);
        m.record_verdict(VerdictTier::Tested);
        m.record_verdict(VerdictTier::Skipped);
        m.record_verdict(VerdictTier::Failed);
        assert_eq!(m.verdict_proved.load(Ordering::Relaxed), 2);
        assert_eq!(m.verdict_tested.load(Ordering::Relaxed), 1);
        assert_eq!(m.verdict_skipped.load(Ordering::Relaxed), 1);
        assert_eq!(m.verdict_failed.load(Ordering::Relaxed), 1);
        assert_eq!(m.verify_rejected.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn report_renders_every_counter() {
        let m = ServiceMetrics::default();
        m.requests.store(10, Ordering::Relaxed);
        m.record_latency("joint-ilp", Duration::from_millis(3));
        m.record_latency("cache-hit", Duration::from_micros(20));
        m.note_queue_depth(7);
        m.note_queue_depth(3); // must not lower the peak
        let report = MetricsReport {
            requests: 10,
            hits: 4,
            misses: 6,
            evictions: 1,
            dedup_joins: 2,
            solves: 6,
            degraded: 1,
            errors: 0,
            warm_hints: 3,
            queue_peak: m.queue_peak.load(Ordering::Relaxed),
            solver_nodes: 123,
            solver_lp_iters: 4_580,
            solver_warm_attempts: 102,
            solver_warm_hits: 91,
            solver_refactors: 8,
            solver_root_us: 1_000,
            solver_root_lp_iters: 72,
            solver_cuts_added: 4,
            verdict_proved: 4,
            verdict_tested: 1,
            verdict_failed: 0,
            verdict_skipped: 1,
            verify_rejected: 1,
            shed: 9,
            deadline_cancelled: 2,
            mart_hits: 3,
            mart_entries: 12,
            cache_len: 5,
            per_rung: m.latency_snapshot(),
        };
        assert_eq!(report.queue_peak, 7);
        assert!((report.mart_coverage() - 0.3).abs() < 1e-12);
        assert!((report.hit_rate() - 0.4).abs() < 1e-12);
        assert!((report.warm_restart_rate() - 91.0 / 102.0).abs() < 1e-12);
        assert!((report.pivots_per_node() - 4_580.0 / 123.0).abs() < 1e-12);
        let text = report.to_string();
        for needle in [
            "hits",
            "dedup joins",
            "joint-ilp",
            "cache-hit",
            "queue peak",
            "B&B nodes",
            "simplex iterations",
            "warm restarts",
            "refactorizations",
            "root stage",
            "root LP iterations",
            "cuts added",
            "verdicts:",
            "gate-rejected",
            "admission:",
            "deadline-cancelled",
            "mart:",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_labelled() {
        let m = ServiceMetrics::default();
        m.record_latency("joint-ilp", Duration::from_millis(3));
        m.record_latency("joint-ilp", Duration::from_millis(50));
        m.record_latency("joint-ilp", Duration::from_secs(50));
        let report = MetricsReport {
            requests: 10,
            hits: 4,
            misses: 6,
            evictions: 1,
            dedup_joins: 2,
            solves: 6,
            degraded: 1,
            errors: 0,
            warm_hints: 3,
            queue_peak: 7,
            solver_nodes: 123,
            solver_lp_iters: 4_580,
            solver_warm_attempts: 102,
            solver_warm_hits: 91,
            solver_refactors: 8,
            solver_root_us: 1_000,
            solver_root_lp_iters: 72,
            solver_cuts_added: 4,
            verdict_proved: 4,
            verdict_tested: 1,
            verdict_failed: 0,
            verdict_skipped: 1,
            verify_rejected: 1,
            shed: 9,
            deadline_cancelled: 2,
            mart_hits: 3,
            mart_entries: 12,
            cache_len: 5,
            per_rung: m.latency_snapshot(),
        };
        let text = report.to_prometheus();
        for needle in [
            "gomil_requests_total 10",
            "gomil_shed_total 9",
            "gomil_deadline_cancelled_total 2",
            "gomil_verdicts_total{tier=\"proved\"} 4",
            "gomil_cache_entries 5",
            "gomil_mart_hits_total 3",
            "gomil_mart_entries 12",
            "gomil_mart_coverage 0.3",
            // Cumulative buckets: 1 sample ≤10ms, 2 ≤100ms, still 2 at
            // ≤1000/≤10000, all 3 at +Inf.
            "gomil_rung_latency_ms_bucket{rung=\"joint-ilp\",le=\"10\"} 1",
            "gomil_rung_latency_ms_bucket{rung=\"joint-ilp\",le=\"100\"} 2",
            "gomil_rung_latency_ms_bucket{rung=\"joint-ilp\",le=\"10000\"} 2",
            "gomil_rung_latency_ms_bucket{rung=\"joint-ilp\",le=\"+Inf\"} 3",
            "gomil_rung_latency_ms_count{rung=\"joint-ilp\"} 3",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Every non-comment line is `name{labels} value` with a parseable
        // float value — the shape a Prometheus scraper requires.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        }
    }
}
