//! The concurrent solve service: worker pool + cache + singleflight +
//! warm-start hand-off.

use crate::cache::ShardedCache;
use crate::key::SolveKey;
use crate::metrics::{MetricsReport, ServiceMetrics, SolverSample};
use crate::outcome::ServeOutcome;
use crate::singleflight::SingleFlight;
use gomil_arith::PpgKind;
use gomil_budget::Budget;
use gomil_netlist::VerdictTier;
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One multiplier-generation request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SolveRequest {
    /// Word length.
    pub m: usize,
    /// Partial product generator.
    pub ppg: PpgKind,
}

impl fmt::Display for SolveRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{} {}", self.m, self.m, self.ppg.label())
    }
}

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The solve pipeline returned an error (message from the underlying
    /// `GomilError`).
    Solve(String),
    /// The emitted netlist failed equivalence verification: the request
    /// errors out and nothing is cached, served onward, or offered as a
    /// warm start. The message carries the counterexample.
    Verification(String),
    /// The solver panicked; the panic was contained to this request and
    /// the worker kept draining the queue.
    Panic(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Solve(m) => write!(f, "solve failed: {m}"),
            ServeError::Verification(m) => write!(f, "verification rejected the netlist: {m}"),
            ServeError::Panic(m) => write!(f, "solver panicked: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed neighbor solve's incumbent, offered as a warm start to
/// later requests (see [`SolveService`] docs for the neighbor relation).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmHint {
    /// Word length of the donor solve.
    pub m: usize,
    /// PPG of the donor solve.
    pub ppg: PpgKind,
    /// The donor's final BCV column counts (LSB first, entries 1 or 2).
    pub counts: Vec<u32>,
}

/// The solver injected into a [`SolveService`]: runs one full pipeline for
/// `request`, optionally seeded with a neighbor's incumbent profile and
/// bounded by a caller-supplied per-request [`Budget`].
///
/// Must be pure up to the warm start: the same request must yield an
/// equivalent certified result regardless of the hint (hints may only
/// change *how fast* branch and bound closes, never what is optimal). The
/// budget is a latency bound with shared cancellation — the HTTP layer
/// cancels it when a client disconnects or the server drains, and the
/// solver must then unwind promptly (degrading down its fallback ladder
/// rather than erroring, so joined duplicate requests still get an
/// answer). `None` means the service imposes no per-request bound.
pub type SolverFn = dyn Fn(&SolveRequest, Option<&WarmHint>, Option<&Budget>) -> Result<ServeOutcome, ServeError>
    + Send
    + Sync;

/// A read-only precomputed design store consulted *before* the LRU cache
/// and the solver (the lookup order is mart → cache → solve). The
/// `gomil-mart` crate provides the production implementation — a
/// versioned, checksummed, offline-built store over the hot
/// (m, PPG, config) lattice — while tests inject synthetic maps.
///
/// Contract: lookups are identity-exact (the store compares the *full
/// canonical key*, never just its 64-bit hash), immutable for the life of
/// the service, and cheap enough to sit on the request fast path. Store
/// hits are recency-neutral: they never touch the LRU cache, so a mart
/// deployment cannot distort eviction order for the long tail.
pub trait DesignStore: Send + Sync {
    /// The outcome stored for `key`, compared by full canonical key.
    fn get(&self, key: &SolveKey) -> Option<ServeOutcome>;
    /// Resolves a 64-bit key hash to `(canonical key, outcome)` — the
    /// key comes back so callers can detect hash collisions.
    fn find_by_hash(&self, hash: u64) -> Option<(String, ServeOutcome)>;
    /// [`find_by_hash`](Self::find_by_hash) with an authoritative key
    /// compare: when `expected_key` is given, only an entry matching both
    /// the hash and the key is returned. Stores that can hold several
    /// entries under one hash (a real collision, or a forged index)
    /// should override this to scan all of them.
    fn find_by_hash_checked(
        &self,
        hash: u64,
        expected_key: Option<&str>,
    ) -> Option<(String, ServeOutcome)> {
        let (canonical, outcome) = self.find_by_hash(hash)?;
        if expected_key.is_some_and(|k| k != canonical) {
            return None;
        }
        Some((canonical, outcome))
    }
    /// Number of designs in the store.
    fn len(&self) -> usize;
    /// Whether the store holds no designs.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Tuning knobs of a [`SolveService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the job queue (`--jobs`).
    pub jobs: usize,
    /// Bounded job-queue capacity; submission blocks when full
    /// (backpressure instead of unbounded memory growth).
    pub queue_capacity: usize,
    /// Cache shards (more shards, less lock contention).
    pub shards: usize,
    /// Total cached entries before LRU eviction.
    pub cache_capacity: usize,
    /// When set, the cache is loaded from this file at construction and
    /// [`SolveService::persist`] writes back to it.
    pub cache_path: Option<PathBuf>,
    /// Offer completed incumbents to neighbor requests as warm starts.
    pub warm_start: bool,
    /// Minimum equivalence-verdict tier an outcome must carry to be
    /// admitted into the cache and warm-hint pool. The default `Skipped`
    /// preserves the historical contract (anything non-failed may be
    /// cached); a strict deployment sets `Tested` or `Proved` so
    /// unverified outcomes are served once but never pinned.
    pub min_verdict: VerdictTier,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            jobs: 4,
            queue_capacity: 64,
            shards: 8,
            cache_capacity: 4096,
            cache_path: None,
            warm_start: true,
            min_verdict: VerdictTier::Skipped,
        }
    }
}

/// Donor hints kept for warm-start hand-off; small because only the most
/// recent few neighborhoods matter in a batch.
const WARM_POOL_CAP: usize = 64;

/// A bounded MPMC job queue: push blocks while full, pop blocks while
/// empty until the queue is closed.
struct JobQueue<T> {
    inner: Mutex<JobQueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct JobQueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    fn new() -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(JobQueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while the queue is at `capacity`. Returns the depth after
    /// the push (for the peak-depth metric).
    fn push(&self, item: T, capacity: usize) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        while inner.items.len() >= capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        depth
    }

    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A concurrent multiplier-generation service.
///
/// Request flow, per request:
///
/// 1. **cache** — the canonical key is looked up in the sharded LRU; a hit
///    answers in `O(1)` with a byte-identical clone of the stored result;
/// 2. **singleflight** — on a miss, concurrent duplicates coalesce: one
///    leader solves, joiners block and share its result;
/// 3. **solve** — the leader runs the injected [`SolverFn`], optionally
///    seeded with a completed *neighbor* solve's incumbent (same `m` with
///    a different PPG, or `m ± 1` — profiles close enough that the
///    steered schedule generator can adapt them);
/// 4. **publish** — certified, non-degraded outcomes whose equivalence
///    verdict clears [`ServeConfig::min_verdict`] enter the cache and the
///    warm-hint pool; degraded or under-verified outcomes are returned to
///    their requester only, so budget-starved batches and unverified
///    netlists never poison the cache.
///
/// The service is driven batch-at-a-time by [`run_batch`]
/// (`jobs` worker threads draining a bounded queue); all state — cache,
/// flight table, metrics, warm pool — persists across batches, so a
/// long-lived process behaves like a server accepting request waves.
///
/// [`run_batch`]: SolveService::run_batch
pub struct SolveService {
    fingerprint: String,
    solver: Box<SolverFn>,
    config: ServeConfig,
    cache: ShardedCache,
    mart: Option<std::sync::Arc<dyn DesignStore>>,
    flights: SingleFlight<Result<ServeOutcome, ServeError>>,
    warm: Mutex<VecDeque<WarmHint>>,
    metrics: ServiceMetrics,
}

impl SolveService {
    /// Builds a service around `solver`. `fingerprint` is the canonical
    /// encoding of the solver's configuration (see [`SolveKey::new`]);
    /// if [`ServeConfig::cache_path`] is set, previously persisted entries
    /// are loaded immediately.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading an existing cache file.
    pub fn new(
        fingerprint: String,
        solver: Box<SolverFn>,
        config: ServeConfig,
    ) -> io::Result<SolveService> {
        let cache = ShardedCache::new(config.shards, config.cache_capacity);
        if let Some(path) = &config.cache_path {
            cache.load(path)?;
        }
        Ok(SolveService {
            fingerprint,
            solver,
            config,
            cache,
            mart: None,
            flights: SingleFlight::new(),
            warm: Mutex::new(VecDeque::new()),
            metrics: ServiceMetrics::default(),
        })
    }

    /// Attaches a read-only precomputed design store: every request is
    /// checked against it before the LRU cache and the solver, so a
    /// mart-covered request is served with zero solver invocations (and,
    /// in the HTTP layer, zero admission permits).
    pub fn with_mart(mut self, mart: std::sync::Arc<dyn DesignStore>) -> SolveService {
        self.mart = Some(mart);
        self
    }

    /// Number of designs in the attached mart (0 without one).
    pub fn mart_len(&self) -> usize {
        self.mart.as_ref().map_or(0, |m| m.len())
    }

    /// Mart fast path: a hit is counted (`mart_hits`, `mart-hit` latency
    /// row) and served recency-neutrally — the LRU cache is not touched.
    fn mart_lookup(&self, key: &SolveKey, t0: Instant) -> Option<ServeOutcome> {
        let hit = self.mart.as_ref()?.get(key)?;
        self.metrics.mart_hits.fetch_add(1, Ordering::Relaxed);
        self.metrics.record_latency("mart-hit", t0.elapsed());
        Some(hit)
    }

    /// The cache key for `request` under this service's configuration.
    pub fn key_for(&self, request: &SolveRequest) -> SolveKey {
        SolveKey::new(request.m, request.ppg, &self.fingerprint)
    }

    /// Serves a batch: all requests are pushed through the bounded queue
    /// and drained by `jobs` workers. Results come back in request order;
    /// one failed request is one `Err` entry, never a failed batch.
    pub fn run_batch(&self, requests: &[SolveRequest]) -> Vec<Result<ServeOutcome, ServeError>> {
        let queue: JobQueue<(usize, SolveRequest)> = JobQueue::new();
        let results: Vec<Mutex<Option<Result<ServeOutcome, ServeError>>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        let jobs = self.config.jobs.max(1);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    while let Some((idx, req)) = queue.pop() {
                        let result = self.serve_one(&req);
                        *results[idx].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
                    }
                });
            }
            for (idx, req) in requests.iter().cloned().enumerate() {
                let depth = queue.push((idx, req), self.config.queue_capacity.max(1));
                self.metrics.note_queue_depth(depth);
            }
            queue.close();
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("every queued request produces a result")
            })
            .collect()
    }

    /// Serves one request through cache → singleflight → solver.
    pub fn serve_one(&self, request: &SolveRequest) -> Result<ServeOutcome, ServeError> {
        self.serve_with(request, None)
    }

    /// [`serve_one`](Self::serve_one) bounded by a per-request [`Budget`].
    ///
    /// When concurrent duplicates coalesce through singleflight, the
    /// *leader's* budget governs the shared solve: cancelling it (client
    /// disconnect, server drain) degrades the result for every joiner
    /// rather than failing them, and a degraded result is never cached —
    /// so one impatient client cannot poison the cache for the rest.
    pub fn serve_with(
        &self,
        request: &SolveRequest,
        budget: Option<&Budget>,
    ) -> Result<ServeOutcome, ServeError> {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let key = self.key_for(request);
        let t0 = Instant::now();
        if let Some(hit) = self.mart_lookup(&key, t0) {
            return Ok(hit);
        }
        if let Some(cached) = self.cache.get(&key) {
            self.metrics.record_latency("cache-hit", t0.elapsed());
            return Ok(cached);
        }
        let (result, _led) = self.flights.run(key.canonical(), || {
            self.solve_and_publish(request, &key, budget)
        });
        result
    }

    /// A mart/cache-only probe: answers (and counts a request + hit) iff
    /// the result is precomputed or already cached, touching neither the
    /// miss counter nor the singleflight table. The HTTP layer uses this
    /// as its fast path so precomputed and cached answers bypass admission
    /// control entirely — a full mart or cache must stay servable even
    /// while the solve queue is shedding.
    pub fn cached(&self, request: &SolveRequest) -> Option<ServeOutcome> {
        let key = self.key_for(request);
        let t0 = Instant::now();
        if let Some(hit) = self.mart_lookup(&key, t0) {
            self.metrics.requests.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        let hit = self.cache.probe(&key)?;
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.record_latency("cache-hit", t0.elapsed());
        Some(hit)
    }

    /// Looks a precomputed or cached outcome up by the 64-bit fingerprint
    /// of its canonical key (the `fingerprint` field of the HTTP solve
    /// reply) — mart first, then a linear scan over the cache shards,
    /// read-only and recency-neutral. `None` is the HTTP layer's 404.
    ///
    /// Returns the *canonical key alongside the outcome*: a 64-bit hash is
    /// not an identity (two keys can collide), so the key travels with the
    /// reply for clients — and callers who know the full key should use
    /// [`lookup_design`](Self::lookup_design) instead.
    pub fn lookup_fingerprint(&self, fingerprint: u64) -> Option<(String, ServeOutcome)> {
        self.lookup_design(fingerprint, None)
    }

    /// [`lookup_fingerprint`](Self::lookup_fingerprint) with an
    /// authoritative key compare: when the caller knows the full
    /// canonical key, only an entry matching *both* the hash and the key
    /// is returned — a hash-colliding sibling yields `None` instead of
    /// silently serving the wrong design.
    pub fn lookup_design(
        &self,
        fingerprint: u64,
        expected_key: Option<&str>,
    ) -> Option<(String, ServeOutcome)> {
        if let Some(found) = self
            .mart
            .as_ref()
            .and_then(|m| m.find_by_hash_checked(fingerprint, expected_key))
        {
            return Some(found);
        }
        self.cache.find_by_hash_checked(fingerprint, expected_key)
    }

    /// Leader path: run the solver (panic-contained), then publish the
    /// result to the cache and warm pool if it is trustworthy.
    fn solve_and_publish(
        &self,
        request: &SolveRequest,
        key: &SolveKey,
        budget: Option<&Budget>,
    ) -> Result<ServeOutcome, ServeError> {
        // Double-check the cache: a previous flight for this key may have
        // completed between our miss and our flight registration.
        if let Some(cached) = self.cache.get(key) {
            return Ok(cached);
        }
        let hint = if self.config.warm_start {
            self.neighbor_hint(request)
        } else {
            None
        };
        if hint.is_some() {
            self.metrics.warm_hints.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.solves.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            (self.solver)(request, hint.as_ref(), budget)
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(ServeError::Panic(msg))
        });
        let took = t0.elapsed();
        match &result {
            Ok(outcome) => {
                self.metrics.record_latency(&outcome.strategy, took);
                self.metrics.record_solver(SolverSample {
                    nodes: outcome.solver_nodes,
                    lp_iters: outcome.solver_lp_iters,
                    warm_attempts: outcome.solver_warm_attempts,
                    warm_hits: outcome.solver_warm_hits,
                    refactors: outcome.solver_refactors,
                    root_us: outcome.root_us,
                    root_lp_iters: outcome.root_lp_iters,
                    cuts_added: outcome.cuts_added,
                });
                self.metrics.record_verdict(outcome.verdict);
                if outcome.verify_us > 0 {
                    self.metrics
                        .record_latency("verify", Duration::from_micros(outcome.verify_us));
                }
                if outcome.degraded {
                    self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                } else if outcome.verified && outcome.verdict.admits(self.config.min_verdict) {
                    self.cache.insert(key, outcome.clone());
                    self.offer_hint(WarmHint {
                        m: outcome.m,
                        ppg: outcome.ppg,
                        counts: outcome.vs_counts.clone(),
                    });
                } else {
                    // The verdict gate: unverified or under-tier outcomes
                    // answer their requester but are never pinned.
                    self.metrics.verify_rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                self.metrics.record_latency("error", took);
            }
        }
        result
    }

    /// A donor hint for `request`: same `m` with a different PPG, or
    /// `m ± 1` with any PPG — most recent donor first.
    fn neighbor_hint(&self, request: &SolveRequest) -> Option<WarmHint> {
        let pool = self.warm.lock().unwrap_or_else(|p| p.into_inner());
        pool.iter()
            .rev()
            .find(|h| {
                (h.m == request.m && h.ppg != request.ppg)
                    || h.m + 1 == request.m
                    || request.m + 1 == h.m
            })
            .cloned()
    }

    fn offer_hint(&self, hint: WarmHint) {
        let mut pool = self.warm.lock().unwrap_or_else(|p| p.into_inner());
        pool.retain(|h| !(h.m == hint.m && h.ppg == hint.ppg));
        pool.push_back(hint);
        while pool.len() > WARM_POOL_CAP {
            pool.pop_front();
        }
    }

    /// Writes the cache to [`ServeConfig::cache_path`]; no-op (0 entries)
    /// when no path is configured.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist(&self) -> io::Result<usize> {
        match &self.config.cache_path {
            Some(path) => self.cache.save(path),
            None => Ok(0),
        }
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Raw metrics counters (live).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// A point-in-time metrics summary.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            requests: self.metrics.requests.load(Ordering::Relaxed),
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            evictions: self.cache.evictions(),
            dedup_joins: self.flights.joins(),
            solves: self.metrics.solves.load(Ordering::Relaxed),
            degraded: self.metrics.degraded.load(Ordering::Relaxed),
            errors: self.metrics.errors.load(Ordering::Relaxed),
            warm_hints: self.metrics.warm_hints.load(Ordering::Relaxed),
            queue_peak: self.metrics.queue_peak.load(Ordering::Relaxed),
            solver_nodes: self.metrics.solver_nodes.load(Ordering::Relaxed),
            solver_lp_iters: self.metrics.solver_lp_iters.load(Ordering::Relaxed),
            solver_warm_attempts: self.metrics.solver_warm_attempts.load(Ordering::Relaxed),
            solver_warm_hits: self.metrics.solver_warm_hits.load(Ordering::Relaxed),
            solver_refactors: self.metrics.solver_refactors.load(Ordering::Relaxed),
            solver_root_us: self.metrics.solver_root_us.load(Ordering::Relaxed),
            solver_root_lp_iters: self.metrics.solver_root_lp_iters.load(Ordering::Relaxed),
            solver_cuts_added: self.metrics.solver_cuts_added.load(Ordering::Relaxed),
            verdict_proved: self.metrics.verdict_proved.load(Ordering::Relaxed),
            verdict_tested: self.metrics.verdict_tested.load(Ordering::Relaxed),
            verdict_failed: self.metrics.verdict_failed.load(Ordering::Relaxed),
            verdict_skipped: self.metrics.verdict_skipped.load(Ordering::Relaxed),
            verify_rejected: self.metrics.verify_rejected.load(Ordering::Relaxed),
            shed: self.metrics.shed.load(Ordering::Relaxed),
            deadline_cancelled: self.metrics.deadline_cancelled.load(Ordering::Relaxed),
            mart_hits: self.metrics.mart_hits.load(Ordering::Relaxed),
            mart_entries: self.mart_len(),
            cache_len: self.cache.len(),
            per_rung: self.metrics.latency_snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomil_netlist::DesignMetrics;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    fn outcome_for(req: &SolveRequest, degraded: bool) -> ServeOutcome {
        ServeOutcome {
            name: format!("T-{}-{}", req.ppg.label(), req.m),
            m: req.m,
            ppg: req.ppg,
            metrics: DesignMetrics {
                area: req.m as f64,
                delay: 1.0,
                power: 1.0,
            },
            gates: req.m,
            verified: true,
            strategy: "target-search".into(),
            objective: req.m as f64,
            degraded,
            vs_counts: vec![1; 2 * req.m - 1],
            solver_nodes: 5,
            solver_lp_iters: 40,
            solver_gap: 0.0,
            solver_warm_attempts: 4,
            solver_warm_hits: 3,
            solver_refactors: 2,
            verdict: VerdictTier::Tested,
            verify_vectors: 1_024,
            verify_us: 150,
            root_us: 300,
            root_lp_iters: 12,
            cuts_added: 1,
            improvements: vec![(40, req.m as f64 + 1.0), (90, req.m as f64)],
        }
    }

    /// A synthetic solver that counts invocations and sleeps briefly so
    /// concurrent duplicates overlap.
    fn counting_service(delay: Duration, degraded: bool) -> (SolveService, Arc<AtomicUsize>) {
        let solves = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&solves);
        let solver: Box<SolverFn> = Box::new(move |req, _hint, _budget| {
            counter.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(delay);
            Ok(outcome_for(req, degraded))
        });
        let svc = SolveService::new(
            "w=8;test".into(),
            solver,
            ServeConfig {
                jobs: 8,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        (svc, solves)
    }

    #[test]
    fn repeated_batches_hit_the_cache() {
        let (svc, solves) = counting_service(Duration::ZERO, false);
        let reqs = vec![
            SolveRequest {
                m: 8,
                ppg: PpgKind::And,
            },
            SolveRequest {
                m: 8,
                ppg: PpgKind::Booth4,
            },
        ];
        let first = svc.run_batch(&reqs);
        let second = svc.run_batch(&reqs);
        assert_eq!(solves.load(Ordering::SeqCst), 2, "second batch is all hits");
        assert_eq!(first, second, "cached results equal fresh results");
        let r = svc.report();
        assert_eq!(r.hits, 2);
        assert_eq!(r.solves, 2);
        assert_eq!(r.requests, 4);
    }

    #[test]
    fn degraded_outcomes_are_served_but_not_cached() {
        let (svc, solves) = counting_service(Duration::ZERO, true);
        let req = SolveRequest {
            m: 6,
            ppg: PpgKind::And,
        };
        assert!(svc.serve_one(&req).unwrap().degraded);
        assert!(svc.serve_one(&req).unwrap().degraded);
        assert_eq!(solves.load(Ordering::SeqCst), 2, "nothing was cached");
        assert_eq!(svc.cache_len(), 0);
        assert_eq!(svc.report().degraded, 2);
    }

    #[test]
    fn failed_verdicts_never_enter_the_cache_or_warm_pool() {
        let solver: Box<SolverFn> = Box::new(|req, _, _| {
            let mut o = outcome_for(req, false);
            o.verdict = VerdictTier::Failed;
            o.verified = false;
            Ok(o)
        });
        let svc = SolveService::new("t".into(), solver, ServeConfig::default()).unwrap();
        let req = SolveRequest {
            m: 8,
            ppg: PpgKind::And,
        };
        let out = svc.serve_one(&req).unwrap();
        assert_eq!(out.verdict, VerdictTier::Failed);
        assert_eq!(svc.cache_len(), 0, "a failed netlist must never be cached");
        // A second identical request must re-solve — nothing was pinned —
        // and must not be seeded by the failed outcome's profile.
        svc.serve_one(&SolveRequest {
            m: 9,
            ppg: PpgKind::And,
        })
        .unwrap();
        let r = svc.report();
        assert_eq!(r.solves, 2);
        assert_eq!(r.verdict_failed, 2, "both solves carried a failed verdict");
        assert_eq!(r.verify_rejected, 2, "both under-gate outcomes rejected");
        assert_eq!(
            r.warm_hints, 0,
            "a rejected outcome must not donate a warm hint"
        );
    }

    #[test]
    fn strict_min_verdict_rejects_tested_outcomes() {
        let solver: Box<SolverFn> = Box::new(|req, _, _| Ok(outcome_for(req, false)));
        let svc = SolveService::new(
            "t".into(),
            solver,
            ServeConfig {
                min_verdict: VerdictTier::Proved,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let req = SolveRequest {
            m: 8,
            ppg: PpgKind::And,
        };
        // outcome_for carries a Tested verdict — below the Proved floor.
        assert_eq!(svc.serve_one(&req).unwrap().verdict, VerdictTier::Tested);
        assert_eq!(svc.cache_len(), 0);
        svc.serve_one(&req).unwrap();
        let r = svc.report();
        assert_eq!(r.solves, 2, "nothing was cached under the strict floor");
        assert_eq!(r.verdict_tested, 2);
        assert_eq!(r.verify_rejected, 2);
        // The verify histogram saw both samples (verify_us = 150 > 0).
        assert!(r
            .per_rung
            .iter()
            .any(|(k, h)| k == "verify" && h.count == 2));
    }

    #[test]
    fn worker_panics_are_contained_per_request() {
        let solver: Box<SolverFn> = Box::new(|req, _, _| {
            if req.m == 13 {
                panic!("unlucky width");
            }
            Ok(outcome_for(req, false))
        });
        let svc = SolveService::new("t".into(), solver, ServeConfig::default()).unwrap();
        let out = svc.run_batch(&[
            SolveRequest {
                m: 13,
                ppg: PpgKind::And,
            },
            SolveRequest {
                m: 8,
                ppg: PpgKind::And,
            },
        ]);
        assert!(matches!(out[0], Err(ServeError::Panic(ref m)) if m.contains("unlucky")));
        assert!(out[1].is_ok(), "the panic must not take down the batch");
        assert_eq!(svc.report().errors, 1);
    }

    #[test]
    fn neighbor_hints_flow_to_same_m_and_adjacent_m() {
        let hints_seen = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&hints_seen);
        let solver: Box<SolverFn> = Box::new(move |req, hint, _budget| {
            log.lock().unwrap().push((req.clone(), hint.cloned()));
            Ok(outcome_for(req, false))
        });
        let svc = SolveService::new(
            "t".into(),
            solver,
            ServeConfig {
                jobs: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        svc.run_batch(&[
            SolveRequest {
                m: 8,
                ppg: PpgKind::And,
            },
            SolveRequest {
                m: 8,
                ppg: PpgKind::Booth4,
            }, // same m, other PPG
            SolveRequest {
                m: 9,
                ppg: PpgKind::And,
            }, // m ± 1
            SolveRequest {
                m: 20,
                ppg: PpgKind::And,
            }, // no neighbor
        ]);
        let seen = hints_seen.lock().unwrap();
        assert!(seen[0].1.is_none(), "first solve has no donor");
        assert_eq!(seen[1].1.as_ref().map(|h| h.m), Some(8));
        assert!(seen[2].1.is_some(), "m=9 borrows from m=8");
        assert!(seen[3].1.is_none(), "m=20 has no neighbor");
        assert_eq!(svc.report().warm_hints, 2);
    }

    #[test]
    fn queue_backpressure_bounds_depth() {
        let (svc, _) = counting_service(Duration::from_millis(1), false);
        let svc = SolveService {
            config: ServeConfig {
                jobs: 2,
                queue_capacity: 3,
                ..ServeConfig::default()
            },
            ..svc
        };
        let reqs: Vec<SolveRequest> = (2..40)
            .map(|m| SolveRequest {
                m,
                ppg: PpgKind::And,
            })
            .collect();
        let out = svc.run_batch(&reqs);
        assert!(out.iter().all(Result::is_ok));
        assert!(
            svc.report().queue_peak <= 3,
            "peak {} exceeds capacity",
            svc.report().queue_peak
        );
    }

    /// An in-memory [`DesignStore`] for exercising the mart layer without
    /// the on-disk format.
    struct MapStore {
        entries: Vec<(SolveKey, ServeOutcome)>,
    }

    impl DesignStore for MapStore {
        fn get(&self, key: &SolveKey) -> Option<ServeOutcome> {
            self.entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, o)| o.clone())
        }

        fn find_by_hash(&self, hash: u64) -> Option<(String, ServeOutcome)> {
            self.entries
                .iter()
                .find(|(k, _)| k.hash64() == hash)
                .map(|(k, o)| (k.canonical().to_string(), o.clone()))
        }

        fn len(&self) -> usize {
            self.entries.len()
        }
    }

    fn mart_for(svc: &SolveService, reqs: &[SolveRequest]) -> Arc<MapStore> {
        let entries = reqs
            .iter()
            .map(|req| {
                let mut o = outcome_for(req, false);
                o.strategy = "mart".into();
                (svc.key_for(req), o)
            })
            .collect();
        Arc::new(MapStore { entries })
    }

    #[test]
    fn mart_hits_bypass_solver_and_stay_recency_neutral() {
        let (svc, solves) = counting_service(Duration::ZERO, false);
        let covered = SolveRequest {
            m: 8,
            ppg: PpgKind::And,
        };
        let uncovered = SolveRequest {
            m: 10,
            ppg: PpgKind::And,
        };
        let mart = mart_for(&svc, std::slice::from_ref(&covered));
        let svc = svc.with_mart(mart);
        let hit = svc.serve_one(&covered).unwrap();
        assert_eq!(hit.strategy, "mart", "served from the mart, not solved");
        assert_eq!(solves.load(Ordering::SeqCst), 0, "zero solver invocations");
        assert_eq!(svc.cache_len(), 0, "mart hits never touch the LRU cache");
        // The probe fast path answers from the mart too.
        assert_eq!(svc.cached(&covered).unwrap().strategy, "mart");
        // Uncovered requests still flow to the solver as before.
        assert!(svc.cached(&uncovered).is_none());
        svc.serve_one(&uncovered).unwrap();
        assert_eq!(solves.load(Ordering::SeqCst), 1);
        let r = svc.report();
        assert_eq!(r.mart_hits, 2);
        assert_eq!(r.mart_entries, 1);
        // serve_one(covered) + cached(covered) + serve_one(uncovered); a
        // missed probe is not an accepted request.
        assert_eq!(r.requests, 3);
        assert!((r.mart_coverage() - 2.0 / 3.0).abs() < 1e-12);
        assert!(
            r.per_rung
                .iter()
                .any(|(rung, h)| rung == "mart-hit" && h.count == 2),
            "mart hits get their own latency row"
        );
    }

    /// The mart is consulted *before* the LRU cache, so a key present in
    /// both is answered from the mart (the precomputed store is the
    /// authoritative, highest-quality tier).
    #[test]
    fn lookup_order_is_mart_before_cache() {
        let (svc, solves) = counting_service(Duration::ZERO, false);
        let req = SolveRequest {
            m: 8,
            ppg: PpgKind::And,
        };
        svc.serve_one(&req).unwrap(); // populate the cache
        assert_eq!(svc.cache_len(), 1);
        let mart = mart_for(&svc, std::slice::from_ref(&req));
        let svc = svc.with_mart(mart);
        assert_eq!(svc.serve_one(&req).unwrap().strategy, "mart");
        assert_eq!(solves.load(Ordering::SeqCst), 1, "no re-solve");
        assert_eq!(svc.report().mart_hits, 1);
    }

    /// `lookup_design` must refuse a mart entry whose hash matches but
    /// whose canonical key does not — the hash-collision identity bug the
    /// `/design` endpoint used to have.
    #[test]
    fn lookup_design_compares_the_full_key_against_the_mart() {
        let (svc, _) = counting_service(Duration::ZERO, false);
        let req = SolveRequest {
            m: 8,
            ppg: PpgKind::And,
        };
        let key = svc.key_for(&req);
        let mart = mart_for(&svc, &[req]);
        let svc = svc.with_mart(mart);
        let (canonical, _) = svc.lookup_fingerprint(key.hash64()).unwrap();
        assert_eq!(canonical, key.canonical());
        assert!(svc
            .lookup_design(key.hash64(), Some(key.canonical()))
            .is_some());
        assert!(
            svc.lookup_design(key.hash64(), Some("v1;m=9;ppg=AND;other"))
                .is_none(),
            "matching hash with a different key must not serve the design"
        );
    }
}
