//! Canonical cache keys for solve requests.
//!
//! A GOMIL solve is a deterministic function of the word length, the PPG
//! kind and the solve-relevant configuration fields, so a cache key must
//! be exactly that tuple — no more (budgets shape *latency*, not the
//! certified optimum, and are excluded so a request served under a tight
//! deadline can still be answered by a cached full-quality result) and no
//! less. The configuration half arrives as a caller-produced canonical
//! *fingerprint* string (see `GomilConfig::solve_fingerprint` in the
//! `gomil` crate), keeping this crate independent of the config type.

use gomil_arith::PpgKind;
use std::fmt;

/// FNV-1a 64-bit hash — tiny, dependency-free and *stable across
/// processes* (unlike `std`'s `DefaultHasher`, whose seeds are
/// deliberately randomized), which the persisted cache relies on.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Injective single-line encoding of a caller fingerprint: `\` → `\\`,
/// tab → `\t`, newline → `\n`, carriage return → `\r`. Well-formed
/// fingerprints (no backslash, no control delimiters) pass through
/// unchanged, so existing persisted canonical keys stay valid.
fn escape_fingerprint(fingerprint: &str) -> std::borrow::Cow<'_, str> {
    if !fingerprint.contains(['\\', '\t', '\n', '\r']) {
        return std::borrow::Cow::Borrowed(fingerprint);
    }
    let mut out = String::with_capacity(fingerprint.len() + 8);
    for c in fingerprint.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// The canonical identity of one solve request.
///
/// Two keys are equal iff the solves they describe are guaranteed to
/// produce identical results; the canonical string is the persisted/hashed
/// form and the 64-bit hash picks the cache shard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SolveKey {
    canonical: String,
    hash: u64,
}

impl SolveKey {
    /// Builds the key for an `m × m` multiplier with PPG `ppg` under the
    /// configuration identified by `fingerprint`.
    ///
    /// `fingerprint` must be a canonical encoding of every solve-relevant
    /// configuration field (same fields ⇒ same string, any differing field
    /// ⇒ different string). Tab, newline and carriage-return characters —
    /// which delimit the persisted cache TSV and the mart index — are
    /// escaped here, in every build profile, so a hostile fingerprint can
    /// never corrupt a persisted store: the escaping is injective
    /// (backslash itself is escaped), so distinct fingerprints still map
    /// to distinct canonical keys, and fingerprints that were already
    /// single-line and backslash-free (every fingerprint the `gomil`
    /// crate produces) keep their historical canonical form byte for
    /// byte.
    pub fn new(m: usize, ppg: PpgKind, fingerprint: &str) -> SolveKey {
        let fingerprint = escape_fingerprint(fingerprint);
        let canonical = format!("v1;m={m};ppg={};{fingerprint}", ppg.label());
        let hash = fnv1a_64(canonical.as_bytes());
        SolveKey { canonical, hash }
    }

    /// Re-wraps an already-canonical string (used when reloading the
    /// persisted cache).
    pub fn from_canonical(canonical: String) -> SolveKey {
        let hash = fnv1a_64(canonical.as_bytes());
        SolveKey { canonical, hash }
    }

    /// The canonical string form.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The stable 64-bit hash of the canonical form.
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// Shard index for a cache with `shards` shards.
    pub fn shard(&self, shards: usize) -> usize {
        (self.hash % shards.max(1) as u64) as usize
    }
}

impl fmt::Display for SolveKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{:016x}]", self.canonical, self.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn keys_separate_m_ppg_and_fingerprint() {
        let k = SolveKey::new(8, PpgKind::And, "w=8");
        assert_eq!(k, SolveKey::new(8, PpgKind::And, "w=8"));
        assert_ne!(k, SolveKey::new(9, PpgKind::And, "w=8"));
        assert_ne!(k, SolveKey::new(8, PpgKind::Booth4, "w=8"));
        assert_ne!(k, SolveKey::new(8, PpgKind::And, "w=9"));
    }

    /// Regression for the release-mode sanitizer hole: `SolveKey::new`
    /// used to only `debug_assert!` the fingerprint was tab/newline-free,
    /// so in release builds a tab-bearing fingerprint flowed straight into
    /// the canonical string and corrupted the persisted TSV (the tab reads
    /// as a field delimiter) and would have corrupted the mart index. The
    /// key must now be single-line and tab-free in every build profile.
    #[test]
    fn hostile_fingerprints_are_escaped_in_all_builds() {
        let hostile = SolveKey::new(8, PpgKind::And, "w=8\tinjected\nline");
        assert!(
            !hostile.canonical().contains(['\t', '\n', '\r']),
            "canonical key must never carry TSV delimiters: {:?}",
            hostile.canonical()
        );
        // The escaping is injective: a fingerprint containing a literal
        // tab and one containing the two-character sequence `\t` must not
        // collide (backslash itself is escaped).
        let tab = SolveKey::new(8, PpgKind::And, "a\tb");
        let literal = SolveKey::new(8, PpgKind::And, "a\\tb");
        assert_ne!(tab, literal, "escaping must not introduce collisions");
        assert_ne!(tab.hash64(), literal.hash64());
        // Round trip through the persistence form stays exact.
        let back = SolveKey::from_canonical(hostile.canonical().to_string());
        assert_eq!(hostile, back);
        // Benign fingerprints keep their historical canonical form.
        assert_eq!(
            SolveKey::new(8, PpgKind::And, "w=8").canonical(),
            "v1;m=8;ppg=AND;w=8"
        );
    }

    #[test]
    fn canonical_roundtrips_through_persistence_form() {
        let k = SolveKey::new(16, PpgKind::Booth8, "w=8;l=10");
        let back = SolveKey::from_canonical(k.canonical().to_string());
        assert_eq!(k, back);
        assert_eq!(k.hash64(), back.hash64());
        assert_eq!(k.shard(8), back.shard(8));
    }
}
