//! Property-style safety net for the MIP presolve: binary probing and
//! coefficient strengthening are *reductions*, so they may shrink the
//! search but must never cut off a certified optimal solution. Every
//! instance on the m ∈ {8, 16} roster is solved twice — presolve on
//! versus off — and the two certified objectives must agree exactly
//! (within feasibility tolerance).

use gomil_ilp::{BranchConfig, Cmp, CutMode, LinExpr, Model, Pricing, Sense};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random 0/1 knapsack: the roster's pure-binary family, where probing
/// and cover-style strengthening both have something to chew on.
fn random_knapsack(n: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(format!("knap{n}"));
    let mut obj = LinExpr::default();
    let mut weight = LinExpr::default();
    for i in 0..n {
        let x = m.add_binary(format!("x{i}"));
        obj += rng.gen_range(1..20) as f64 * x;
        weight += rng.gen_range(1..12) as f64 * x;
    }
    m.add_constraint("cap", weight, Cmp::Le, (6 * n / 2) as f64);
    m.set_objective(obj, Sense::Maximize);
    m
}

/// A random mixed model with implication-style rows (`x_i ≤ u·b_i`) and a
/// shared capacity: the structure probing actually exploits (fixing a
/// binary kills its continuous companion).
fn random_mixed(n: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(format!("mixed{n}"));
    let mut obj = LinExpr::default();
    let mut cap = LinExpr::default();
    for i in 0..n {
        let u = rng.gen_range(1..5) as f64;
        let x = m.add_continuous(format!("x{i}"), 0.0, u);
        let b = m.add_binary(format!("b{i}"));
        // x_i can only be nonzero when its binary is on.
        m.add_constraint(format!("link{i}"), x - u * b, Cmp::Le, 0.0);
        obj += rng.gen_range(1..10) as f64 * x - rng.gen_range(1..6) as f64 * b;
        cap += LinExpr::from(x);
    }
    m.add_constraint("cap", cap, Cmp::Le, (n as f64) * 1.5);
    m.set_objective(obj, Sense::Maximize);
    m
}

fn solve_objective(model: &Model, probing: bool) -> f64 {
    let cfg = BranchConfig {
        probing,
        // Isolate the presolve: no cuts, deterministic sequential search.
        cuts: CutMode::Off,
        pricing: Pricing::Devex,
        jobs: 1,
        ..BranchConfig::default()
    };
    solve_objective_with(model, &cfg)
}

fn solve_objective_with(model: &Model, cfg: &BranchConfig) -> f64 {
    let sol = model.solve_with(&cfg).expect("roster instance must solve");
    assert!(sol.is_optimal(), "{}: must prove optimality", model.name());
    assert!(
        sol.certificate().is_some(),
        "{}: optimum must certify",
        model.name()
    );
    sol.objective()
}

/// The LP reduction presolve and equilibration scaling are exact
/// reformulations: solving with both engaged — which also makes every
/// branch-and-bound child warm-restart from a *postsolved* basis — must
/// certify the same objective as the plain solver on the whole
/// m ∈ {8, 16} roster.
#[test]
fn reduction_and_scaling_never_change_certified_objectives() {
    let plain = BranchConfig {
        cuts: CutMode::Off,
        pricing: Pricing::Devex,
        jobs: 1,
        scaling: false,
        reduce: false,
        ..BranchConfig::default()
    };
    let engaged = BranchConfig {
        cuts: CutMode::Off,
        pricing: Pricing::Devex,
        jobs: 1,
        scaling: true,
        reduce: true,
        ..BranchConfig::default()
    };
    for n in [8usize, 16] {
        for seed in 0..8u64 {
            for model in [
                random_knapsack(n, 0xC0FFEE ^ (seed << 8) ^ n as u64),
                random_mixed(n, 0xBEEF ^ (seed << 8) ^ n as u64),
            ] {
                let base = solve_objective_with(&model, &plain);
                let with = solve_objective_with(&model, &engaged);
                assert!(
                    (with - base).abs() <= 1e-6,
                    "{} n={n} seed={seed}: reduced/scaled objective {with} vs plain {base}",
                    model.name()
                );
            }
        }
    }
}

#[test]
fn probing_and_strengthening_never_cut_off_the_optimum() {
    for n in [8usize, 16] {
        for seed in 0..8u64 {
            let knap = random_knapsack(n, 0xC0FFEE ^ (seed << 8) ^ n as u64);
            let with = solve_objective(&knap, true);
            let without = solve_objective(&knap, false);
            assert!(
                (with - without).abs() <= 1e-6,
                "knapsack n={n} seed={seed}: presolved objective {with} vs plain {without}"
            );

            let mixed = random_mixed(n, 0xBEEF ^ (seed << 8) ^ n as u64);
            let with = solve_objective(&mixed, true);
            let without = solve_objective(&mixed, false);
            assert!(
                (with - without).abs() <= 1e-6,
                "mixed n={n} seed={seed}: presolved objective {with} vs plain {without}"
            );
        }
    }
}
