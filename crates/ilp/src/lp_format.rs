//! CPLEX LP-format export for debugging and cross-checking models.

use crate::model::{Model, Sense, VarKind};
use std::fmt::Write as _;

impl Model {
    /// Renders the model in CPLEX LP format.
    ///
    /// Useful for eyeballing a formulation or feeding it to an external
    /// solver when one is available.
    pub fn to_lp_format(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "\\ model: {}", self.name());
        let _ = writeln!(
            s,
            "{}",
            match self.sense {
                Sense::Minimize => "Minimize",
                Sense::Maximize => "Maximize",
            }
        );
        let _ = write!(s, " obj:");
        for (v, c) in self.objective.iter() {
            let _ = write!(s, " {} {}", fmt_coef(c), self.var_name(v));
        }
        if self.objective.constant() != 0.0 {
            let _ = write!(s, " {}", fmt_coef(self.objective.constant()));
        }
        let _ = writeln!(s, "\nSubject To");
        for c in &self.constraints {
            let _ = write!(s, " {}:", sanitize(&c.name));
            for (v, a) in c.expr.iter() {
                let _ = write!(s, " {} {}", fmt_coef(a), self.var_name(v));
            }
            let _ = writeln!(s, " {} {}", c.cmp, c.rhs);
        }
        let _ = writeln!(s, "Bounds");
        for (i, v) in self.vars.iter().enumerate() {
            let name = &self.vars[i].name;
            let _ = match (v.lb.is_finite(), v.ub.is_finite()) {
                (true, true) => writeln!(s, " {} <= {} <= {}", v.lb, name, v.ub),
                (true, false) => writeln!(s, " {} >= {}", name, v.lb),
                (false, true) => writeln!(s, " {} <= {}", name, v.ub),
                (false, false) => writeln!(s, " {} free", name),
            };
        }
        let generals: Vec<&str> = self
            .vars
            .iter()
            .filter(|v| v.kind == VarKind::Integer)
            .map(|v| v.name.as_str())
            .collect();
        if !generals.is_empty() {
            let _ = writeln!(s, "Generals\n {}", generals.join(" "));
        }
        let binaries: Vec<&str> = self
            .vars
            .iter()
            .filter(|v| v.kind == VarKind::Binary)
            .map(|v| v.name.as_str())
            .collect();
        if !binaries.is_empty() {
            let _ = writeln!(s, "Binaries\n {}", binaries.join(" "));
        }
        let _ = writeln!(s, "End");
        s
    }
}

fn fmt_coef(c: f64) -> String {
    if c >= 0.0 {
        format!("+{c}")
    } else {
        format!("{c}")
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cmp as _Cmp;

    #[test]
    fn export_contains_all_sections() {
        let mut m = Model::new("demo");
        let x = m.add_binary("x");
        let y = m.add_integer("y", 0.0, 9.0);
        let z = m.add_continuous("z", 0.0, f64::INFINITY);
        m.add_constraint("row a", x + y + z, _Cmp::Le, 5.0);
        m.set_objective(x + 2.0 * y, Sense::Maximize);
        let lp = m.to_lp_format();
        assert!(lp.contains("Maximize"));
        assert!(lp.contains("row_a:"));
        assert!(lp.contains("Generals"));
        assert!(lp.contains("Binaries"));
        assert!(lp.contains("z >= 0"));
        assert!(lp.ends_with("End\n"));
    }
}
