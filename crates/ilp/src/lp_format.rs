//! CPLEX LP-format export and import.
//!
//! The exporter ([`Model::to_lp_format`]) has always existed for
//! debugging; the parser ([`Model::from_lp_format`]) closes the loop so
//! external models — notably raw `.lp` uploads to `gomil-httpd`'s
//! `POST /lp` route — can be solved by this crate's branch and bound.
//! The parser accepts the subset of the CPLEX LP grammar the exporter
//! emits (plus the usual keyword spellings): an objective section,
//! `Subject To`, `Bounds`, `Generals`/`Binaries`, `End`.

use crate::model::{Cmp, Model, Sense, VarKind};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

impl Model {
    /// Renders the model in CPLEX LP format.
    ///
    /// Useful for eyeballing a formulation or feeding it to an external
    /// solver when one is available.
    pub fn to_lp_format(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "\\ model: {}", self.name());
        let _ = writeln!(
            s,
            "{}",
            match self.sense {
                Sense::Minimize => "Minimize",
                Sense::Maximize => "Maximize",
            }
        );
        let _ = write!(s, " obj:");
        for (v, c) in self.objective.iter() {
            let _ = write!(s, " {} {}", fmt_coef(c), self.var_name(v));
        }
        if self.objective.constant() != 0.0 {
            let _ = write!(s, " {}", fmt_coef(self.objective.constant()));
        }
        let _ = writeln!(s, "\nSubject To");
        for c in &self.constraints {
            let _ = write!(s, " {}:", sanitize(&c.name));
            for (v, a) in c.expr.iter() {
                let _ = write!(s, " {} {}", fmt_coef(a), self.var_name(v));
            }
            let _ = writeln!(s, " {} {}", c.cmp, c.rhs);
        }
        let _ = writeln!(s, "Bounds");
        for (i, v) in self.vars.iter().enumerate() {
            let name = &self.vars[i].name;
            let _ = match (v.lb.is_finite(), v.ub.is_finite()) {
                (true, true) => writeln!(s, " {} <= {} <= {}", v.lb, name, v.ub),
                (true, false) => writeln!(s, " {} >= {}", name, v.lb),
                (false, true) => writeln!(s, " {} <= {}", name, v.ub),
                (false, false) => writeln!(s, " {} free", name),
            };
        }
        let generals: Vec<&str> = self
            .vars
            .iter()
            .filter(|v| v.kind == VarKind::Integer)
            .map(|v| v.name.as_str())
            .collect();
        if !generals.is_empty() {
            let _ = writeln!(s, "Generals\n {}", generals.join(" "));
        }
        let binaries: Vec<&str> = self
            .vars
            .iter()
            .filter(|v| v.kind == VarKind::Binary)
            .map(|v| v.name.as_str())
            .collect();
        if !binaries.is_empty() {
            let _ = writeln!(s, "Binaries\n {}", binaries.join(" "));
        }
        let _ = writeln!(s, "End");
        s
    }
}

/// Error from [`Model::from_lp_format`]: what went wrong and on which
/// 1-based input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpParseError {
    /// 1-based line number of the offending input.
    pub line: usize,
    /// Human-readable description of the problem.
    pub msg: String,
}

impl fmt::Display for LpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LP parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LpParseError {}

/// One lexical token of an LP file.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Identifier or keyword.
    Word(String),
    /// Number literal, sign included.
    Num(f64),
    Plus,
    Minus,
    Colon,
    Le,
    Ge,
    Eq,
}

/// Sections of an LP file, in the order the grammar allows them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Preamble,
    Objective,
    Constraints,
    Bounds,
    Generals,
    Binaries,
    Done,
}

/// A variable being assembled: LP-format defaults are `[0, +inf)`
/// continuous; `Bounds` and `Generals`/`Binaries` lines override.
struct VarDraft {
    name: String,
    kind: VarKind,
    lb: Option<f64>,
    ub: Option<f64>,
    free: bool,
}

/// Signed linear expression accumulated term by term.
#[derive(Default)]
struct ExprDraft {
    terms: Vec<(usize, f64)>,
    constant: f64,
}

struct Parser {
    vars: Vec<VarDraft>,
    index: HashMap<String, usize>,
    name: String,
    sense: Option<Sense>,
    objective: ExprDraft,
    constraints: Vec<(String, ExprDraft, Cmp, f64)>,
    anon_rows: usize,
}

fn err(line: usize, msg: impl Into<String>) -> LpParseError {
    LpParseError {
        line,
        msg: msg.into(),
    }
}

/// Lexes one line into tokens. `+`/`-` immediately followed by a digit
/// or dot fuse into a signed number; `inf`/`infinity` words become
/// infinite [`Tok::Num`]s so bounds like `-inf <= x` work.
fn lex_line(text: &str, lineno: usize) -> Result<Vec<Tok>, LpParseError> {
    let mut toks = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        match c {
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '<' | '>' | '=' => {
                let tok = match c {
                    '<' => Tok::Le,
                    '>' => Tok::Ge,
                    _ => Tok::Eq,
                };
                i += 1;
                if i < bytes.len() && bytes[i] == b'=' && tok != Tok::Eq {
                    i += 1;
                }
                toks.push(tok);
            }
            '+' | '-' => {
                let next = bytes.get(i + 1).map(|&b| b as char);
                if matches!(next, Some(d) if d.is_ascii_digit() || d == '.') {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_num_char(bytes[i] as char, bytes.get(i - 1)) {
                        i += 1;
                    }
                    let lit = &text[start..i];
                    let v = lit
                        .parse::<f64>()
                        .map_err(|_| err(lineno, format!("bad number `{lit}`")))?;
                    toks.push(Tok::Num(v));
                } else {
                    toks.push(if c == '+' { Tok::Plus } else { Tok::Minus });
                    i += 1;
                }
            }
            d if d.is_ascii_digit() || d == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len() && is_num_char(bytes[i] as char, bytes.get(i - 1)) {
                    i += 1;
                }
                let lit = &text[start..i];
                let v = lit
                    .parse::<f64>()
                    .map_err(|_| err(lineno, format!("bad number `{lit}`")))?;
                toks.push(Tok::Num(v));
            }
            w if w.is_alphanumeric() || w == '_' => {
                let start = i;
                while i < bytes.len() && {
                    let ch = bytes[i] as char;
                    ch.is_alphanumeric() || ch == '_' || ch == '.'
                } {
                    i += 1;
                }
                let word = &text[start..i];
                if word.eq_ignore_ascii_case("inf") || word.eq_ignore_ascii_case("infinity") {
                    toks.push(Tok::Num(f64::INFINITY));
                } else {
                    toks.push(Tok::Word(word.to_string()));
                }
            }
            other => return Err(err(lineno, format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

/// Whether `c` continues a number literal started earlier. `+`/`-`
/// continue only right after an exponent marker (`1e-7`).
fn is_num_char(c: char, prev: Option<&u8>) -> bool {
    c.is_ascii_digit()
        || c == '.'
        || c == 'e'
        || c == 'E'
        || ((c == '+' || c == '-') && matches!(prev, Some(&b'e') | Some(&b'E')))
}

/// Which section does a line starting with these tokens open, if any?
fn section_of(toks: &[Tok]) -> Option<(Section, usize)> {
    let word = |i: usize| match toks.get(i) {
        Some(Tok::Word(w)) => Some(w.to_ascii_lowercase()),
        _ => None,
    };
    let w0 = word(0)?;
    match w0.as_str() {
        "minimize" | "minimise" | "min" | "maximize" | "maximise" | "max" => {
            Some((Section::Objective, 1))
        }
        "subject" | "such" if word(1).as_deref() == Some("to") || word(1).as_deref() == Some("that") => {
            Some((Section::Constraints, 2))
        }
        "st" | "s.t." => Some((Section::Constraints, 1)),
        "bounds" | "bound" => Some((Section::Bounds, 1)),
        "generals" | "general" | "gen" | "integers" | "integer" | "int" => {
            Some((Section::Generals, 1))
        }
        "binaries" | "binary" | "bin" => Some((Section::Binaries, 1)),
        "end" => Some((Section::Done, 1)),
        _ => None,
    }
}

impl Parser {
    fn new() -> Parser {
        Parser {
            vars: Vec::new(),
            index: HashMap::new(),
            name: "lp".to_string(),
            sense: None,
            objective: ExprDraft::default(),
            constraints: Vec::new(),
            anon_rows: 0,
        }
    }

    fn var(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.vars.len();
        self.vars.push(VarDraft {
            name: name.to_string(),
            kind: VarKind::Continuous,
            lb: None,
            ub: None,
            free: false,
        });
        self.index.insert(name.to_string(), i);
        i
    }

    /// Parses a run of `[sign] [number] [name]` terms into `expr`,
    /// starting at `toks[at]`; stops at the first token that cannot
    /// begin a term and returns its position.
    fn parse_terms(
        &mut self,
        toks: &[Tok],
        mut at: usize,
        expr: &mut ExprDraft,
        lineno: usize,
    ) -> Result<usize, LpParseError> {
        loop {
            let mut sign = 1.0;
            let mut saw_sign = false;
            while let Some(tok) = toks.get(at) {
                match tok {
                    Tok::Plus => {
                        saw_sign = true;
                        at += 1;
                    }
                    Tok::Minus => {
                        sign = -sign;
                        saw_sign = true;
                        at += 1;
                    }
                    _ => break,
                }
            }
            match toks.get(at) {
                Some(Tok::Num(v)) => {
                    let v = sign * v;
                    at += 1;
                    if let Some(Tok::Word(name)) = toks.get(at) {
                        let name = name.clone();
                        let vi = self.var(&name);
                        expr.terms.push((vi, v));
                        at += 1;
                    } else {
                        expr.constant += v;
                    }
                }
                Some(Tok::Word(name)) => {
                    let name = name.clone();
                    let vi = self.var(&name);
                    expr.terms.push((vi, sign));
                    at += 1;
                }
                _ if saw_sign => return Err(err(lineno, "dangling sign in expression")),
                _ => return Ok(at),
            }
        }
    }

    /// Consumes one `Bounds` line (the grammar keeps each bound on its
    /// own line): `l <= x <= u`, `x <= u`, `x >= l`, `l <= x`, `x = v`,
    /// or `x free`.
    fn parse_bound(&mut self, toks: &[Tok], lineno: usize) -> Result<(), LpParseError> {
        let bad = || err(lineno, "malformed bound");
        let num = |t: Option<&Tok>, neg: bool| match t {
            Some(Tok::Num(v)) => Some(if neg { -v } else { *v }),
            _ => None,
        };
        // Optional leading sign before a number (`-inf <= x`).
        let (lead, at) = match toks.first() {
            Some(Tok::Minus) => (num(toks.get(1), true), 2),
            Some(Tok::Plus) => (num(toks.get(1), false), 2),
            Some(Tok::Num(_)) => (num(toks.first(), false), 1),
            _ => (None, 0),
        };
        if let Some(lo) = lead {
            // `l <= x [<= u]` or `l >= x` (upper bound, reversed).
            let ge = match toks.get(at) {
                Some(Tok::Le) => false,
                Some(Tok::Ge) => true,
                _ => return Err(bad()),
            };
            let name = match toks.get(at + 1) {
                Some(Tok::Word(w)) => w.clone(),
                _ => return Err(bad()),
            };
            let vi = self.var(&name);
            if ge {
                self.vars[vi].ub = Some(lo);
                return expect_end(toks, at + 2, lineno);
            }
            self.vars[vi].lb = Some(lo);
            match toks.get(at + 2) {
                None => Ok(()),
                Some(Tok::Le) => {
                    let (hi, skip) = signed_num(toks, at + 3).ok_or_else(bad)?;
                    self.vars[vi].ub = Some(hi);
                    expect_end(toks, at + 3 + skip, lineno)
                }
                _ => Err(bad()),
            }
        } else {
            // `x <= u`, `x >= l`, `x = v`, `x free`.
            let name = match toks.first() {
                Some(Tok::Word(w)) => w.clone(),
                _ => return Err(bad()),
            };
            let vi = self.var(&name);
            match toks.get(1) {
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("free") => {
                    self.vars[vi].free = true;
                    expect_end(toks, 2, lineno)
                }
                Some(op @ (Tok::Le | Tok::Ge | Tok::Eq)) => {
                    let (v, skip) = signed_num(toks, 2).ok_or_else(bad)?;
                    match op {
                        Tok::Le => self.vars[vi].ub = Some(v),
                        Tok::Ge => self.vars[vi].lb = Some(v),
                        _ => {
                            self.vars[vi].lb = Some(v);
                            self.vars[vi].ub = Some(v);
                        }
                    }
                    expect_end(toks, 2 + skip, lineno)
                }
                _ => Err(bad()),
            }
        }
    }

    fn finish(self, lineno: usize) -> Result<Model, LpParseError> {
        let sense = self
            .sense
            .ok_or_else(|| err(lineno, "missing Minimize/Maximize section"))?;
        let mut model = Model::new(self.name.clone());
        let mut handles = Vec::with_capacity(self.vars.len());
        for d in &self.vars {
            let (mut lb, mut ub) = if d.free {
                (f64::NEG_INFINITY, f64::INFINITY)
            } else {
                (d.lb.unwrap_or(0.0), d.ub.unwrap_or(f64::INFINITY))
            };
            if let Some(l) = d.lb {
                lb = l;
            }
            if let Some(u) = d.ub {
                ub = u;
            }
            if d.kind == VarKind::Binary {
                lb = lb.max(0.0);
                ub = ub.min(1.0);
            }
            if lb > ub {
                return Err(err(
                    lineno,
                    format!("variable `{}` has empty bounds [{lb}, {ub}]", d.name),
                ));
            }
            handles.push(model.add_var(d.name.clone(), d.kind, lb, ub));
        }
        let mut obj = crate::LinExpr::new();
        for &(vi, c) in &self.objective.terms {
            obj.add_term(handles[vi], c);
        }
        obj.add_constant(self.objective.constant);
        model.set_objective(obj, sense);
        for (name, expr, cmp, rhs) in self.constraints {
            let mut lhs = crate::LinExpr::new();
            for &(vi, c) in &expr.terms {
                lhs.add_term(handles[vi], c);
            }
            model.add_constraint(name, lhs, cmp, rhs - expr.constant);
        }
        Ok(model)
    }
}

/// A signed number at `toks[at]`, returning the value and how many
/// tokens it consumed.
fn signed_num(toks: &[Tok], at: usize) -> Option<(f64, usize)> {
    match toks.get(at) {
        Some(Tok::Num(v)) => Some((*v, 1)),
        Some(Tok::Minus) => match toks.get(at + 1) {
            Some(Tok::Num(v)) => Some((-v, 2)),
            _ => None,
        },
        Some(Tok::Plus) => match toks.get(at + 1) {
            Some(Tok::Num(v)) => Some((*v, 2)),
            _ => None,
        },
        _ => None,
    }
}

fn expect_end(toks: &[Tok], at: usize, lineno: usize) -> Result<(), LpParseError> {
    if at == toks.len() {
        Ok(())
    } else {
        Err(err(lineno, "trailing tokens"))
    }
}

impl Model {
    /// Parses a CPLEX LP-format model — the inverse of
    /// [`to_lp_format`](Model::to_lp_format).
    ///
    /// Supports the sections the exporter emits (objective, `Subject
    /// To`, `Bounds`, `Generals`, `Binaries`, `End`) with the common
    /// keyword spellings, `\`-comments, and multi-line expressions.
    /// Variables default to continuous over `[0, +inf)` as the format
    /// prescribes. A leading `\ model: NAME` comment (which the
    /// exporter writes) restores the model name.
    ///
    /// # Errors
    ///
    /// Returns [`LpParseError`] with a 1-based line number on malformed
    /// input, including empty variable bounds and a missing objective
    /// section.
    pub fn from_lp_format(text: &str) -> Result<Model, LpParseError> {
        let mut p = Parser::new();
        let mut section = Section::Preamble;
        let mut last_line = 0;
        // Constraint accumulation state: label, expression so far, and
        // the relation once seen (an LP row may span lines).
        let mut row_label: Option<String> = None;
        let mut row_expr = ExprDraft::default();
        let mut row_cmp: Option<Cmp> = None;

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            last_line = lineno;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('\\') {
                if let Some(name) = comment.trim().strip_prefix("model:") {
                    p.name = name.trim().to_string();
                }
                continue;
            }
            let toks = lex_line(line, lineno)?;
            let mut at = 0;
            if let Some((next, skip)) = section_of(&toks) {
                if next == Section::Objective {
                    let word = match &toks[0] {
                        Tok::Word(w) => w.to_ascii_lowercase(),
                        _ => unreachable!("objective keyword is a word"),
                    };
                    p.sense = Some(if word.starts_with("min") {
                        Sense::Minimize
                    } else {
                        Sense::Maximize
                    });
                }
                if next == Section::Constraints && row_cmp.is_some() {
                    return Err(err(lineno, "constraint missing right-hand side"));
                }
                section = next;
                at = skip;
                if at == toks.len() {
                    continue;
                }
            }
            match section {
                Section::Preamble => {
                    return Err(err(lineno, "expected Minimize or Maximize"));
                }
                Section::Objective => {
                    // Optional `label:` prefix, then terms.
                    if matches!(toks.get(at), Some(Tok::Word(_)))
                        && matches!(toks.get(at + 1), Some(Tok::Colon))
                    {
                        at += 2;
                    }
                    // Move the objective out while `parse_terms` holds
                    // `&mut p` for variable interning, then put it back.
                    let mut obj = std::mem::take(&mut p.objective);
                    let end = p.parse_terms(&toks, at, &mut obj, lineno)?;
                    p.objective = obj;
                    expect_end(&toks, end, lineno)?;
                }
                Section::Constraints => {
                    if row_cmp.is_none()
                        && row_expr.terms.is_empty()
                        && row_expr.constant == 0.0
                        && matches!(toks.get(at), Some(Tok::Word(_)))
                        && matches!(toks.get(at + 1), Some(Tok::Colon))
                    {
                        if let Some(Tok::Word(w)) = toks.get(at) {
                            row_label = Some(w.clone());
                        }
                        at += 2;
                    }
                    while at < toks.len() {
                        if row_cmp.is_none() {
                            at = p.parse_terms(&toks, at, &mut row_expr, lineno)?;
                            match toks.get(at) {
                                None => break,
                                Some(Tok::Le) => row_cmp = Some(Cmp::Le),
                                Some(Tok::Ge) => row_cmp = Some(Cmp::Ge),
                                Some(Tok::Eq) => row_cmp = Some(Cmp::Eq),
                                Some(_) => return Err(err(lineno, "expected <=, >= or =")),
                            }
                            at += 1;
                        } else {
                            let (rhs, skip) = signed_num(&toks, at)
                                .ok_or_else(|| err(lineno, "expected right-hand side"))?;
                            at += skip;
                            let label = row_label.take().unwrap_or_else(|| {
                                p.anon_rows += 1;
                                format!("r{}", p.anon_rows)
                            });
                            let expr = std::mem::take(&mut row_expr);
                            let cmp = row_cmp.take().expect("relation recorded");
                            p.constraints.push((label, expr, cmp, rhs));
                        }
                    }
                }
                Section::Bounds => {
                    p.parse_bound(&toks[at..], lineno)?;
                }
                Section::Generals | Section::Binaries => {
                    let kind = if section == Section::Generals {
                        VarKind::Integer
                    } else {
                        VarKind::Binary
                    };
                    for tok in &toks[at..] {
                        match tok {
                            Tok::Word(w) => {
                                let name = w.clone();
                                let vi = p.var(&name);
                                p.vars[vi].kind = kind;
                            }
                            _ => return Err(err(lineno, "expected variable name")),
                        }
                    }
                }
                Section::Done => {
                    return Err(err(lineno, "content after End"));
                }
            }
        }
        if row_cmp.is_some() || !row_expr.terms.is_empty() {
            return Err(err(last_line, "unterminated constraint"));
        }
        p.finish(last_line)
    }
}

fn fmt_coef(c: f64) -> String {
    if c >= 0.0 {
        format!("+{c}")
    } else {
        format!("{c}")
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cmp as _Cmp;

    #[test]
    fn export_contains_all_sections() {
        let mut m = Model::new("demo");
        let x = m.add_binary("x");
        let y = m.add_integer("y", 0.0, 9.0);
        let z = m.add_continuous("z", 0.0, f64::INFINITY);
        m.add_constraint("row a", x + y + z, _Cmp::Le, 5.0);
        m.set_objective(x + 2.0 * y, Sense::Maximize);
        let lp = m.to_lp_format();
        assert!(lp.contains("Maximize"));
        assert!(lp.contains("row_a:"));
        assert!(lp.contains("Generals"));
        assert!(lp.contains("Binaries"));
        assert!(lp.contains("z >= 0"));
        assert!(lp.ends_with("End\n"));
    }

    /// The parser inverts the exporter exactly: export → parse →
    /// export reproduces the identical string (names, order, bounds).
    #[test]
    fn export_parse_export_round_trips() {
        let mut m = Model::new("rt");
        let x = m.add_binary("x");
        let y = m.add_integer("y", 0.0, 9.0);
        let z = m.add_continuous("z", 0.0, f64::INFINITY);
        let w = m.add_continuous("w", f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint("cap", x + y + z, _Cmp::Le, 5.0);
        m.add_constraint("floor", 2.0 * y - z + w, _Cmp::Ge, -1.5);
        m.add_constraint("tie", x + w, _Cmp::Eq, 0.25);
        m.set_objective(x + 2.0 * y - 0.5 * z, Sense::Maximize);
        let lp = m.to_lp_format();
        let parsed = Model::from_lp_format(&lp).expect("parses its own export");
        assert_eq!(parsed.to_lp_format(), lp);
    }

    /// A parsed model solves to the objective the formulation implies.
    #[test]
    fn parsed_model_solves() {
        let text = "\\ model: knap\n\
                    Maximize\n obj: +3 a +4 b +2 c\n\
                    Subject To\n weight: +2 a +3 b +1 c <= 4\n\
                    Bounds\n 0 <= a <= 1\n 0 <= b <= 1\n 0 <= c <= 1\n\
                    Generals\n a b c\nEnd\n";
        let m = Model::from_lp_format(text).expect("valid LP text");
        assert_eq!(m.name(), "knap");
        let sol = m.solve().expect("solvable");
        assert!((sol.objective() - 6.0).abs() < 1e-6, "b + c: {}", sol.objective());
    }

    /// Keyword spellings, multi-line rows, free vars, and constants on
    /// the left-hand side all parse.
    #[test]
    fn parser_accepts_common_grammar_variants() {
        let text = "Minimize\n cost: x + 2 y\n\
                    st\n r1: x\n + y\n >= 2\n r2: x - y + 1 <= 4\n\
                    Bounds\n x free\n -1 <= y <= 10\nEnd";
        let m = Model::from_lp_format(text).expect("valid LP text");
        let lp = m.to_lp_format();
        assert!(lp.contains("x free"));
        assert!(lp.contains("-1 <= y <= 10"));
        // The LHS constant of r2 folds into the RHS: x - y <= 3.
        assert!(lp.contains("r2: +1 x -1 y <= 3"));
        let sol = m.solve().expect("solvable");
        // r1 and r2 both bind: x = 2.5, y = -0.5, objective 1.5.
        assert!((sol.objective() - 1.5).abs() < 1e-6, "objective {}", sol.objective());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for (text, want) in [
            ("Subject To\n r: x <= 1\nEnd", "Minimize/Maximize"),
            ("Minimize\n obj: x\nSubject To\n r: x <=\nEnd", "unterminated"),
            ("Minimize\n obj: x\nBounds\n 3 <= x <= 1\nEnd", "empty bounds"),
            ("Minimize\n obj: x ?\nEnd", "unexpected character"),
        ] {
            let e = Model::from_lp_format(text).expect_err(text);
            assert!(e.msg.contains(want), "`{}` → {}", text, e);
            assert!(e.line >= 1);
        }
    }
}
