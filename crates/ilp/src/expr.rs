//! Linear expressions over model variables.
//!
//! A [`LinExpr`] is a sparse linear form `Σ cᵢ·xᵢ + k`. Expressions are built
//! with ordinary operators so that model code reads like the mathematical
//! formulation:
//!
//! ```
//! use gomil_ilp::{Model, LinExpr};
//!
//! let mut m = Model::new("demo");
//! let x = m.add_continuous("x", 0.0, 10.0);
//! let y = m.add_continuous("y", 0.0, 10.0);
//! let e: LinExpr = 3.0 * x + 2.0 * y + 1.0;
//! assert_eq!(e.constant(), 1.0);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A handle to a decision variable in a [`Model`](crate::Model).
///
/// `Var`s are cheap indices; they are only meaningful for the model that
/// created them. Using a `Var` with a different model is a logic error that
/// the model detects by bounds-checking the index where possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Index of the variable inside its model (column index).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a variable handle from a raw index.
    ///
    /// Intended for iteration over all model columns; prefer keeping the
    /// original handles around.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A sparse linear expression `Σ cᵢ·xᵢ + constant`.
///
/// Terms are kept merged and sorted by variable index, so equality of two
/// expressions is structural equality of the canonical form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression with no variable terms.
    pub fn constant_expr(value: f64) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// Creates the expression `coeff · var`.
    pub fn term(var: Var, coeff: f64) -> LinExpr {
        let mut e = LinExpr::new();
        e.add_term(var, coeff);
        e
    }

    /// Adds `coeff · var` to the expression, merging with any existing term.
    pub fn add_term(&mut self, var: Var, coeff: f64) {
        let c = self.terms.entry(var).or_insert(0.0);
        *c += coeff;
        if *c == 0.0 {
            self.terms.remove(&var);
        }
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, value: f64) {
        self.constant += value;
    }

    /// The constant part of the expression.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of variable terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of `var`, or 0 when absent.
    pub fn coeff(&self, var: Var) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// Evaluates the expression against a full assignment vector indexed by
    /// variable index.
    ///
    /// # Panics
    ///
    /// Panics if a term's variable index is out of range for `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Sums an iterator of expressions (useful where `Iterator::sum` would
    /// need type annotations).
    pub fn sum<I: IntoIterator<Item = LinExpr>>(items: I) -> LinExpr {
        let mut acc = LinExpr::new();
        for e in items {
            acc += e;
        }
        acc
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.iter() {
            if first {
                write!(f, "{c} {v}")?;
                first = false;
            } else if c < 0.0 {
                write!(f, " - {} {v}", -c)?;
            } else {
                write!(f, " + {c} {v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0.0 {
            if self.constant < 0.0 {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> LinExpr {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> LinExpr {
        LinExpr::constant_expr(c)
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign:ident, $lhs:ty, $rhs:ty) => {
        impl $trait<$rhs> for $lhs {
            type Output = LinExpr;
            fn $method(self, rhs: $rhs) -> LinExpr {
                let mut e: LinExpr = self.into();
                let r: LinExpr = rhs.into();
                e.$assign(r);
                e
            }
        }
    };
}

impl_binop!(Add, add, add_assign, LinExpr, LinExpr);
impl_binop!(Add, add, add_assign, LinExpr, Var);
impl_binop!(Add, add, add_assign, LinExpr, f64);
impl_binop!(Add, add, add_assign, Var, LinExpr);
impl_binop!(Add, add, add_assign, Var, Var);
impl_binop!(Add, add, add_assign, Var, f64);
impl_binop!(Add, add, add_assign, f64, LinExpr);
impl_binop!(Add, add, add_assign, f64, Var);
impl_binop!(Sub, sub, sub_assign, LinExpr, LinExpr);
impl_binop!(Sub, sub, sub_assign, LinExpr, Var);
impl_binop!(Sub, sub, sub_assign, LinExpr, f64);
impl_binop!(Sub, sub, sub_assign, Var, LinExpr);
impl_binop!(Sub, sub, sub_assign, Var, Var);
impl_binop!(Sub, sub, sub_assign, Var, f64);
impl_binop!(Sub, sub, sub_assign, f64, LinExpr);
impl_binop!(Sub, sub, sub_assign, f64, Var);

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr::constant_expr(0.0) - self
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        LinExpr::term(self, rhs)
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: Var) -> LinExpr {
        LinExpr::term(rhs, self)
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        let mut out = LinExpr::constant_expr(self.constant * rhs);
        for (v, c) in self.terms {
            out.add_term(v, c * rhs);
        }
        out
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: LinExpr) -> LinExpr {
        rhs * self
    }
}

impl std::iter::Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        let mut acc = LinExpr::new();
        for e in iter {
            acc += e;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> (Var, Var, Var) {
        (Var(0), Var(1), Var(2))
    }

    #[test]
    fn term_merging_cancels_to_zero() {
        let (x, _, _) = vars();
        let e = 2.0 * x - 2.0 * x + 5.0;
        assert!(e.is_empty());
        assert_eq!(e.constant(), 5.0);
    }

    #[test]
    fn mixed_operator_chains() {
        let (x, y, z) = vars();
        let e = 3.0 * x + y - 2.0 * z + 4.0 - 1.0 * y;
        assert_eq!(e.coeff(x), 3.0);
        assert_eq!(e.coeff(y), 0.0);
        assert_eq!(e.coeff(z), -2.0);
        assert_eq!(e.constant(), 4.0);
    }

    #[test]
    fn eval_matches_manual_computation() {
        let (x, y, _) = vars();
        let e = 2.0 * x + 3.0 * y + 1.0;
        assert_eq!(e.eval(&[1.0, 2.0, 0.0]), 2.0 + 6.0 + 1.0);
    }

    #[test]
    fn scaling_distributes_over_terms_and_constant() {
        let (x, y, _) = vars();
        let e = (x + 2.0 * y + 3.0) * 2.0;
        assert_eq!(e.coeff(x), 2.0);
        assert_eq!(e.coeff(y), 4.0);
        assert_eq!(e.constant(), 6.0);
    }

    #[test]
    fn negation() {
        let (x, _, _) = vars();
        let e = -(2.0 * x + 1.0);
        assert_eq!(e.coeff(x), -2.0);
        assert_eq!(e.constant(), -1.0);
    }

    #[test]
    fn sum_of_expressions() {
        let (x, y, _) = vars();
        let e: LinExpr = vec![LinExpr::from(x), LinExpr::from(y), 1.0.into()]
            .into_iter()
            .sum();
        assert_eq!(e.coeff(x), 1.0);
        assert_eq!(e.coeff(y), 1.0);
        assert_eq!(e.constant(), 1.0);
    }

    #[test]
    fn display_is_readable() {
        let (x, y, _) = vars();
        let e = 2.0 * x - 1.0 * y + 3.0;
        assert_eq!(format!("{e}"), "2 x0 - 1 x1 + 3");
    }
}
