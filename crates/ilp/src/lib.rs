//! # gomil-ilp — a small mixed-integer linear programming solver
//!
//! This crate is the optimization substrate of the GOMIL reproduction. The
//! paper solves its formulations with Gurobi; no comparable solver is
//! available as an offline Rust crate, so this crate implements the required
//! subset from scratch:
//!
//! * a [`Model`] builder with continuous/integer/binary variables, linear
//!   constraints and a linear objective;
//! * a sparse revised-simplex engine (CSC constraint storage, product-form
//!   inverse with periodic refactorization): a bounded-variable two-phase
//!   primal plus a dual simplex for warm restarts from a cached basis;
//! * activity-based [presolve](crate::presolve::presolve);
//! * [branch and bound](crate::branch) with warm starts, parent-basis
//!   dual-simplex reoptimization at child nodes, round-and-repair
//!   heuristics, and time/node limits;
//! * the standard [linearizations](crate::Model::and_binary) (binary
//!   products, OR, exact max, big-M indicators) that the paper's prefix IP
//!   relies on;
//! * CPLEX LP-format export for debugging.
//!
//! ## Example
//!
//! ```
//! use gomil_ilp::{Model, Cmp, Sense};
//!
//! # fn main() -> Result<(), gomil_ilp::SolveError> {
//! // Small production-planning MILP.
//! let mut m = Model::new("plan");
//! let x = m.add_integer("x", 0.0, 100.0);
//! let y = m.add_integer("y", 0.0, 100.0);
//! m.add_constraint("machine", 2.0 * x + 1.0 * y, Cmp::Le, 10.0);
//! m.add_constraint("labour", 1.0 * x + 3.0 * y, Cmp::Le, 15.0);
//! m.set_objective(3.0 * x + 4.0 * y, Sense::Maximize);
//! let sol = m.solve()?;
//! assert!(sol.is_optimal());
//! assert_eq!(sol.objective(), 25.0); // x = 3, y = 4
//! # Ok(())
//! # }
//! ```
//!
//! ## Scope and limitations
//!
//! The solver targets the model sizes that appear in this repository (up to
//! a few thousand rows/columns after presolve). The LP engine stores the
//! constraint matrix once in compressed sparse column form and keeps `B⁻¹`
//! as an eta file, so memory scales with the nonzero count rather than
//! rows × columns; there is no LU factorization or Markowitz pivoting, so
//! numerically hostile bases may still force a from-scratch primal solve.
//! Every structural variable must have at least one finite bound for the
//! initial basis construction; unbounded-below-and-above variables are
//! supported only while they stay basic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod certify;
mod expr;
mod heur;
mod linearize;
mod lp_format;
mod model;
mod parallel;
pub mod presolve;
mod propagate;
pub(crate) mod simplex;
mod solution;

pub use branch::{BranchConfig, CutMode};
pub use certify::{certify, certify_values, Certificate, CertifyError};
pub use expr::{LinExpr, Var};
pub use gomil_budget::{Budget, BudgetChecker, BudgetExceeded};
pub use lp_format::LpParseError;
pub use model::{Cmp, Model, Sense, VarKind};
pub use presolve::{PresolveOpts, Presolved, ReductionStats};
pub use simplex::{Pricing, FEAS_TOL};
pub use solution::{
    IncumbentEvent, IncumbentSource, RootProfile, Solution, SolveError, SolveStatus,
    WarmStartStatus,
};
