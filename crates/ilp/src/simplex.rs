//! Bounded-variable primal simplex.
//!
//! This is the LP engine underneath the branch-and-bound solver in
//! [`branch`](crate::branch). It implements the classic two-phase tableau
//! simplex generalized to variables with lower *and* upper bounds, which is
//! essential here: almost every variable in the GOMIL formulations is a
//! binary or a small bounded integer, and bounded-variable pivoting keeps
//! those bounds out of the constraint matrix entirely.
//!
//! Algorithm outline:
//!
//! 1. Convert `A·x {≤,≥,=} b` to equalities with one slack per row
//!    (`s ∈ [0,∞)`, `(−∞,0]`, or `[0,0]` respectively).
//! 2. Put all structural variables at a finite bound, slacks basic. Rows
//!    whose slack value violates the slack bounds get an artificial column;
//!    phase 1 minimizes the sum of artificials.
//! 3. Phase 2 minimizes the true cost with artificials pinned to zero.
//! 4. Entering-variable choice is Dantzig pricing with an automatic switch
//!    to Bland's rule after a run of degenerate pivots (anti-cycling). The
//!    ratio test breaks ties toward the largest pivot element for stability.
//!
//! The tableau is dense (`rows × cols` of `f64`); problem sizes in this
//! repository stay within a few thousand rows, for which dense pivoting is
//! both simple and fast.

use gomil_budget::{Budget, BudgetExceeded};

/// Feasibility / integrality tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-6;
/// Reduced-cost optimality tolerance.
pub const OPT_TOL: f64 = 1e-7;
/// Smallest acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-8;
/// Consecutive degenerate pivots before switching to Bland's rule.
const STALL_LIMIT: u32 = 60;
/// Pivot iterations between wall-clock budget checks (a budget check costs
/// a clock read, so it is amortized over a batch of pivots).
const BUDGET_CHECK_PERIOD: u64 = 256;

/// Knobs for one LP solve.
#[derive(Debug, Clone)]
pub(crate) struct SimplexOpts {
    /// Total simplex iterations allowed across both phases.
    pub max_iters: u64,
    /// Use Bland's rule from the first pivot instead of only after a
    /// degenerate stall. Slower but cycle-proof; used by the numerical
    /// retry path.
    pub force_bland: bool,
    /// Multiplier on the reduced-cost optimality tolerance. Values > 1
    /// terminate earlier on numerically marginal problems.
    pub tol_scale: f64,
    /// Wall-clock budget checked every [`BUDGET_CHECK_PERIOD`] pivots.
    pub budget: Budget,
}

impl Default for SimplexOpts {
    fn default() -> SimplexOpts {
        SimplexOpts {
            max_iters: u64::MAX,
            force_bland: false,
            tol_scale: 1.0,
            budget: Budget::unlimited(),
        }
    }
}

impl SimplexOpts {
    /// Options with only an iteration cap set.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn with_max_iters(max_iters: u64) -> SimplexOpts {
        SimplexOpts {
            max_iters,
            ..SimplexOpts::default()
        }
    }
}

/// Why an LP solve could not run to completion. Unlike
/// [`SolveError`](crate::SolveError) this keeps budget exhaustion separate
/// from genuine numerical trouble, so branch and bound can stop gracefully
/// with its incumbent on the former and propagate the latter.
#[derive(Debug, Clone)]
pub(crate) enum LpError {
    /// The shared wall-clock budget ran out mid-solve.
    Budget(BudgetExceeded),
    /// Simplex breakdown (iteration cap, non-finite data).
    Numerical(String),
}

/// A standardized LP: minimize `costs·x` subject to sparse equality rows
/// (after slack augmentation) and column bounds.
#[derive(Debug, Clone)]
pub(crate) struct LpProblem {
    /// Number of structural columns (the caller's variables).
    pub num_structural: usize,
    /// Total columns including slacks (structural first, then slacks).
    pub num_cols: usize,
    /// Phase-2 cost per column (slack costs are zero).
    pub costs: Vec<f64>,
    /// Lower bound per column (may be `-INFINITY`).
    pub lb: Vec<f64>,
    /// Upper bound per column (may be `INFINITY`).
    pub ub: Vec<f64>,
    /// Sparse rows: `(column, coefficient)`; each row implicitly `= rhs`
    /// and already includes its slack column.
    pub rows: Vec<Vec<(u32, f64)>>,
    /// Right-hand sides.
    pub rhs: Vec<f64>,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone)]
pub(crate) enum LpOutcome {
    /// Proven optimal basic solution.
    Optimal {
        /// Values for the structural columns only.
        x: Vec<f64>,
        /// Optimal objective value.
        obj: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// Cost decreases without bound.
    Unbounded,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic,
    AtLower,
    AtUpper,
}

struct Tableau {
    rows: usize,
    cols: usize,
    /// Dense `rows × cols`, row-major: current `B⁻¹·A`.
    t: Vec<f64>,
    /// Reduced-cost row for the active phase objective.
    d: Vec<f64>,
    /// Basic column per row.
    basis: Vec<u32>,
    /// Status of every column.
    status: Vec<ColStatus>,
    /// Current value of every column (authoritative for nonbasic columns;
    /// kept in sync for basic ones).
    val: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    iterations: u64,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.t[r * self.cols + c]
    }

    /// Performs a pivot: column `q` enters the basis at row `r`.
    fn pivot(&mut self, r: usize, q: usize) {
        let cols = self.cols;
        let piv = self.t[r * cols + q];
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        // Normalize pivot row.
        let (before, rest) = self.t.split_at_mut(r * cols);
        let (prow, after) = rest.split_at_mut(cols);
        for v in prow.iter_mut() {
            *v *= inv;
        }
        prow[q] = 1.0; // exact
                       // Eliminate q from all other rows.
        let eliminate = |row: &mut [f64]| {
            let f = row[q];
            if f != 0.0 {
                for (v, p) in row.iter_mut().zip(prow.iter()) {
                    *v -= f * *p;
                }
                row[q] = 0.0; // exact
            }
        };
        for row in before.chunks_exact_mut(cols) {
            eliminate(row);
        }
        for row in after.chunks_exact_mut(cols) {
            eliminate(row);
        }
        // Objective row.
        let f = self.d[q];
        if f != 0.0 {
            for (v, p) in self.d.iter_mut().zip(prow.iter()) {
                *v -= f * *p;
            }
            self.d[q] = 0.0;
        }
        self.basis[r] = q as u32;
    }

    /// Rebuilds the reduced-cost row for a cost vector: `d = c − c_B·T`.
    fn rebuild_costs(&mut self, costs: &[f64]) {
        self.d.copy_from_slice(costs);
        for r in 0..self.rows {
            let cb = costs[self.basis[r] as usize];
            if cb != 0.0 {
                let row = &self.t[r * self.cols..(r + 1) * self.cols];
                for (dv, tv) in self.d.iter_mut().zip(row.iter()) {
                    *dv -= cb * tv;
                }
            }
        }
        for r in 0..self.rows {
            self.d[self.basis[r] as usize] = 0.0;
        }
    }

    /// Runs primal simplex on the current phase objective until optimal,
    /// unbounded, or stopped by an iteration/budget limit.
    fn optimize(&mut self, opts: &SimplexOpts) -> Result<(), SimplexStop> {
        let mut stalled: u32 = 0;
        let opt_tol = OPT_TOL * opts.tol_scale.max(1.0);
        loop {
            if self.iterations >= opts.max_iters {
                return Err(SimplexStop::IterationLimit);
            }
            if self.iterations.is_multiple_of(BUDGET_CHECK_PERIOD) {
                if let Err(reason) = opts.budget.check() {
                    return Err(SimplexStop::Budget(reason));
                }
            }
            let bland = opts.force_bland || stalled >= STALL_LIMIT;
            // --- Pricing: pick entering column.
            let mut enter: Option<(usize, f64)> = None; // (col, signed direction)
            let mut best_score = opt_tol;
            for j in 0..self.cols {
                let (dir, score) = match self.status[j] {
                    ColStatus::Basic => continue,
                    ColStatus::AtLower => (1.0, -self.d[j]),
                    ColStatus::AtUpper => (-1.0, self.d[j]),
                };
                if score > best_score {
                    enter = Some((j, dir));
                    if bland {
                        break; // lowest eligible index
                    }
                    best_score = score;
                }
            }
            let Some((q, dir)) = enter else {
                return Ok(()); // optimal
            };
            self.iterations += 1;

            // --- Ratio test (bounded variables).
            // Entering variable moves by t ≥ 0 in direction `dir`.
            let mut t_max = self.ub[q] - self.lb[q]; // bound-flip distance
            let mut leave: Option<usize> = None; // limiting row
            let mut leave_piv: f64 = 0.0;
            for r in 0..self.rows {
                let alpha = dir * self.at(r, q);
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                let b = self.basis[r] as usize;
                let xb = self.val[b];
                // x_b changes by −alpha · t.
                let limit = if alpha > 0.0 {
                    if self.lb[b].is_finite() {
                        (xb - self.lb[b]) / alpha
                    } else {
                        continue;
                    }
                } else if self.ub[b].is_finite() {
                    (xb - self.ub[b]) / alpha
                } else {
                    continue;
                };
                let limit = limit.max(0.0);
                // Prefer strictly smaller ratios; break near-ties toward the
                // largest pivot magnitude for numerical stability.
                if limit < t_max - 1e-9 || (limit < t_max + 1e-9 && alpha.abs() > leave_piv.abs()) {
                    t_max = limit.min(t_max);
                    leave = Some(r);
                    leave_piv = self.at(r, q);
                }
            }

            if t_max.is_infinite() {
                return Err(SimplexStop::Unbounded);
            }
            if t_max <= 1e-10 {
                stalled += 1;
            } else {
                stalled = 0;
            }

            // --- Apply the move.
            if t_max > 0.0 {
                for r in 0..self.rows {
                    let a = self.at(r, q);
                    if a != 0.0 {
                        let b = self.basis[r] as usize;
                        self.val[b] -= dir * t_max * a;
                    }
                }
                self.val[q] += dir * t_max;
            }
            match leave {
                None => {
                    // Bound flip: q jumps to its opposite bound.
                    self.status[q] = match self.status[q] {
                        ColStatus::AtLower => {
                            self.val[q] = self.ub[q];
                            ColStatus::AtUpper
                        }
                        ColStatus::AtUpper => {
                            self.val[q] = self.lb[q];
                            ColStatus::AtLower
                        }
                        ColStatus::Basic => unreachable!(),
                    };
                }
                Some(r) => {
                    let b = self.basis[r] as usize;
                    // Leaving variable lands exactly on the bound it hit.
                    let alpha = dir * self.at(r, q);
                    self.status[b] = if alpha > 0.0 {
                        self.val[b] = self.lb[b];
                        ColStatus::AtLower
                    } else {
                        self.val[b] = self.ub[b];
                        ColStatus::AtUpper
                    };
                    self.status[q] = ColStatus::Basic;
                    self.pivot(r, q);
                }
            }
        }
    }
}

enum SimplexStop {
    Unbounded,
    IterationLimit,
    Budget(BudgetExceeded),
}

/// Solves a standardized LP under the given options.
pub(crate) fn solve_lp(p: &LpProblem, opts: &SimplexOpts) -> Result<(LpOutcome, u64), LpError> {
    let m = p.rows.len();
    let n = p.num_cols;

    // Trivial case: no constraints — put every column at its cheapest bound.
    if m == 0 {
        let mut x = vec![0.0; p.num_structural];
        let mut obj = 0.0;
        for (j, xj) in x.iter_mut().enumerate() {
            let c = p.costs[j];
            let v = if c > 0.0 {
                p.lb[j]
            } else if c < 0.0 {
                p.ub[j]
            } else if p.lb[j].is_finite() {
                p.lb[j]
            } else {
                p.ub[j].min(0.0)
            };
            if !v.is_finite() && c != 0.0 {
                return Ok((LpOutcome::Unbounded, 0));
            }
            let v = if v.is_finite() { v } else { 0.0 };
            *xj = v;
            obj += c * v;
        }
        return Ok((LpOutcome::Optimal { x, obj }, 0));
    }

    for &c in &p.costs {
        if !c.is_finite() {
            return Err(LpError::Numerical("non-finite cost coefficient".into()));
        }
    }

    // --- Initial point: structural columns at a finite bound.
    let mut val = vec![0.0; n];
    let mut status = vec![ColStatus::AtLower; n];
    for j in 0..n {
        if p.lb[j].is_finite() {
            val[j] = p.lb[j];
            status[j] = ColStatus::AtLower;
        } else if p.ub[j].is_finite() {
            val[j] = p.ub[j];
            status[j] = ColStatus::AtUpper;
        } else {
            // Free column: model it nonbasic at 0 by treating it as at a
            // phantom lower bound; it may enter the basis and then behaves
            // normally. (Free columns never leave the basis afterwards
            // because the ratio test skips infinite bounds.)
            val[j] = 0.0;
            status[j] = ColStatus::AtLower;
        }
    }

    // Residual per row given the nonbasic point (slacks included in rows).
    // We decide per row whether the slack can be basic (residual within its
    // bounds) or whether an artificial column is needed.
    let mut artificial_rows: Vec<(usize, f64)> = Vec::new(); // (row, sign)
    let mut basis: Vec<u32> = Vec::with_capacity(m);
    let slack_col = |r: usize| p.num_structural + r;

    let mut residuals = vec![0.0; m];
    for (r, res) in residuals.iter_mut().enumerate() {
        let mut acc = p.rhs[r];
        for &(c, a) in &p.rows[r] {
            let c = c as usize;
            if c != slack_col(r) {
                acc -= a * val[c];
            }
        }
        // Row is: slack_coeff · s = acc (slack coefficient is 1.0 by
        // construction in `standardize`).
        *res = acc;
    }

    for (r, &v) in residuals.iter().enumerate() {
        let s = slack_col(r);
        if v >= p.lb[s] - FEAS_TOL && v <= p.ub[s] + FEAS_TOL {
            // Slack absorbs the residual and is basic.
            val[s] = v;
            status[s] = ColStatus::Basic;
            basis.push(s as u32);
        } else {
            // Slack parks at its nearest bound; artificial covers the rest.
            let sb = if v < p.lb[s] { p.lb[s] } else { p.ub[s] };
            val[s] = sb;
            status[s] = if sb == p.lb[s] {
                ColStatus::AtLower
            } else {
                ColStatus::AtUpper
            };
            let gap = v - sb;
            artificial_rows.push((r, gap.signum()));
            basis.push(u32::MAX); // patched below once artificials exist
        }
    }

    let num_art = artificial_rows.len();
    let total_cols = n + num_art;

    // --- Build the dense tableau.
    let mut t = vec![0.0; m * total_cols];
    for r in 0..m {
        for &(c, a) in &p.rows[r] {
            t[r * total_cols + c as usize] = a;
        }
    }
    let mut lb = p.lb.clone();
    let mut ub = p.ub.clone();
    let mut phase1_costs = vec![0.0; total_cols];
    let mut full_val = val;
    full_val.resize(total_cols, 0.0);
    let mut full_status = status;
    full_status.resize(total_cols, ColStatus::AtLower);
    lb.resize(total_cols, 0.0);
    ub.resize(total_cols, f64::INFINITY);

    for (k, &(r, sign)) in artificial_rows.iter().enumerate() {
        let col = n + k;
        // A basic column must read +1 in its own row (tableau = B⁻¹A), so
        // rows whose artificial would carry −1 are negated wholesale.
        if sign < 0.0 {
            for v in &mut t[r * total_cols..(r + 1) * total_cols] {
                *v = -*v;
            }
        }
        t[r * total_cols + col] = 1.0;
        phase1_costs[col] = 1.0;
        let s = slack_col(r);
        let gap = residuals[r] - full_val[s];
        full_val[col] = gap * sign; // = |gap| ≥ 0
        full_status[col] = ColStatus::Basic;
        basis[r] = col as u32;
    }

    let mut tab = Tableau {
        rows: m,
        cols: total_cols,
        t,
        d: vec![0.0; total_cols],
        basis,
        status: full_status,
        val: full_val,
        lb,
        ub,
        iterations: 0,
    };

    // --- Phase 1.
    if num_art > 0 {
        tab.rebuild_costs(&phase1_costs);
        match tab.optimize(opts) {
            Ok(()) => {}
            Err(SimplexStop::Unbounded) => {
                return Err(LpError::Numerical(
                    "phase-1 objective unbounded (internal error)".into(),
                ))
            }
            Err(SimplexStop::IterationLimit) => {
                return Err(LpError::Numerical(format!(
                    "simplex iteration limit {} hit in phase 1",
                    opts.max_iters
                )))
            }
            Err(SimplexStop::Budget(reason)) => return Err(LpError::Budget(reason)),
        }
        let infeas: f64 = (n..total_cols).map(|j| tab.val[j]).sum();
        if infeas > FEAS_TOL * 10.0 {
            return Ok((LpOutcome::Infeasible, tab.iterations));
        }
        // Pin artificials to zero so phase 2 cannot reuse them.
        for j in n..total_cols {
            tab.lb[j] = 0.0;
            tab.ub[j] = 0.0;
            if tab.status[j] != ColStatus::Basic {
                tab.status[j] = ColStatus::AtLower;
                tab.val[j] = 0.0;
            } else {
                tab.val[j] = 0.0; // basic at zero: harmless (degenerate)
            }
        }
    }

    // --- Phase 2.
    let mut phase2_costs = p.costs.clone();
    phase2_costs.resize(total_cols, 0.0);
    tab.rebuild_costs(&phase2_costs);
    match tab.optimize(opts) {
        Ok(()) => {}
        Err(SimplexStop::Unbounded) => return Ok((LpOutcome::Unbounded, tab.iterations)),
        Err(SimplexStop::IterationLimit) => {
            return Err(LpError::Numerical(format!(
                "simplex iteration limit {} hit in phase 2",
                opts.max_iters
            )))
        }
        Err(SimplexStop::Budget(reason)) => return Err(LpError::Budget(reason)),
    }

    let x: Vec<f64> = tab.val[..p.num_structural].to_vec();
    let obj = x
        .iter()
        .zip(p.costs.iter())
        .map(|(v, c)| v * c)
        .sum::<f64>();
    Ok((LpOutcome::Optimal { x, obj }, tab.iterations))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an LpProblem from dense rows `a·x cmp rhs` with structural
    /// bounds; mirrors what `branch::standardize` does.
    fn lp(
        costs: Vec<f64>,
        bounds: Vec<(f64, f64)>,
        cons: Vec<(Vec<f64>, i8, f64)>, // -1: <=, 0: =, 1: >=
    ) -> LpProblem {
        let ns = costs.len();
        let m = cons.len();
        let mut lb: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let mut ub: Vec<f64> = bounds.iter().map(|b| b.1).collect();
        let mut rows = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for (r, (a, cmp, b)) in cons.into_iter().enumerate() {
            let mut row: Vec<(u32, f64)> = a
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(j, &v)| (j as u32, v))
                .collect();
            row.push(((ns + r) as u32, 1.0));
            match cmp {
                -1 => {
                    lb.push(0.0);
                    ub.push(f64::INFINITY);
                }
                1 => {
                    lb.push(f64::NEG_INFINITY);
                    ub.push(0.0);
                }
                _ => {
                    lb.push(0.0);
                    ub.push(0.0);
                }
            }
            rows.push(row);
            rhs.push(b);
        }
        let mut costs = costs;
        costs.resize(ns + m, 0.0);
        LpProblem {
            num_structural: ns,
            num_cols: ns + m,
            costs,
            lb,
            ub,
            rows,
            rhs,
        }
    }

    fn solve(p: &LpProblem) -> LpOutcome {
        solve_lp(p, &SimplexOpts::with_max_iters(100_000))
            .expect("numerical failure")
            .0
    }

    #[test]
    fn exhausted_budget_stops_the_solve() {
        let p = lp(
            vec![-3.0, -2.0],
            vec![(0.0, f64::INFINITY), (0.0, f64::INFINITY)],
            vec![(vec![1.0, 1.0], -1, 4.0), (vec![1.0, 3.0], -1, 6.0)],
        );
        let opts = SimplexOpts {
            budget: Budget::with_limit(std::time::Duration::ZERO),
            ..SimplexOpts::default()
        };
        assert!(matches!(solve_lp(&p, &opts), Err(LpError::Budget(_))));
    }

    #[test]
    fn forced_bland_reaches_the_same_optimum() {
        let p = lp(
            vec![-3.0, -2.0],
            vec![(0.0, f64::INFINITY), (0.0, f64::INFINITY)],
            vec![(vec![1.0, 1.0], -1, 4.0), (vec![1.0, 3.0], -1, 6.0)],
        );
        let opts = SimplexOpts {
            force_bland: true,
            tol_scale: 10.0,
            ..SimplexOpts::with_max_iters(100_000)
        };
        match solve_lp(&p, &opts).unwrap().0 {
            LpOutcome::Optimal { obj, .. } => assert!((obj + 12.0).abs() < 1e-6),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn simple_2d_maximization_as_min() {
        // max 3x+2y s.t. x+y<=4, x+3y<=6, x,y>=0  -> min -3x-2y, opt at (4,0), obj 12.
        let p = lp(
            vec![-3.0, -2.0],
            vec![(0.0, f64::INFINITY), (0.0, f64::INFINITY)],
            vec![(vec![1.0, 1.0], -1, 4.0), (vec![1.0, 3.0], -1, 6.0)],
        );
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj + 12.0).abs() < 1e-6, "obj={obj}");
                assert!((x[0] - 4.0).abs() < 1e-6);
                assert!(x[1].abs() < 1e-6);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_constraints_need_phase1() {
        // min x+y s.t. x+y>=2, x-y=1 -> x=1.5, y=0.5, obj 2.
        let p = lp(
            vec![1.0, 1.0],
            vec![(0.0, f64::INFINITY), (0.0, f64::INFINITY)],
            vec![(vec![1.0, 1.0], 1, 2.0), (vec![1.0, -1.0], 0, 1.0)],
        );
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj - 2.0).abs() < 1e-6);
                assert!((x[0] - 1.5).abs() < 1e-6);
                assert!((x[1] - 0.5).abs() < 1e-6);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn detects_infeasibility() {
        // x <= 1 and x >= 2.
        let p = lp(
            vec![0.0],
            vec![(0.0, f64::INFINITY)],
            vec![(vec![1.0], -1, 1.0), (vec![1.0], 1, 2.0)],
        );
        assert!(matches!(solve(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unboundedness() {
        // min -x s.t. x >= 0 (no upper bound).
        let p = lp(
            vec![-1.0],
            vec![(0.0, f64::INFINITY)],
            vec![(vec![1.0], 1, 0.0)],
        );
        assert!(matches!(solve(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn respects_upper_bounds_via_bound_flip() {
        // min -x - y with x,y in [0, 3] and x + y <= 5: optimum (3, 2) or (2, 3).
        let p = lp(
            vec![-1.0, -1.0],
            vec![(0.0, 3.0), (0.0, 3.0)],
            vec![(vec![1.0, 1.0], -1, 5.0)],
        );
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj + 5.0).abs() < 1e-6);
                assert!(x[0] <= 3.0 + 1e-9 && x[1] <= 3.0 + 1e-9);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-ish / highly degenerate: several redundant constraints
        // through the origin.
        let p = lp(
            vec![-1.0, -1.0, -1.0],
            vec![
                (0.0, f64::INFINITY),
                (0.0, f64::INFINITY),
                (0.0, f64::INFINITY),
            ],
            vec![
                (vec![1.0, 0.0, 0.0], -1, 0.0),
                (vec![1.0, 1.0, 0.0], -1, 0.0),
                (vec![1.0, 1.0, 1.0], -1, 1.0),
                (vec![0.0, 1.0, 1.0], -1, 1.0),
                (vec![0.0, 0.0, 1.0], -1, 1.0),
            ],
        );
        match solve(&p) {
            LpOutcome::Optimal { obj, .. } => assert!((obj + 1.0).abs() < 1e-6),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x in [-5, 5], x >= -3  ->  x = -3.
        let p = lp(vec![1.0], vec![(-5.0, 5.0)], vec![(vec![1.0], 1, -3.0)]);
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj + 3.0).abs() < 1e-6);
                assert!((x[0] + 3.0).abs() < 1e-6);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn no_constraints_puts_vars_at_cheapest_bound() {
        let p = lp(vec![1.0, -1.0], vec![(0.0, 2.0), (0.0, 2.0)], vec![]);
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert_eq!(x, vec![0.0, 2.0]);
                assert_eq!(obj, -2.0);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn equality_with_bounded_vars() {
        // min 2x + 3y s.t. x + y = 10, x in [0,4], y in [0,20]  -> x=4, y=6, obj 26.
        let p = lp(
            vec![2.0, 3.0],
            vec![(0.0, 4.0), (0.0, 20.0)],
            vec![(vec![1.0, 1.0], 0, 10.0)],
        );
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj - 26.0).abs() < 1e-6);
                assert!((x[0] - 4.0).abs() < 1e-6);
                assert!((x[1] - 6.0).abs() < 1e-6);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    /// Randomized cross-check: LPs whose optimum we can compute by brute
    /// force over basic feasible points of a transportation-like structure.
    #[test]
    fn random_lps_match_enumerated_vertices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..60 {
            // 2 vars, 3 random <= constraints with positive coefficients,
            // bounded box: optimum is at one of the O(25) intersection
            // points; enumerate them.
            let c = [rng.gen_range(-5.0..5.0f64), rng.gen_range(-5.0..5.0f64)];
            let mut cons = Vec::new();
            for _ in 0..3 {
                cons.push((
                    vec![rng.gen_range(0.1..3.0f64), rng.gen_range(0.1..3.0f64)],
                    -1i8,
                    rng.gen_range(1.0..8.0f64),
                ));
            }
            let p = lp(c.to_vec(), vec![(0.0, 6.0), (0.0, 6.0)], cons.clone());
            let LpOutcome::Optimal { obj, .. } = solve(&p) else {
                panic!("trial {trial}: expected optimal");
            };
            // Brute force: intersect all pairs of active boundaries.
            let mut lines: Vec<(f64, f64, f64)> = vec![
                (1.0, 0.0, 0.0),
                (0.0, 1.0, 0.0),
                (1.0, 0.0, 6.0),
                (0.0, 1.0, 6.0),
            ];
            for (a, _, b) in &cons {
                lines.push((a[0], a[1], *b));
            }
            let feasible = |x: f64, y: f64| {
                x >= -1e-9
                    && y >= -1e-9
                    && x <= 6.0 + 1e-9
                    && y <= 6.0 + 1e-9
                    && cons.iter().all(|(a, _, b)| a[0] * x + a[1] * y <= b + 1e-9)
            };
            let mut best = f64::INFINITY;
            for i in 0..lines.len() {
                for j in i + 1..lines.len() {
                    let (a1, b1, c1) = lines[i];
                    let (a2, b2, c2) = lines[j];
                    let det = a1 * b2 - a2 * b1;
                    if det.abs() < 1e-9 {
                        continue;
                    }
                    let x = (c1 * b2 - c2 * b1) / det;
                    let y = (a1 * c2 - a2 * c1) / det;
                    if feasible(x, y) {
                        best = best.min(c[0] * x + c[1] * y);
                    }
                }
            }
            assert!(
                (obj - best).abs() < 1e-5,
                "trial {trial}: simplex {obj} vs enumerated {best}"
            );
        }
    }
}
