//! Sparse revised simplex with bounded variables, product-form inverse,
//! and dual-simplex warm restarts.
//!
//! This is the LP engine underneath the branch-and-bound solver in
//! [`branch`](crate::branch). Two entry points:
//!
//! * [`solve_lp`] / [`solve_lp_from`] — the classic two-phase **primal**
//!   simplex generalized to variables with lower *and* upper bounds
//!   (bounded-variable pivoting keeps the binaries and small integers of
//!   the GOMIL formulations out of the constraint matrix entirely).
//! * [`resolve_lp`] — a bounded-variable **dual** simplex that restarts
//!   from a cached [`Basis`]. Branch-and-bound children differ from their
//!   parent by tightened column bounds only, so the parent's optimal basis
//!   stays dual feasible and typically reoptimizes in a handful of pivots
//!   instead of a full from-scratch solve.
//!
//! Unlike the previous dense-tableau engine, the constraint matrix is
//! stored once in compressed sparse column form ([`ColMajor`], built by
//! [`LpProblem::new`]) and never materialized as `rows × cols` floats.
//! `B⁻¹` is kept as an eta file (product form of the inverse): every pivot
//! appends one eta vector, and the file is rebuilt from the current basis
//! columns every [`REFACTOR_PERIOD`] pivots to bound both memory and
//! numerical drift. Memory is O(nnz + m·REFACTOR_PERIOD) instead of
//! O(rows·cols).
//!
//! Algorithm outline (primal):
//!
//! 1. Convert `A·x {≤,≥,=} b` to equalities with one slack per row
//!    (`s ∈ [0,∞)`, `(−∞,0]`, or `[0,0]` respectively).
//! 2. Put all structural variables at a finite bound, slacks basic. Rows
//!    whose slack value violates the slack bounds get an artificial column;
//!    phase 1 minimizes the sum of artificials.
//! 3. Phase 2 minimizes the true cost with artificials pinned to zero.
//! 4. Entering-variable choice is Dantzig pricing (one BTRAN plus one pass
//!    over the sparse columns per iteration) with an automatic switch to
//!    Bland's rule after a run of degenerate pivots (anti-cycling). The
//!    ratio test breaks ties toward the largest pivot element for stability.
//!
//! Dual restart outline ([`resolve_lp`]): re-invert the cached basis under
//! the *new* bounds, verify the reduced costs are still dual feasible, then
//! drive out primal bound violations with dual ratio-test pivots. Any
//! staleness — singular basis, dual infeasibility, iteration trouble —
//! makes `resolve_lp` return `Ok(None)` so the caller falls back to the
//! two-phase primal (whose Bland retry path is unchanged).

use gomil_budget::{Budget, BudgetExceeded};
use std::time::Instant;

/// Feasibility / integrality tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-6;
/// Reduced-cost optimality tolerance.
pub const OPT_TOL: f64 = 1e-7;
/// Smallest acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-8;
/// Pivot magnitude below which a re-inversion declares the basis singular.
const SINGULAR_TOL: f64 = 1e-10;
/// Consecutive degenerate pivots before switching to Bland's rule.
const STALL_LIMIT: u32 = 60;
/// Work units (pivots × rows) between wall-clock budget checks. A budget
/// check costs a clock read, so it is amortized over a batch of pivots —
/// but the batch must shrink as rows grow, or a wide model's expensive
/// iterations overshoot the deadline by minutes (256 pivots at ~1 s each
/// on the prefix m=64 LP blew a 120 s budget out to 257 s).
const BUDGET_CHECK_WORK: u64 = 1 << 20;
/// Eta vectors accumulated since the last re-inversion (i.e. pivots
/// performed on top of the factorized basis) before the file is rebuilt
/// from scratch.
const REFACTOR_PERIOD: usize = 64;

/// Devex weights are clamped here; runaway reference weights degrade the
/// rule toward Dantzig instead of overflowing.
const DEVEX_MAX: f64 = 1e12;

/// Pricing rule for the entering choice (primal) and the leaving-row
/// choice (dual).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pricing {
    /// Classic most-negative-reduced-cost / worst-violation pricing: the
    /// cheapest rule per iteration, kept for A/B comparison and for the
    /// numerical-retry rung (together with Bland's rule).
    Dantzig,
    /// Devex: approximate steepest edge over a reference framework
    /// (Forrest–Goldfarb). Weights reset to the current frame at every
    /// re-inversion. Costs one extra BTRAN plus a column pass per primal
    /// pivot (and almost nothing in the dual), and typically saves far
    /// more pivots than it spends on the wide GOMIL root LPs.
    #[default]
    Devex,
}

impl Pricing {
    /// Parses the CLI spelling (`dantzig` / `devex`).
    pub fn from_name(name: &str) -> Option<Pricing> {
        match name {
            "dantzig" => Some(Pricing::Dantzig),
            "devex" => Some(Pricing::Devex),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Pricing::Dantzig => "dantzig",
            Pricing::Devex => "devex",
        }
    }
}

/// Knobs for one LP solve.
#[derive(Debug, Clone)]
pub(crate) struct SimplexOpts {
    /// Total simplex iterations allowed across both phases.
    pub max_iters: u64,
    /// Use Bland's rule from the first pivot instead of only after a
    /// degenerate stall. Slower but cycle-proof; used by the numerical
    /// retry path.
    pub force_bland: bool,
    /// Multiplier on the reduced-cost optimality tolerance. Values > 1
    /// terminate earlier on numerically marginal problems.
    pub tol_scale: f64,
    /// Entering/leaving pricing rule (Bland's rule overrides it).
    pub pricing: Pricing,
    /// Wall-clock budget checked every few pivots (amortized by
    /// [`BUDGET_CHECK_WORK`] over the row count).
    pub budget: Budget,
}

impl Default for SimplexOpts {
    fn default() -> SimplexOpts {
        SimplexOpts {
            max_iters: u64::MAX,
            force_bland: false,
            tol_scale: 1.0,
            pricing: Pricing::default(),
            budget: Budget::unlimited(),
        }
    }
}

impl SimplexOpts {
    /// Options with only an iteration cap set.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn with_max_iters(max_iters: u64) -> SimplexOpts {
        SimplexOpts {
            max_iters,
            ..SimplexOpts::default()
        }
    }
}

/// Why an LP solve could not run to completion. Unlike
/// [`SolveError`](crate::SolveError) this keeps budget exhaustion separate
/// from genuine numerical trouble, so branch and bound can stop gracefully
/// with its incumbent on the former and propagate the latter.
#[derive(Debug, Clone)]
pub(crate) enum LpError {
    /// The shared wall-clock budget ran out mid-solve. `iterations` carries
    /// the pivots already spent, so callers can account for partial work
    /// instead of losing it from the telemetry.
    Budget {
        /// Which budget fired.
        reason: BudgetExceeded,
        /// Simplex iterations performed before the budget fired.
        iterations: u64,
    },
    /// Simplex breakdown (iteration cap, non-finite data).
    Numerical(String),
}

/// Compressed sparse column view of the full constraint matrix (structural
/// and slack columns alike). Built once per [`LpProblem`]; every pricing
/// pass and FTRAN scatters against these columns instead of a dense
/// tableau.
#[derive(Debug, Clone, Default)]
pub(crate) struct ColMajor {
    /// `col_ptr[j]..col_ptr[j+1]` indexes the entries of column `j`.
    col_ptr: Vec<u32>,
    /// Row index per entry.
    row_idx: Vec<u32>,
    /// Coefficient per entry.
    val: Vec<f64>,
}

impl ColMajor {
    /// Transposes sparse rows into CSC. Row entries are `(column, coeff)`.
    fn build(num_cols: usize, rows: &[Vec<(u32, f64)>]) -> ColMajor {
        let mut counts = vec![0u32; num_cols + 1];
        for row in rows {
            for &(c, _) in row {
                counts[c as usize + 1] += 1;
            }
        }
        for j in 0..num_cols {
            counts[j + 1] += counts[j];
        }
        let nnz = counts[num_cols] as usize;
        let mut row_idx = vec![0u32; nnz];
        let mut val = vec![0.0f64; nnz];
        let mut next = counts.clone();
        for (r, row) in rows.iter().enumerate() {
            for &(c, a) in row {
                let slot = next[c as usize] as usize;
                row_idx[slot] = r as u32;
                val[slot] = a;
                next[c as usize] += 1;
            }
        }
        ColMajor {
            col_ptr: counts,
            row_idx,
            val,
        }
    }

    /// Iterates the `(row, coefficient)` entries of column `j`.
    #[inline]
    fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j] as usize;
        let hi = self.col_ptr[j + 1] as usize;
        self.row_idx[lo..hi]
            .iter()
            .zip(&self.val[lo..hi])
            .map(|(&r, &v)| (r as usize, v))
    }

    /// Number of stored entries in column `j`.
    #[inline]
    fn col_nnz(&self, j: usize) -> usize {
        (self.col_ptr[j + 1] - self.col_ptr[j]) as usize
    }

    /// Total stored entries.
    fn nnz(&self) -> usize {
        self.row_idx.len()
    }
}

/// Telemetry from [`LpProblem::equilibrate`]: how many rows were rescaled
/// and the coefficient range (max |a| / min |a| over structural entries)
/// before and after. A shrinking range is the whole point — it is what
/// keeps pivot magnitudes away from `PIVOT_TOL` on badly-ranged models.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct ScaleStats {
    /// Rows whose scale factor came out different from 1.0.
    pub rows_scaled: u64,
    /// Row-geomean spread before scaling (1.0 for an empty matrix); see
    /// [`LpProblem::row_geomean_spread`].
    pub range_before: f64,
    /// Row-geomean spread after scaling (≤ 2 up to the power-of-two
    /// rounding whenever scaling actually ran).
    pub range_after: f64,
}

/// Row-geomean spread below which [`LpProblem::equilibrate`] leaves the
/// matrix alone: after a real equilibration the spread is ≤ 2, so a matrix
/// already within 4× is as good as scaled.
const SCALE_SKIP_SPREAD: f64 = 4.0;

/// A standardized LP: minimize `costs·x` subject to sparse equality rows
/// (after slack augmentation) and column bounds.
#[derive(Debug, Clone)]
pub(crate) struct LpProblem {
    /// Number of structural columns (the caller's variables).
    pub num_structural: usize,
    /// Total columns including slacks (structural first, then slacks).
    pub num_cols: usize,
    /// Phase-2 cost per column (slack costs are zero).
    pub costs: Vec<f64>,
    /// Lower bound per column (may be `-INFINITY`).
    pub lb: Vec<f64>,
    /// Upper bound per column (may be `INFINITY`).
    pub ub: Vec<f64>,
    /// Sparse rows: `(column, coefficient)`; each row implicitly `= rhs`
    /// and already includes its slack column. Kept for bound propagation;
    /// the simplex engine works from [`cols`](Self::cols).
    pub rows: Vec<Vec<(u32, f64)>>,
    /// Right-hand sides.
    pub rhs: Vec<f64>,
    /// The same matrix in compressed sparse column form.
    pub cols: ColMajor,
    /// `Some` once [`equilibrate`](Self::equilibrate) has run, carrying its
    /// telemetry. Scaling is a pure reformulation over the same structural
    /// columns (see `equilibrate`), so no unscaling is needed anywhere.
    pub scaling: Option<ScaleStats>,
}

impl LpProblem {
    /// Assembles a problem and builds its CSC column store. `costs`, `lb`
    /// and `ub` must all have length `num_cols`; every `rows` entry must
    /// reference a column below `num_cols`.
    pub fn new(
        num_structural: usize,
        costs: Vec<f64>,
        lb: Vec<f64>,
        ub: Vec<f64>,
        rows: Vec<Vec<(u32, f64)>>,
        rhs: Vec<f64>,
    ) -> LpProblem {
        let num_cols = costs.len();
        debug_assert_eq!(lb.len(), num_cols);
        debug_assert_eq!(ub.len(), num_cols);
        debug_assert_eq!(rows.len(), rhs.len());
        let cols = ColMajor::build(num_cols, &rows);
        LpProblem {
            num_structural,
            num_cols,
            costs,
            lb,
            ub,
            rows,
            rhs,
            cols,
            scaling: None,
        }
    }

    /// Number of nonzeros in the constraint matrix.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn nnz(&self) -> usize {
        self.cols.nnz()
    }

    /// Spread of the per-row geometric coefficient means: `max/min` over
    /// rows of `geomean(|a|)` across structural entries (1.0 when no row
    /// has any). This is the quantity row equilibration controls — the
    /// within-row relative range is scale-invariant, so a global
    /// coefficient range would misreport a pure row scaling.
    fn row_geomean_spread(&self) -> f64 {
        let mut gmin = f64::INFINITY;
        let mut gmax = 0.0f64;
        for (r, row) in self.rows.iter().enumerate() {
            let slack = (self.num_structural + r) as u32;
            let mut log_sum = 0.0f64;
            let mut cnt = 0u32;
            for &(c, a) in row {
                if c != slack && a != 0.0 {
                    log_sum += a.abs().log2();
                    cnt += 1;
                }
            }
            if cnt > 0 {
                let g = (log_sum / cnt as f64).exp2();
                gmin = gmin.min(g);
                gmax = gmax.max(g);
            }
        }
        if gmax > 0.0 {
            gmax / gmin
        } else {
            1.0
        }
    }

    /// Geometric-mean row equilibration with power-of-two factors.
    ///
    /// Each row `r` is multiplied by `ρ = 2^(-round(log2 geomean(|a|)))`
    /// over its structural entries; the slack coefficient is left at 1.0,
    /// which amounts to the substitution `s' = ρ·s`. Every slack bound set
    /// produced by `standardize` — `[0, ∞)`, `(-∞, 0]`, `[0, 0]` — is
    /// invariant under positive scaling, so the scaled problem has exactly
    /// the same feasible structural points and objective as the original:
    /// nothing downstream (extraction, certify, cuts) needs to unscale.
    /// Power-of-two factors make the rescaling FP-exact, and a second call
    /// is a near-no-op (the post-scale geomean sits in `[2^-½, 2^½]`).
    ///
    /// A matrix whose row-geomean spread is already ≤ [`SCALE_SKIP_SPREAD`]
    /// is left untouched: scaling cannot meaningfully improve it, and the
    /// perturbed pivot magnitudes would only shift tolerance behavior for
    /// nothing (measured as a ~2× node-throughput loss on the
    /// small-integer-coefficient CT models).
    pub fn equilibrate(&mut self) -> ScaleStats {
        let before = self.row_geomean_spread();
        let mut stats = ScaleStats {
            rows_scaled: 0,
            range_before: before,
            range_after: before,
        };
        if before <= SCALE_SKIP_SPREAD {
            self.scaling = Some(stats);
            return stats;
        }

        for (r, row) in self.rows.iter_mut().enumerate() {
            let slack = (self.num_structural + r) as u32;
            let mut log_sum = 0.0f64;
            let mut cnt = 0u32;
            for &(c, a) in row.iter() {
                if c != slack && a != 0.0 {
                    log_sum += a.abs().log2();
                    cnt += 1;
                }
            }
            if cnt == 0 {
                continue;
            }
            let shift = -(log_sum / cnt as f64).round();
            if shift == 0.0 {
                continue;
            }
            let rho = shift.exp2();
            for (c, a) in row.iter_mut() {
                if *c != slack {
                    *a *= rho;
                }
            }
            self.rhs[r] *= rho;
            stats.rows_scaled += 1;
        }

        if stats.rows_scaled > 0 {
            self.cols = ColMajor::build(self.num_cols, &self.rows);
        }
        stats.range_after = self.row_geomean_spread();
        self.scaling = Some(stats);
        stats
    }
}

/// Outcome of an LP solve.
#[derive(Debug, Clone)]
pub(crate) enum LpOutcome {
    /// Proven optimal basic solution.
    Optimal {
        /// Values for the structural columns only.
        x: Vec<f64>,
        /// Optimal objective value.
        obj: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// Cost decreases without bound.
    Unbounded,
}

/// A finished LP solve: the outcome plus the work done and, for optimal
/// outcomes without artificials left in the basis, a reusable [`Basis`].
#[derive(Debug, Clone)]
pub(crate) struct LpResult {
    pub outcome: LpOutcome,
    /// Simplex iterations across all phases of this solve.
    pub iterations: u64,
    /// Basis re-inversions (eta-file rebuilds) performed.
    pub refactors: u64,
    /// Microseconds spent in the first basis factorization of this solve
    /// (0 when the trivial no-constraint path skipped factorization).
    pub first_factor_us: u64,
    /// Hypersparsity counters for the FTRAN/BTRAN kernels of this solve.
    pub kernel: KernelStats,
    /// The final basis when it is warm-restartable (optimal, and no
    /// artificial column basic); `None` otherwise.
    pub basis: Option<Basis>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColStatus {
    Basic,
    AtLower,
    AtUpper,
}

/// A snapshot of an optimal simplex basis, detached from any particular
/// bound vector: which column is basic in each row plus the bound side of
/// every nonbasic column. Tightening bounds keeps such a basis *dual*
/// feasible, which is exactly what [`resolve_lp`] exploits across
/// branch-and-bound nodes.
#[derive(Debug, Clone)]
pub(crate) struct Basis {
    /// Basic column per row (`len == rows`), artificials excluded.
    pub(crate) cols: Vec<u32>,
    /// Status per problem column (`len == num_cols`).
    pub(crate) status: Vec<ColStatus>,
}

impl Basis {
    /// Deliberately corrupts the basis for fallback testing: duplicates the
    /// first basic column into every slot, which fails re-validation (and
    /// would be singular even if it did not).
    #[cfg(test)]
    pub(crate) fn poison(&mut self) {
        if let Some(&first) = self.cols.first() {
            for c in self.cols.iter_mut() {
                *c = first;
            }
        }
    }
}

/// One product-form eta: applying the pivot `B⁻¹ ← E⁻¹·B⁻¹` where the
/// pivot column `w = B⁻¹·a_q` entered at `row`.
struct Eta {
    row: u32,
    /// `w[row]`, the pivot element.
    pivot: f64,
    /// Off-pivot nonzeros of `w`. The pivot-row entry lives in `pivot`
    /// only, so the FTRAN/BTRAN inner loops need no `i != row` branch.
    nz: Vec<(u32, f64)>,
}

/// Pattern size past which the hypersparse kernels stop maintaining the
/// index list and fall back to dense bookkeeping, as a fraction of the row
/// count. HiGHS uses the same ~10% heuristic: past that density the
/// pattern upkeep costs more than the dense scan it avoids.
const HYPER_DENSITY: f64 = 0.1;

#[inline]
fn hyper_cut(m: usize) -> usize {
    ((m as f64 * HYPER_DENSITY) as usize).max(16)
}

/// Per-solve kernel telemetry: total FTRAN/BTRAN applications through the
/// sparse-capable entry points, and how many stayed on the hypersparse
/// path (pattern below the density cutover for the whole application).
/// Dense utility solves (`compute_basics`, `recompute_reduced`) are not
/// counted — the counters measure the per-pivot kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct KernelStats {
    pub(crate) ftran: u64,
    pub(crate) ftran_hyper: u64,
    pub(crate) btran: u64,
    pub(crate) btran_hyper: u64,
}

impl KernelStats {
    pub(crate) fn absorb(&mut self, o: &KernelStats) {
        self.ftran += o.ftran;
        self.ftran_hyper += o.ftran_hyper;
        self.btran += o.btran;
        self.btran_hyper += o.btran_hyper;
    }
}

/// Sparse working vector for the hypersparse kernels: dense value storage
/// plus the list of positions that may hold a nonzero (`in_pat` keeps the
/// list duplicate-free, so consumers may apply non-idempotent updates per
/// pattern entry). Once the pattern outgrows [`hyper_cut`] the kernels set
/// `dense` and stop maintaining the list; values stay exact either way —
/// the flag only switches bookkeeping, and consumers then scan the full
/// length via [`pattern`](WorkVec::pattern).
struct WorkVec {
    vals: Vec<f64>,
    idx: Vec<u32>,
    in_pat: Vec<bool>,
    dense: bool,
}

impl WorkVec {
    fn new(m: usize) -> WorkVec {
        WorkVec {
            vals: vec![0.0; m],
            idx: Vec::new(),
            in_pat: vec![false; m],
            dense: false,
        }
    }

    /// Resets to the zero vector, clearing only the recorded pattern when
    /// it is still sparse.
    fn clear(&mut self) {
        if self.dense {
            self.vals.fill(0.0);
            self.in_pat.fill(false);
        } else {
            for &i in &self.idx {
                self.vals[i as usize] = 0.0;
                self.in_pat[i as usize] = false;
            }
        }
        self.idx.clear();
        self.dense = false;
    }

    /// Adds `v` at position `i`, recording the position in the pattern.
    #[inline]
    fn add(&mut self, i: usize, v: f64) {
        if !self.dense && !self.in_pat[i] {
            self.in_pat[i] = true;
            self.idx.push(i as u32);
        }
        self.vals[i] += v;
    }

    /// Iterates the positions that may hold a nonzero (all of them once
    /// dense). Positions may carry an exact zero after cancellation;
    /// consumers check the value.
    #[inline]
    fn pattern(&self) -> impl Iterator<Item = usize> + '_ {
        let dense_range = if self.dense { 0..self.vals.len() } else { 0..0 };
        let sparse: &[u32] = if self.dense { &[] } else { &self.idx };
        dense_range.chain(sparse.iter().map(|&i| i as usize))
    }
}

/// Scatter accumulator for row-sweep pricing (`α = ρᵀ·A` over the rows in
/// ρ's pattern): dense values over the columns plus a duplicate-free list
/// of touched columns.
struct Sweep {
    acc: Vec<f64>,
    idx: Vec<u32>,
    mark: Vec<bool>,
}

impl Sweep {
    fn new(n: usize) -> Sweep {
        Sweep {
            acc: vec![0.0; n],
            idx: Vec::new(),
            mark: vec![false; n],
        }
    }

    fn clear(&mut self) {
        for &c in &self.idx {
            self.acc[c as usize] = 0.0;
            self.mark[c as usize] = false;
        }
        self.idx.clear();
    }

    #[inline]
    fn add(&mut self, c: usize, v: f64) {
        if !self.mark[c] {
            self.mark[c] = true;
            self.idx.push(c as u32);
        }
        self.acc[c] += v;
    }
}

/// Why a simplex phase stopped before proving optimality.
enum SimplexStop {
    Unbounded,
    IterationLimit,
    Budget(BudgetExceeded),
    /// Basis re-inversion broke down (singular / vanished pivot).
    Singular(String),
}

/// How a dual-simplex run ended.
enum DualEnd {
    /// All basic values are back within their bounds (primal feasible, and
    /// dual feasibility was maintained throughout — i.e. optimal up to a
    /// cleanup pass).
    PrimalFeasible,
    /// Dual unbounded: the LP is primal infeasible.
    Infeasible,
}

/// The revised-simplex working state: problem reference, optional
/// artificial columns, the eta file, and per-column status/value arrays.
struct Core<'a> {
    p: &'a LpProblem,
    m: usize,
    /// Total columns including artificials.
    n: usize,
    /// Row of artificial `k` (column index `p.num_cols + k`).
    art_row: Vec<u32>,
    /// Coefficient (±1) of artificial `k` in its row.
    art_sign: Vec<f64>,
    /// Active-phase costs, length `n`.
    costs: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Basic column per row.
    basis: Vec<u32>,
    status: Vec<ColStatus>,
    /// Current value of every column (authoritative for nonbasic columns;
    /// kept in sync for basic ones).
    val: Vec<f64>,
    etas: Vec<Eta>,
    /// Eta-file length right after the last re-inversion; pivots since then
    /// is `etas.len() - etas_base`, which drives the refactor cadence.
    etas_base: usize,
    iterations: u64,
    refactors: u64,
    /// Devex reference weights per column (primal pricing).
    devex_w: Vec<f64>,
    /// Devex reference weights per row (dual leaving-row pricing).
    dual_w: Vec<f64>,
    /// Microseconds spent in the first `refactorize` call.
    first_factor_us: u64,
    /// Eta index pivoting on each row among the *factorization* etas
    /// (indices `< etas_base`, each with a distinct pivot row), or
    /// `u32::MAX` when the row has none. Rebuilt by `refactorize`; update
    /// etas appended since then are not mapped — the hypersparse FTRAN
    /// scans them sequentially with an O(1) skip.
    row_eta: Vec<u32>,
    /// Scratch for Gilbert–Peierls firing in `ftran_sparse`: candidate
    /// etas in creation order, plus the dedup marks.
    fire_heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>>,
    fire_queued: Vec<bool>,
    /// Hypersparsity counters for this solve.
    kernel: KernelStats,
}

impl Core<'_> {
    /// Iterates the sparse entries of column `j` (artificials included).
    #[inline]
    fn for_col(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.p.num_cols {
            for (r, a) in self.p.cols.col(j) {
                f(r, a);
            }
        } else {
            let k = j - self.p.num_cols;
            f(self.art_row[k] as usize, self.art_sign[k]);
        }
    }

    /// Dot product of column `j` with a dense vector.
    #[inline]
    fn col_dot(&self, j: usize, v: &[f64]) -> f64 {
        if j < self.p.num_cols {
            self.p.cols.col(j).map(|(r, a)| a * v[r]).sum()
        } else {
            let k = j - self.p.num_cols;
            self.art_sign[k] * v[self.art_row[k] as usize]
        }
    }

    #[inline]
    fn col_nnz(&self, j: usize) -> usize {
        if j < self.p.num_cols {
            self.p.cols.col_nnz(j)
        } else {
            1
        }
    }

    /// FTRAN: overwrites `v ← B⁻¹·v` by applying the eta file in creation
    /// order. Dense variant for full-length right-hand sides
    /// (`compute_basics`); the pivot loops use [`ftran_sparse`].
    ///
    /// [`ftran_sparse`]: Core::ftran_sparse
    fn ftran(&self, v: &mut [f64]) {
        for e in &self.etas {
            let r = e.row as usize;
            let t = v[r] / e.pivot;
            if t != 0.0 {
                for &(i, w) in &e.nz {
                    v[i as usize] -= w * t;
                }
            }
            v[r] = t;
        }
    }

    /// BTRAN: overwrites `v ← B⁻ᵀ·v` by applying the transposed etas in
    /// reverse order. Dense variant for full-length vectors (pricing `y`,
    /// `recompute_reduced`); the dual's `ρ = B⁻ᵀ·e_r` uses
    /// [`btran_sparse`](Core::btran_sparse).
    fn btran(&self, v: &mut [f64]) {
        for e in self.etas.iter().rev() {
            let r = e.row as usize;
            let mut s = v[r];
            for &(i, w) in &e.nz {
                s -= w * v[i as usize];
            }
            v[r] = s / e.pivot;
        }
    }

    /// Hypersparse FTRAN: `v ← B⁻¹·v` where `v` carries its own nonzero
    /// pattern.
    ///
    /// Factorization etas (indices `< etas_base`) have distinct pivot
    /// rows, mapped in `row_eta`; a min-heap fires exactly the etas whose
    /// pivot row holds a nonzero, in creation order, so the cost is
    /// proportional to the fill path reached from the rhs pattern rather
    /// than the whole eta file (Gilbert–Peierls, the same scheme
    /// `refactorize` uses internally). This is valid because an eta whose
    /// pivot-row value is exactly zero is a no-op, and fill produced by a
    /// fired eta can only trigger etas created later. Update etas appended
    /// since the last re-inversion (at most [`REFACTOR_PERIOD`], possibly
    /// with repeated pivot rows) are scanned sequentially with an O(1)
    /// zero-pivot-row skip. When the pattern outgrows [`hyper_cut`] the
    /// remaining etas are applied densely — the arithmetic is identical
    /// either way.
    fn ftran_sparse(&mut self, v: &mut WorkVec) {
        self.kernel.ftran += 1;
        let cut = hyper_cut(self.m);
        // First factorization eta still to be applied densely after a
        // cutover; etas_base when the hypersparse pass ran to completion.
        let mut resume = 0usize;
        if !v.dense && v.idx.len() <= cut {
            debug_assert!(self.fire_heap.is_empty());
            for &i in &v.idx {
                let e = self.row_eta[i as usize];
                if e != u32::MAX && !self.fire_queued[e as usize] {
                    self.fire_queued[e as usize] = true;
                    self.fire_heap.push(std::cmp::Reverse(e));
                }
            }
            resume = self.etas_base;
            while let Some(std::cmp::Reverse(ei)) = self.fire_heap.pop() {
                self.fire_queued[ei as usize] = false;
                let e = &self.etas[ei as usize];
                let r = e.row as usize;
                let t = v.vals[r] / e.pivot;
                v.vals[r] = t;
                if t != 0.0 {
                    for &(i, w) in &e.nz {
                        let iu = i as usize;
                        if !v.in_pat[iu] {
                            v.in_pat[iu] = true;
                            v.idx.push(i);
                        }
                        v.vals[iu] -= w * t;
                        let re = self.row_eta[iu];
                        if re != u32::MAX && re > ei && !self.fire_queued[re as usize] {
                            self.fire_queued[re as usize] = true;
                            self.fire_heap.push(std::cmp::Reverse(re));
                        }
                    }
                }
                if v.idx.len() > cut {
                    // Pattern went dense mid-firing. Values are exact and
                    // every eta ≤ ei that had to fire has fired (pop order
                    // is increasing), so the rest of the factorization
                    // file applies densely from ei + 1.
                    v.dense = true;
                    resume = ei as usize + 1;
                    while let Some(std::cmp::Reverse(e)) = self.fire_heap.pop() {
                        self.fire_queued[e as usize] = false;
                    }
                    break;
                }
            }
        } else {
            v.dense = true;
        }
        if v.dense {
            for e in &self.etas[resume..self.etas_base] {
                let r = e.row as usize;
                let t = v.vals[r] / e.pivot;
                if t != 0.0 {
                    for &(i, w) in &e.nz {
                        v.vals[i as usize] -= w * t;
                    }
                }
                v.vals[r] = t;
            }
        }
        // Update etas: applied in append order; a zero pivot-row value is
        // a no-op in O(1).
        for e in &self.etas[self.etas_base..] {
            let r = e.row as usize;
            if v.vals[r] == 0.0 {
                continue;
            }
            let t = v.vals[r] / e.pivot;
            v.vals[r] = t;
            if t == 0.0 {
                continue;
            }
            if v.dense {
                for &(i, w) in &e.nz {
                    v.vals[i as usize] -= w * t;
                }
            } else {
                for &(i, w) in &e.nz {
                    let iu = i as usize;
                    if !v.in_pat[iu] {
                        v.in_pat[iu] = true;
                        v.idx.push(i);
                    }
                    v.vals[iu] -= w * t;
                }
                if v.idx.len() > cut {
                    v.dense = true;
                }
            }
        }
        if !v.dense {
            self.kernel.ftran_hyper += 1;
        }
    }

    /// BTRAN with pattern tracking: `v ← B⁻ᵀ·v`, recording which positions
    /// become nonzero. Each eta still costs O(|nz|) — the transposed
    /// dependency graph is not materialized — so unlike FTRAN the win is
    /// not in the eta pass but in what the caller does with the resulting
    /// pattern: row-sweep pricing over only the rows with `ρ_r ≠ 0`
    /// instead of a dot product against every column.
    fn btran_sparse(&mut self, v: &mut WorkVec) {
        self.kernel.btran += 1;
        let cut = hyper_cut(self.m);
        for e in self.etas.iter().rev() {
            let r = e.row as usize;
            let mut s = v.vals[r];
            for &(i, w) in &e.nz {
                s -= w * v.vals[i as usize];
            }
            let s = s / e.pivot;
            if !v.dense && s != 0.0 && !v.in_pat[r] {
                v.in_pat[r] = true;
                v.idx.push(r as u32);
                if v.idx.len() > cut {
                    v.dense = true;
                }
            }
            v.vals[r] = s;
        }
        if !v.dense {
            self.kernel.btran_hyper += 1;
        }
    }

    /// Appends the eta recorded by a pivot on row `r` with FTRAN'd column
    /// `w`. The nonzero list is pre-sized from the touched count and
    /// excludes the pivot-row entry (it lives in `pivot`).
    fn push_eta(&mut self, r: usize, w: &WorkVec) {
        let mut nz: Vec<(u32, f64)> = Vec::with_capacity(if w.dense {
            16
        } else {
            w.idx.len().saturating_sub(1)
        });
        for i in w.pattern() {
            if i != r && w.vals[i] != 0.0 {
                nz.push((i as u32, w.vals[i]));
            }
        }
        self.etas.push(Eta {
            row: r as u32,
            pivot: w.vals[r],
            nz,
        });
    }

    /// Rebuilds the eta file from the current basis columns (product-form
    /// re-inversion, sparsest column first). Fails if the basis is
    /// singular. Row assignments may be permuted; `self.basis` is updated
    /// to match.
    ///
    /// The working column is kept sparse throughout: only touched entries
    /// are scattered, transformed, scanned for a pivot, and reset, and the
    /// eta file is applied in Gilbert–Peierls fashion — a min-heap fires
    /// exactly the etas whose pivot row carries a nonzero, in creation
    /// order. Columns that transform to an exact unit column (the common
    /// slack case) contribute no eta at all. The dense variant was O(m²)
    /// even for a diagonal basis, which at the prefix m=64 LP's 133 k rows
    /// burned ~51 s before the first simplex pivot.
    fn refactorize(&mut self) -> Result<(), String> {
        let t0 = if self.refactors == 0 {
            Some(Instant::now())
        } else {
            None
        };
        self.refactors += 1;
        self.etas.clear();
        // Devex weights are relative to a reference framework that a
        // re-inversion invalidates (row assignments may permute below):
        // reset both frames to the current point.
        self.devex_w.fill(1.0);
        self.dual_w.fill(1.0);
        let mut order: Vec<u32> = self.basis.clone();
        order.sort_by_key(|&j| self.col_nnz(j as usize));
        let mut taken = vec![false; self.m];
        let mut new_basis = vec![0u32; self.m];
        let mut w = vec![0.0f64; self.m];
        let mut touched: Vec<u32> = Vec::new();
        let mut is_touched = vec![false; self.m];
        // Rebuild the row → eta map (every re-inversion eta has a distinct
        // pivot row); `ftran_sparse` keeps using it after we return.
        self.row_eta.clear();
        self.row_eta.resize(self.m, u32::MAX);
        // Candidate etas to fire for the current column, popped in
        // creation order; `queued` dedupes pushes.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
            std::collections::BinaryHeap::new();
        let mut queued = vec![false; self.m];
        let touch = |r: usize,
                     is_touched: &mut [bool],
                     touched: &mut Vec<u32>,
                     heap: &mut std::collections::BinaryHeap<std::cmp::Reverse<u32>>,
                     queued: &mut [bool],
                     after: u32,
                     row_eta: &[u32]| {
            if !is_touched[r] {
                is_touched[r] = true;
                touched.push(r as u32);
            }
            let e = row_eta[r];
            if e != u32::MAX && e >= after && !queued[e as usize] {
                queued[e as usize] = true;
                heap.push(std::cmp::Reverse(e));
            }
        };
        for &j in &order {
            self.for_col(j as usize, |r, a| {
                w[r] = a;
                touch(
                    r,
                    &mut is_touched,
                    &mut touched,
                    &mut heap,
                    &mut queued,
                    0,
                    &self.row_eta,
                );
            });
            // Fire only the etas reachable from the column's pattern; fill
            // can only trigger etas created later than the one producing it.
            while let Some(std::cmp::Reverse(ei)) = heap.pop() {
                queued[ei as usize] = false;
                let e = &self.etas[ei as usize];
                let r = e.row as usize;
                let t = w[r] / e.pivot;
                w[r] = t;
                if t != 0.0 {
                    // The eta's own nz list is borrowed from self.etas, so
                    // fill bookkeeping is inlined rather than via `touch`.
                    for &(i, ww) in &e.nz {
                        let iu = i as usize;
                        if !is_touched[iu] {
                            is_touched[iu] = true;
                            touched.push(i);
                        }
                        w[iu] -= ww * t;
                        let re = self.row_eta[iu];
                        if re != u32::MAX && re > ei && !queued[re as usize] {
                            queued[re as usize] = true;
                            heap.push(std::cmp::Reverse(re));
                        }
                    }
                }
            }
            let mut r_best: Option<usize> = None;
            let mut a_best = SINGULAR_TOL;
            for &ti in &touched {
                let i = ti as usize;
                if !taken[i] && w[i].abs() > a_best {
                    a_best = w[i].abs();
                    r_best = Some(i);
                }
            }
            let Some(r) = r_best else {
                return Err(format!("singular basis: column {j} has no usable pivot"));
            };
            taken[r] = true;
            new_basis[r] = j;
            // A transformed column that is exactly the unit vector e_r
            // (slack columns, typically) has an identity eta: skip it.
            let unit = w[r] == 1.0
                && touched
                    .iter()
                    .all(|&ti| ti as usize == r || w[ti as usize] == 0.0);
            if !unit {
                let mut nz: Vec<(u32, f64)> = Vec::with_capacity(touched.len().saturating_sub(1));
                for &ti in &touched {
                    let i = ti as usize;
                    if i != r && w[i] != 0.0 {
                        nz.push((ti, w[i]));
                    }
                }
                self.row_eta[r] = self.etas.len() as u32;
                self.etas.push(Eta {
                    row: r as u32,
                    pivot: w[r],
                    nz,
                });
            }
            for &ti in &touched {
                w[ti as usize] = 0.0;
                is_touched[ti as usize] = false;
            }
            touched.clear();
        }
        self.basis = new_basis;
        self.etas_base = self.etas.len();
        if let Some(t0) = t0 {
            self.first_factor_us = t0.elapsed().as_micros() as u64;
        }
        Ok(())
    }

    /// Recomputes every basic value as `x_B = B⁻¹(b − A_N·x_N)`, clearing
    /// accumulated drift. Nonbasic values are authoritative inputs.
    fn compute_basics(&mut self) {
        let mut w = self.p.rhs.clone();
        for j in 0..self.n {
            if self.status[j] != ColStatus::Basic {
                let vj = self.val[j];
                if vj != 0.0 {
                    self.for_col(j, |r, a| w[r] -= a * vj);
                }
            }
        }
        self.ftran(&mut w);
        for (r, &wj) in w.iter().enumerate() {
            self.val[self.basis[r] as usize] = wj;
        }
    }

    /// Re-inverts when the eta file has grown past the refactor threshold,
    /// then refreshes basic values.
    fn maybe_refactor(&mut self) -> Result<(), SimplexStop> {
        if self.etas.len() >= self.etas_base + REFACTOR_PERIOD {
            self.refactorize().map_err(SimplexStop::Singular)?;
            self.compute_basics();
        }
        Ok(())
    }

    /// Iteration-cap and wall-clock checks shared by both pivot loops.
    fn check_limits(&self, opts: &SimplexOpts) -> Result<(), SimplexStop> {
        if self.iterations >= opts.max_iters {
            return Err(SimplexStop::IterationLimit);
        }
        // Amortize clock reads over ~BUDGET_CHECK_WORK row-operations: tiny
        // LPs check every few hundred pivots, wide ones every pivot.
        let period = (BUDGET_CHECK_WORK / self.m.max(1) as u64).clamp(1, 256);
        if self.iterations.is_multiple_of(period) {
            if let Err(reason) = opts.budget.check() {
                return Err(SimplexStop::Budget(reason));
            }
        }
        Ok(())
    }

    /// Runs primal simplex on the current phase costs until optimal,
    /// unbounded, or stopped by an iteration/budget limit.
    fn primal(&mut self, opts: &SimplexOpts) -> Result<(), SimplexStop> {
        let mut stalled: u32 = 0;
        let opt_tol = OPT_TOL * opts.tol_scale.max(1.0);
        let mut y = vec![0.0f64; self.m];
        let mut w = WorkVec::new(self.m);
        let mut rho = WorkVec::new(self.m);
        let mut sweep = Sweep::new(self.n);
        loop {
            self.check_limits(opts)?;
            let bland = opts.force_bland || stalled >= STALL_LIMIT;
            let devex = !bland && opts.pricing == Pricing::Devex;

            // --- Pricing: y = B⁻ᵀ·c_B, then d_j = c_j − y·a_j on the fly.
            // Dantzig picks the worst reduced cost; devex divides its
            // square by the reference weight (approximate steepest edge).
            for (r, yv) in y.iter_mut().enumerate() {
                *yv = self.costs[self.basis[r] as usize];
            }
            self.btran(&mut y);
            let mut enter: Option<(usize, f64)> = None; // (col, direction)
            let mut best_score = opt_tol;
            let mut best_ratio = 0.0f64;
            for j in 0..self.n {
                match self.status[j] {
                    ColStatus::Basic => continue,
                    _ if self.lb[j] == self.ub[j] => continue, // fixed
                    _ => {}
                }
                let d = self.costs[j] - self.col_dot(j, &y);
                let (dir, score) = match self.status[j] {
                    ColStatus::AtLower => (1.0, -d),
                    ColStatus::AtUpper => (-1.0, d),
                    ColStatus::Basic => unreachable!(),
                };
                if score <= opt_tol {
                    continue;
                }
                if bland {
                    enter = Some((j, dir));
                    break; // lowest eligible index
                }
                if devex {
                    let ratio = score * score / self.devex_w[j];
                    if ratio > best_ratio {
                        best_ratio = ratio;
                        enter = Some((j, dir));
                    }
                } else if score > best_score {
                    best_score = score;
                    enter = Some((j, dir));
                }
            }
            let Some((q, dir)) = enter else {
                return Ok(()); // optimal
            };
            self.iterations += 1;

            // --- w = B⁻¹·a_q, the tableau column of q.
            w.clear();
            self.for_col(q, |r, a| w.add(r, a));
            self.ftran_sparse(&mut w);

            // --- Ratio test (bounded variables), over w's pattern only.
            // Entering variable moves by t ≥ 0 in direction `dir`.
            let mut t_max = self.ub[q] - self.lb[q]; // bound-flip distance
            let mut leave: Option<usize> = None; // limiting row
            let mut leave_piv: f64 = 0.0;
            for r in w.pattern() {
                let wr = w.vals[r];
                let alpha = dir * wr;
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                let b = self.basis[r] as usize;
                let xb = self.val[b];
                // x_b changes by −alpha · t.
                let limit = if alpha > 0.0 {
                    if self.lb[b].is_finite() {
                        (xb - self.lb[b]) / alpha
                    } else {
                        continue;
                    }
                } else if self.ub[b].is_finite() {
                    (xb - self.ub[b]) / alpha
                } else {
                    continue;
                };
                let limit = limit.max(0.0);
                // Prefer strictly smaller ratios; break near-ties toward the
                // largest pivot magnitude for numerical stability.
                if limit < t_max - 1e-9 || (limit < t_max + 1e-9 && alpha.abs() > leave_piv.abs()) {
                    t_max = limit.min(t_max);
                    leave = Some(r);
                    leave_piv = wr;
                }
            }

            if t_max.is_infinite() {
                return Err(SimplexStop::Unbounded);
            }
            if t_max <= 1e-10 {
                stalled += 1;
            } else {
                stalled = 0;
            }

            // --- Apply the move.
            if t_max > 0.0 {
                for r in w.pattern() {
                    let a = w.vals[r];
                    if a != 0.0 {
                        let b = self.basis[r] as usize;
                        self.val[b] -= dir * t_max * a;
                    }
                }
                self.val[q] += dir * t_max;
            }
            match leave {
                None => {
                    // Bound flip: q jumps to its opposite bound.
                    self.status[q] = match self.status[q] {
                        ColStatus::AtLower => {
                            self.val[q] = self.ub[q];
                            ColStatus::AtUpper
                        }
                        ColStatus::AtUpper => {
                            self.val[q] = self.lb[q];
                            ColStatus::AtLower
                        }
                        ColStatus::Basic => unreachable!(),
                    };
                }
                Some(r) => {
                    let b = self.basis[r] as usize;
                    if devex {
                        self.update_devex_primal(q, r, &w, &mut rho, &mut sweep);
                    }
                    // Leaving variable lands exactly on the bound it hit.
                    let alpha = dir * w.vals[r];
                    self.status[b] = if alpha > 0.0 {
                        self.val[b] = self.lb[b];
                        ColStatus::AtLower
                    } else {
                        self.val[b] = self.ub[b];
                        ColStatus::AtUpper
                    };
                    self.status[q] = ColStatus::Basic;
                    self.push_eta(r, &w);
                    self.basis[r] = q as u32;
                    self.maybe_refactor()?;
                }
            }
        }
    }

    /// Devex reference-framework update after a primal pivot decision:
    /// column `q` enters on row `r`, `w = B⁻¹·a_q` (the *current* basis —
    /// call before `push_eta`). One BTRAN builds the pivot row
    /// `α_r = eᵣᵀB⁻¹A`; every nonbasic weight takes
    /// `max(w_j, (α_rj/α_rq)²·w_q)` and the leaving column gets
    /// `max(w_q/α_rq², 1)` (Forrest & Goldfarb 1992).
    fn update_devex_primal(
        &mut self,
        q: usize,
        r: usize,
        w: &WorkVec,
        rho: &mut WorkVec,
        sweep: &mut Sweep,
    ) {
        let piv = w.vals[r];
        if piv.abs() <= PIVOT_TOL {
            return;
        }
        let wq = self.devex_w[q].max(1.0);
        rho.clear();
        rho.add(r, 1.0);
        self.btran_sparse(rho);
        let b = self.basis[r] as usize; // leaving column, still basic here
        let bump = |this: &mut Core<'_>, j: usize, a: f64| {
            if a != 0.0 {
                let cand = ((a / piv) * (a / piv) * wq).min(DEVEX_MAX);
                if cand > this.devex_w[j] {
                    this.devex_w[j] = cand;
                }
            }
        };
        if rho.dense {
            for j in 0..self.n {
                if self.status[j] == ColStatus::Basic || j == q || self.lb[j] == self.ub[j] {
                    continue;
                }
                let a = self.col_dot(j, &rho.vals);
                bump(self, j, a);
            }
        } else {
            // Row sweep: scatter ρ_i·row_i for only the rows with ρ ≠ 0,
            // then update the touched nonbasic columns. Artificial columns
            // are not in `p.rows`; their α is read off ρ directly.
            sweep.clear();
            for i in rho.pattern() {
                let rv = rho.vals[i];
                if rv != 0.0 {
                    for &(c, a) in &self.p.rows[i] {
                        sweep.add(c as usize, a * rv);
                    }
                }
            }
            for k in 0..sweep.idx.len() {
                let j = sweep.idx[k] as usize;
                if self.status[j] == ColStatus::Basic || j == q || self.lb[j] == self.ub[j] {
                    continue;
                }
                let a = sweep.acc[j];
                bump(self, j, a);
            }
            for k in 0..self.art_row.len() {
                let j = self.p.num_cols + k;
                if self.status[j] == ColStatus::Basic || j == q || self.lb[j] == self.ub[j] {
                    continue;
                }
                let a = self.art_sign[k] * rho.vals[self.art_row[k] as usize];
                bump(self, j, a);
            }
        }
        self.devex_w[b] = (wq / (piv * piv)).clamp(1.0, DEVEX_MAX);
    }

    /// Recomputes the full reduced-cost vector `d = c − AᵀB⁻ᵀc_B` into `d`
    /// (basic entries forced to exactly zero).
    fn recompute_reduced(&self, d: &mut [f64], y_buf: &mut [f64]) {
        for (r, yv) in y_buf.iter_mut().enumerate() {
            *yv = self.costs[self.basis[r] as usize];
        }
        self.btran(y_buf);
        for (j, dj) in d.iter_mut().enumerate() {
            *dj = if self.status[j] == ColStatus::Basic {
                0.0
            } else {
                self.costs[j] - self.col_dot(j, y_buf)
            };
        }
    }

    /// Bounded-variable dual simplex: starting from a dual-feasible basis
    /// whose basic values may violate their (tightened) bounds, drives the
    /// violations out while preserving dual feasibility. `d` holds the
    /// current reduced costs and is maintained incrementally from the pivot
    /// row, with a full recompute at every re-inversion.
    fn dual(&mut self, d: &mut [f64], opts: &SimplexOpts) -> Result<DualEnd, SimplexStop> {
        let mut stalled: u32 = 0;
        let mut rho = WorkVec::new(self.m);
        let mut w = WorkVec::new(self.m);
        let mut fb = WorkVec::new(self.m);
        let mut sweep = Sweep::new(self.n);
        let mut y = vec![0.0f64; self.m];
        let mut alphas: Vec<(u32, f64)> = Vec::new();
        // Eligible breakpoints of the long-step ratio test: (ratio, j, α).
        let mut bps: Vec<(f64, u32, f64)> = Vec::new();
        let mut flips: Vec<u32> = Vec::new();
        loop {
            self.check_limits(opts)?;
            let bland = opts.force_bland || stalled >= STALL_LIMIT;
            let devex = !bland && opts.pricing == Pricing::Devex;

            // --- Leaving row: the worst primal bound violation (smallest
            // violating row index under the anti-cycling rule). Devex
            // divides the squared violation by the row's reference weight.
            let mut r_sel: Option<(usize, bool, f64)> = None; // (row, above upper?, viol)
            let mut worst = FEAS_TOL;
            let mut best_ratio = 0.0f64;
            for (r, &bc) in self.basis.iter().enumerate() {
                let b = bc as usize;
                let x = self.val[b];
                let over = x - self.ub[b];
                let under = self.lb[b] - x;
                let (viol, above) = if over >= under {
                    (over, true)
                } else {
                    (under, false)
                };
                if viol <= FEAS_TOL {
                    continue;
                }
                if bland {
                    r_sel = Some((r, above, viol));
                    break;
                }
                if devex {
                    let ratio = viol * viol / self.dual_w[r];
                    if ratio > best_ratio {
                        best_ratio = ratio;
                        r_sel = Some((r, above, viol));
                    }
                } else if viol > worst {
                    worst = viol;
                    r_sel = Some((r, above, viol));
                }
            }
            let Some((r, above, viol)) = r_sel else {
                return Ok(DualEnd::PrimalFeasible);
            };
            self.iterations += 1;

            // --- ρ = B⁻ᵀ·e_r, the r-th row of B⁻¹; α_j = ρ·a_j, via a
            // row sweep over ρ's pattern when it stayed sparse (the dual
            // runs artificial-free, so every column is in `p.rows`), or a
            // dot product against every nonbasic column otherwise.
            rho.clear();
            rho.add(r, 1.0);
            self.btran_sparse(&mut rho);
            alphas.clear();
            if !rho.dense && self.art_row.is_empty() {
                sweep.clear();
                for i in rho.pattern() {
                    let rv = rho.vals[i];
                    if rv != 0.0 {
                        for &(c, a) in &self.p.rows[i] {
                            sweep.add(c as usize, a * rv);
                        }
                    }
                }
                for &c in &sweep.idx {
                    let j = c as usize;
                    if self.status[j] == ColStatus::Basic || self.lb[j] == self.ub[j] {
                        continue;
                    }
                    let a = sweep.acc[j];
                    if a.abs() > PIVOT_TOL {
                        alphas.push((c, a));
                    }
                }
                // Row-sweep order follows the scatter; the ratio test
                // below is order-independent, but Bland's first-eligible
                // rule is not — sort to keep it deterministic.
                if bland {
                    alphas.sort_unstable_by_key(|&(j, _)| j);
                }
            } else {
                for j in 0..self.n {
                    if self.status[j] == ColStatus::Basic || self.lb[j] == self.ub[j] {
                        continue;
                    }
                    let a = self.col_dot(j, &rho.vals);
                    if a.abs() > PIVOT_TOL {
                        alphas.push((j as u32, a));
                    }
                }
            }

            // --- Dual ratio test. The classic (Bland) test picks the
            // tightest breakpoint; the long-step variant walks the sorted
            // breakpoints and *flips* every boxed column it passes, so one
            // pivot can cross many degenerate breakpoints at once
            // (bound-flipping ratio test). The violation shrinks by
            // |α|·(ub−lb) per flip; we stop at the breakpoint where it
            // would go nonpositive, or at any infinite-range column.
            flips.clear();
            let mut q_sel: Option<usize> = None;
            if bland {
                for &(ju, a) in &alphas {
                    let j = ju as usize;
                    let eligible = match (above, self.status[j]) {
                        (true, ColStatus::AtLower) => a > 0.0,
                        (true, ColStatus::AtUpper) => a < 0.0,
                        (false, ColStatus::AtLower) => a < 0.0,
                        (false, ColStatus::AtUpper) => a > 0.0,
                        (_, ColStatus::Basic) => unreachable!(),
                    };
                    if eligible {
                        q_sel = Some(j);
                        break;
                    }
                }
            } else {
                bps.clear();
                for &(ju, a) in &alphas {
                    let j = ju as usize;
                    let eligible = match (above, self.status[j]) {
                        (true, ColStatus::AtLower) => a > 0.0,
                        (true, ColStatus::AtUpper) => a < 0.0,
                        (false, ColStatus::AtLower) => a < 0.0,
                        (false, ColStatus::AtUpper) => a > 0.0,
                        (_, ColStatus::Basic) => unreachable!(),
                    };
                    if eligible {
                        bps.push((d[j].abs() / a.abs(), ju, a));
                    }
                }
                // Ascending ratio; near-ties toward the larger pivot
                // magnitude for stability (matches the old tie-break).
                bps.sort_unstable_by(|x, z| {
                    x.0.total_cmp(&z.0).then(z.2.abs().total_cmp(&x.2.abs()))
                });
                let mut slope = viol;
                for &(_, ju, a) in &bps {
                    let j = ju as usize;
                    let range = self.ub[j] - self.lb[j];
                    let drop = a.abs() * range;
                    if !range.is_finite() || slope - drop <= FEAS_TOL {
                        q_sel = Some(j);
                        break;
                    }
                    flips.push(ju);
                    slope -= drop;
                }
            }
            let Some(q) = q_sel else {
                // Dual unbounded ⇒ primal infeasible: no entering column
                // can repair the violated bound (passing every finite
                // breakpoint leaves the violation positive). Flips are
                // *not* applied on this path.
                return Ok(DualEnd::Infeasible);
            };

            // --- Apply the bound flips first: each passed column jumps to
            // its opposite bound, and the basics absorb −B⁻¹·A·Δx_N in one
            // accumulated FTRAN.
            if !flips.is_empty() {
                fb.clear();
                for &ju in &flips {
                    let j = ju as usize;
                    let (target, st) = match self.status[j] {
                        ColStatus::AtLower => (self.ub[j], ColStatus::AtUpper),
                        ColStatus::AtUpper => (self.lb[j], ColStatus::AtLower),
                        ColStatus::Basic => unreachable!(),
                    };
                    let delta = target - self.val[j];
                    if delta != 0.0 {
                        self.for_col(j, |i, a| fb.add(i, a * delta));
                    }
                    self.val[j] = target;
                    self.status[j] = st;
                }
                self.ftran_sparse(&mut fb);
                for i in fb.pattern() {
                    let v = fb.vals[i];
                    if v != 0.0 {
                        let bi = self.basis[i] as usize;
                        self.val[bi] -= v;
                    }
                }
                stalled = 0;
            }

            // --- w = B⁻¹·a_q; pivot on w[r].
            w.clear();
            self.for_col(q, |i, a| w.add(i, a));
            self.ftran_sparse(&mut w);
            let piv = w.vals[r];
            if piv.abs() <= PIVOT_TOL {
                // ρ-based α and the FTRAN column disagree: numerical
                // breakdown, bail out to the primal fallback.
                return Err(SimplexStop::Singular(
                    "dual pivot vanished under FTRAN".into(),
                ));
            }
            let b = self.basis[r] as usize;
            let target = if above { self.ub[b] } else { self.lb[b] };
            let step = (self.val[b] - target) / piv; // signed move of q
            if step.abs() <= 1e-10 && flips.is_empty() {
                stalled += 1;
            } else {
                stalled = 0;
            }

            // --- Apply: basics move by −w·step, q moves by +step, the
            // leaving column lands exactly on its violated bound.
            for i in w.pattern() {
                let wi = w.vals[i];
                if wi != 0.0 {
                    let bi = self.basis[i] as usize;
                    self.val[bi] -= wi * step;
                }
            }
            self.val[q] += step;
            self.val[b] = target;
            self.status[b] = if above {
                ColStatus::AtUpper
            } else {
                ColStatus::AtLower
            };
            self.status[q] = ColStatus::Basic;

            // --- Dual update from the pivot row: d ← d − θ·α, θ = d_q/α_q.
            // Columns flipped above sit at their new bound with the sign
            // of d_j − θ·α_j, which is exactly what their new status
            // requires (they were passed because θ exceeds their ratio).
            let theta = d[q] / piv;
            for &(j, a) in &alphas {
                d[j as usize] -= theta * a;
            }
            d[b] = -theta;
            d[q] = 0.0;

            // --- Devex row-weight update: essentially free, because the
            // FTRAN'd entering column `w` is already in hand.
            if devex {
                let wr = self.dual_w[r].max(1.0);
                for i in w.pattern() {
                    let wi = w.vals[i];
                    if i != r && wi != 0.0 {
                        let cand = ((wi / piv) * (wi / piv) * wr).min(DEVEX_MAX);
                        if cand > self.dual_w[i] {
                            self.dual_w[i] = cand;
                        }
                    }
                }
                self.dual_w[r] = (wr / (piv * piv)).clamp(1.0, DEVEX_MAX);
            }

            self.push_eta(r, &w);
            self.basis[r] = q as u32;
            if self.etas.len() >= self.m + REFACTOR_PERIOD {
                self.refactorize().map_err(SimplexStop::Singular)?;
                self.compute_basics();
                self.recompute_reduced(d, &mut y);
            }
        }
    }

    /// The final basis, if it can seed a future warm restart (no
    /// artificial column basic).
    fn snapshot(&self) -> Option<Basis> {
        let n0 = self.p.num_cols;
        if self.basis.iter().any(|&c| (c as usize) >= n0) {
            return None;
        }
        Some(Basis {
            cols: self.basis.clone(),
            status: self.status[..n0].to_vec(),
        })
    }

    /// Extracts the optimal result (structural values + objective).
    fn optimal_result(&self) -> LpResult {
        let x: Vec<f64> = self.val[..self.p.num_structural].to_vec();
        let obj = x
            .iter()
            .zip(self.p.costs.iter())
            .map(|(v, c)| v * c)
            .sum::<f64>();
        LpResult {
            outcome: LpOutcome::Optimal { x, obj },
            iterations: self.iterations,
            refactors: self.refactors,
            first_factor_us: self.first_factor_us,
            kernel: self.kernel,
            basis: self.snapshot(),
        }
    }

    /// A non-optimal result carrying the work counters.
    fn ended(&self, outcome: LpOutcome) -> LpResult {
        LpResult {
            outcome,
            iterations: self.iterations,
            refactors: self.refactors,
            first_factor_us: self.first_factor_us,
            kernel: self.kernel,
            basis: None,
        }
    }
}

/// Solves a standardized LP under its own bounds.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn solve_lp(p: &LpProblem, opts: &SimplexOpts) -> Result<LpResult, LpError> {
    solve_lp_from(p, &p.lb, &p.ub, opts)
}

/// Solves `p` under override bounds `lb`/`ub` (same length as
/// `p.num_cols`). Branch-and-bound nodes call this with their tightened
/// per-node bounds, avoiding a full problem clone per node.
pub(crate) fn solve_lp_from(
    p: &LpProblem,
    lb: &[f64],
    ub: &[f64],
    opts: &SimplexOpts,
) -> Result<LpResult, LpError> {
    let m = p.rows.len();
    let n = p.num_cols;

    // Trivial case: no constraints — put every column at its cheapest bound.
    if m == 0 {
        let mut x = vec![0.0; p.num_structural];
        let mut obj = 0.0;
        for (j, xj) in x.iter_mut().enumerate() {
            let c = p.costs[j];
            let v = if c > 0.0 {
                lb[j]
            } else if c < 0.0 {
                ub[j]
            } else if lb[j].is_finite() {
                lb[j]
            } else {
                ub[j].min(0.0)
            };
            if !v.is_finite() && c != 0.0 {
                return Ok(LpResult {
                    outcome: LpOutcome::Unbounded,
                    iterations: 0,
                    refactors: 0,
                    first_factor_us: 0,
                    kernel: KernelStats::default(),
                    basis: None,
                });
            }
            let v = if v.is_finite() { v } else { 0.0 };
            *xj = v;
            obj += c * v;
        }
        return Ok(LpResult {
            outcome: LpOutcome::Optimal { x, obj },
            iterations: 0,
            refactors: 0,
            first_factor_us: 0,
            kernel: KernelStats::default(),
            basis: None,
        });
    }

    for &c in &p.costs {
        if !c.is_finite() {
            return Err(LpError::Numerical("non-finite cost coefficient".into()));
        }
    }

    // --- Initial point: structural columns at a finite bound.
    let mut val = vec![0.0; n];
    let mut status = vec![ColStatus::AtLower; n];
    for j in 0..n {
        if lb[j].is_finite() {
            val[j] = lb[j];
            status[j] = ColStatus::AtLower;
        } else if ub[j].is_finite() {
            val[j] = ub[j];
            status[j] = ColStatus::AtUpper;
        } else {
            // Free column: model it nonbasic at 0 by treating it as at a
            // phantom lower bound; it may enter the basis and then behaves
            // normally. (Free columns never leave the basis afterwards
            // because the ratio test skips infinite bounds.)
            val[j] = 0.0;
            status[j] = ColStatus::AtLower;
        }
    }

    // Residual per row given the nonbasic point (slacks included in rows).
    // We decide per row whether the slack can be basic (residual within its
    // bounds) or whether an artificial column is needed.
    let mut art_row: Vec<u32> = Vec::new();
    let mut art_sign: Vec<f64> = Vec::new();
    let mut basis: Vec<u32> = Vec::with_capacity(m);
    let slack_col = |r: usize| p.num_structural + r;

    let mut residuals = vec![0.0; m];
    for (r, res) in residuals.iter_mut().enumerate() {
        let mut acc = p.rhs[r];
        for &(c, a) in &p.rows[r] {
            let c = c as usize;
            if c != slack_col(r) {
                acc -= a * val[c];
            }
        }
        // Row is: slack_coeff · s = acc (slack coefficient is 1.0 by
        // construction in `standardize`).
        *res = acc;
    }

    let mut art_vals: Vec<f64> = Vec::new();
    for (r, &v) in residuals.iter().enumerate() {
        let s = slack_col(r);
        if v >= lb[s] - FEAS_TOL && v <= ub[s] + FEAS_TOL {
            // Slack absorbs the residual and is basic.
            val[s] = v;
            status[s] = ColStatus::Basic;
            basis.push(s as u32);
        } else {
            // Slack parks at its nearest bound; an artificial column with
            // coefficient sign(gap) covers the rest at value |gap| ≥ 0.
            let sb = if v < lb[s] { lb[s] } else { ub[s] };
            val[s] = sb;
            status[s] = if sb == lb[s] {
                ColStatus::AtLower
            } else {
                ColStatus::AtUpper
            };
            let gap = v - sb;
            let col = n + art_row.len();
            art_row.push(r as u32);
            art_sign.push(gap.signum());
            art_vals.push(gap.abs());
            basis.push(col as u32);
        }
    }

    let num_art = art_row.len();
    let total_cols = n + num_art;

    let mut full_lb = lb.to_vec();
    let mut full_ub = ub.to_vec();
    full_lb.resize(total_cols, 0.0);
    full_ub.resize(total_cols, f64::INFINITY);
    val.resize(total_cols, 0.0);
    status.resize(total_cols, ColStatus::AtLower);
    for (k, &av) in art_vals.iter().enumerate() {
        val[n + k] = av;
        status[n + k] = ColStatus::Basic;
    }

    let mut phase1_costs = vec![0.0; total_cols];
    for c in phase1_costs.iter_mut().skip(n) {
        *c = 1.0;
    }

    let mut core = Core {
        p,
        m,
        n: total_cols,
        art_row,
        art_sign,
        costs: if num_art > 0 {
            phase1_costs
        } else {
            let mut c = p.costs.clone();
            c.resize(total_cols, 0.0);
            c
        },
        lb: full_lb,
        ub: full_ub,
        basis,
        status,
        val,
        etas: Vec::new(),
        etas_base: 0,
        iterations: 0,
        refactors: 0,
        devex_w: vec![1.0; total_cols],
        dual_w: vec![1.0; m],
        first_factor_us: 0,
        row_eta: Vec::new(),
        fire_heap: std::collections::BinaryHeap::new(),
        fire_queued: vec![false; m],
        kernel: KernelStats::default(),
    };
    // The initial basis (slacks at +1, artificials at ±1) is diagonal;
    // re-inversion builds its trivial eta file and cannot fail.
    if let Err(msg) = core.refactorize() {
        return Err(LpError::Numerical(msg));
    }
    core.compute_basics();

    let map_stop = |stop: SimplexStop, core: &Core<'_>, phase: u32| match stop {
        SimplexStop::Unbounded => LpError::Numerical(format!(
            "phase-{phase} objective unbounded (internal error)"
        )),
        SimplexStop::IterationLimit => LpError::Numerical(format!(
            "simplex iteration limit {} hit in phase {phase}",
            opts.max_iters
        )),
        SimplexStop::Budget(reason) => LpError::Budget {
            reason,
            iterations: core.iterations,
        },
        SimplexStop::Singular(msg) => LpError::Numerical(msg),
    };

    // --- Phase 1.
    if num_art > 0 {
        match core.primal(opts) {
            Ok(()) => {}
            Err(SimplexStop::Unbounded) => {
                return Err(LpError::Numerical(
                    "phase-1 objective unbounded (internal error)".into(),
                ))
            }
            Err(stop) => return Err(map_stop(stop, &core, 1)),
        }
        let infeas: f64 = (n..total_cols).map(|j| core.val[j]).sum();
        if infeas > FEAS_TOL * 10.0 {
            return Ok(core.ended(LpOutcome::Infeasible));
        }
        // Pin artificials to zero so phase 2 cannot reuse them.
        for j in n..total_cols {
            core.lb[j] = 0.0;
            core.ub[j] = 0.0;
            if core.status[j] != ColStatus::Basic {
                core.status[j] = ColStatus::AtLower;
            }
            core.val[j] = 0.0; // basic at zero: harmless (degenerate)
        }
        // Swap in the true costs for phase 2.
        core.costs[..n].copy_from_slice(&p.costs);
        for c in core.costs.iter_mut().skip(n) {
            *c = 0.0;
        }
    }

    // --- Phase 2.
    match core.primal(opts) {
        Ok(()) => {}
        Err(SimplexStop::Unbounded) => return Ok(core.ended(LpOutcome::Unbounded)),
        Err(stop) => return Err(map_stop(stop, &core, 2)),
    }

    Ok(core.optimal_result())
}

/// Dual-simplex warm restart: reoptimizes `p` under tightened bounds
/// `lb`/`ub` starting from a cached `basis`.
///
/// Returns:
///
/// * `Ok(Some(result))` — the restart succeeded (optimal or proven
///   infeasible, the latter being the fast node-pruning path: a dual
///   unbounded ray is a primal infeasibility certificate);
/// * `Ok(None)` — the basis is stale (fails validation, singular under
///   re-inversion, dual infeasible under the new bounds, or the dual run
///   hit numerical/iteration trouble). The caller must fall back to the
///   from-scratch primal [`solve_lp_from`];
/// * `Err(LpError::Budget {..})` — the shared wall-clock budget fired;
///   iterations spent so far are in the payload.
pub(crate) fn resolve_lp(
    p: &LpProblem,
    lb: &[f64],
    ub: &[f64],
    basis: &Basis,
    opts: &SimplexOpts,
) -> Result<Option<LpResult>, LpError> {
    let m = p.rows.len();
    let n = p.num_cols;
    // Shape validation: the basis must cover every row with a distinct
    // in-range column, and statuses must agree with the basic set.
    if m == 0 || basis.cols.len() != m || basis.status.len() != n {
        return Ok(None);
    }
    let mut seen = vec![false; n];
    for &c in &basis.cols {
        let c = c as usize;
        if c >= n || seen[c] || basis.status[c] != ColStatus::Basic {
            return Ok(None);
        }
        seen[c] = true;
    }
    if basis
        .status
        .iter()
        .filter(|&&s| s == ColStatus::Basic)
        .count()
        != m
    {
        return Ok(None);
    }

    // Nonbasic columns snap to their (new) bound per recorded status; the
    // free-column phantom-zero convention matches `solve_lp_from`.
    let mut val = vec![0.0f64; n];
    for (j, &st) in basis.status.iter().enumerate() {
        val[j] = match st {
            ColStatus::Basic => 0.0, // recomputed below
            ColStatus::AtLower => {
                if lb[j].is_finite() {
                    lb[j]
                } else {
                    0.0
                }
            }
            ColStatus::AtUpper => {
                if ub[j].is_finite() {
                    ub[j]
                } else {
                    return Ok(None); // nonsense status for an unbounded column
                }
            }
        };
    }

    let mut core = Core {
        p,
        m,
        n,
        art_row: Vec::new(),
        art_sign: Vec::new(),
        costs: p.costs.clone(),
        lb: lb.to_vec(),
        ub: ub.to_vec(),
        basis: basis.cols.clone(),
        status: basis.status.clone(),
        val,
        etas: Vec::new(),
        etas_base: 0,
        iterations: 0,
        refactors: 0,
        devex_w: vec![1.0; n],
        dual_w: vec![1.0; m],
        first_factor_us: 0,
        row_eta: Vec::new(),
        fire_heap: std::collections::BinaryHeap::new(),
        fire_queued: vec![false; m],
        kernel: KernelStats::default(),
    };
    if core.refactorize().is_err() {
        return Ok(None); // singular cached basis
    }
    core.compute_basics();

    // Dual feasibility check: the cached reduced-cost signs must survive
    // under the (unchanged) costs. Violations mean the basis predates some
    // structural change and a primal solve is required.
    let mut d = vec![0.0f64; n];
    let mut y = vec![0.0f64; core.m];
    core.recompute_reduced(&mut d, &mut y);
    let dual_tol = OPT_TOL * opts.tol_scale.max(1.0) * 10.0;
    for (j, &dj) in d.iter().enumerate() {
        if core.lb[j] == core.ub[j] {
            continue; // fixed columns carry no dual requirement
        }
        let bad = match core.status[j] {
            ColStatus::Basic => false,
            ColStatus::AtLower => dj < -dual_tol,
            ColStatus::AtUpper => dj > dual_tol,
        };
        if bad {
            return Ok(None);
        }
    }

    match core.dual(&mut d, opts) {
        Ok(DualEnd::PrimalFeasible) => {}
        Ok(DualEnd::Infeasible) => return Ok(Some(core.ended(LpOutcome::Infeasible))),
        Err(SimplexStop::Budget(reason)) => {
            return Err(LpError::Budget {
                reason,
                iterations: core.iterations,
            })
        }
        // Iteration cap or numerical breakdown inside the dual run: report
        // a miss; the fallback primal has its own (full) iteration budget.
        Err(SimplexStop::IterationLimit) | Err(SimplexStop::Singular(_)) => return Ok(None),
        Err(SimplexStop::Unbounded) => return Ok(None), // cannot happen in dual
    }

    // Cleanup: the dual run ends primal feasible and (up to drift) dual
    // feasible; a primal pass certifies optimality, usually in 0 pivots.
    match core.primal(opts) {
        Ok(()) => Ok(Some(core.optimal_result())),
        Err(SimplexStop::Unbounded) => Ok(Some(core.ended(LpOutcome::Unbounded))),
        Err(SimplexStop::Budget(reason)) => Err(LpError::Budget {
            reason,
            iterations: core.iterations,
        }),
        Err(SimplexStop::IterationLimit) | Err(SimplexStop::Singular(_)) => Ok(None),
    }
}

// --- Root cutting planes ------------------------------------------------
//
// Cuts separated at the root of the branch-and-bound tree. Both families
// below are derived from *globally valid* bounds, so they hold for every
// integer-feasible point of the model and may stay in the LP for the
// whole tree. Cuts are expressed over the existing columns in `≤` form
// and appended via [`with_cut_rows`], which preserves the
// slack-of-row-`r`-is-column-`num_structural + r` invariant that
// `solve_lp_from` relies on.

/// One cut row `Σ aⱼ·xⱼ ≤ rhs` over *structural* columns only, before its
/// own slack column is appended. Keeping cuts slack-free preserves the
/// "each row touches only structural columns plus its own slack"
/// invariant that `solve_lp`'s crash-basis construction relies on.
pub(crate) type CutRow = (Vec<(u32, f64)>, f64);

/// Largest cut coefficient magnitude accepted; anything wilder is a sign
/// of numerical trouble in the tableau row and the cut is discarded.
const CUT_COEF_MAX: f64 = 1e8;
/// A basic integer column must be at least this fractional for its
/// tableau row to seed a Gomory cut.
const GOMORY_MIN_FRAC: f64 = 0.01;
/// Minimum violation (in the shifted space) for a cut to be kept.
const CUT_MIN_VIOLATION: f64 = 1e-4;

/// Returns `p` extended with `cuts` as new `≤` rows, each with a fresh
/// slack column `s ∈ [0, ∞)` appended after the existing columns.
/// Existing column indices are untouched, and because every problem built
/// by `standardize` (or this function) has exactly one slack per row, the
/// new slack of cut `k` lands at column `num_structural + num_rows + k` —
/// keeping the `slack_col(r) = num_structural + r` invariant intact.
pub(crate) fn with_cut_rows(p: &LpProblem, cuts: &[CutRow]) -> LpProblem {
    debug_assert_eq!(p.num_cols, p.num_structural + p.rows.len());
    debug_assert!(
        cuts.iter()
            .all(|(coefs, _)| coefs.iter().all(|&(j, _)| (j as usize) < p.num_structural)),
        "cut rows must reference structural columns only"
    );
    let mut costs = p.costs.clone();
    let mut lb = p.lb.clone();
    let mut ub = p.ub.clone();
    let mut rows = p.rows.clone();
    let mut rhs = p.rhs.clone();
    costs.reserve(cuts.len());
    for (k, (coefs, b)) in cuts.iter().enumerate() {
        let slack = (p.num_cols + k) as u32;
        let mut row = coefs.clone();
        row.push((slack, 1.0));
        rows.push(row);
        rhs.push(*b);
        costs.push(0.0);
        lb.push(0.0);
        ub.push(f64::INFINITY);
    }
    let mut aug = LpProblem::new(p.num_structural, costs, lb, ub, rows, rhs);
    // Cut rows join *unscaled*, even when the base matrix was equilibrated.
    // Gomory rows routinely carry geomeans orders of magnitude from 1;
    // rescaling them by the matching power of two amplifies their roundoff
    // relative to the absolute pivot/feasibility tolerances, and measured
    // ~1.5× slower warm restarts on the cut-augmented CT models. The stats
    // carry over so the root profile still reports the base-matrix scaling.
    aug.scaling = p.scaling;
    aug
}

impl Basis {
    /// Extends an optimal basis of the pre-cut problem to the cut-augmented
    /// one: each appended slack column (starting at `first_new_col`) goes
    /// basic in its own row. The extended basis matrix is block triangular
    /// (old basis + identity block), hence nonsingular, and the zero-cost
    /// slacks keep the reduced costs — and thus dual feasibility — intact,
    /// so [`resolve_lp`] can reoptimize it with dual pivots.
    pub(crate) fn extended_with_cut_slacks(&self, first_new_col: usize, k: usize) -> Basis {
        let mut cols = self.cols.clone();
        let mut status = self.status.clone();
        cols.reserve(k);
        status.reserve(k);
        for i in 0..k {
            cols.push((first_new_col + i) as u32);
            status.push(ColStatus::Basic);
        }
        Basis { cols, status }
    }
}

/// Separates Gomory mixed-integer cuts from an optimal `basis` of `p`
/// under (globally valid) bounds `lb`/`ub`. `col_is_int[j]` flags the
/// integer structural columns. Returns up to `max_cuts` cuts in `≤` form,
/// each violated by the basic solution the basis encodes; every cut is
/// valid for all integer-feasible points under the given bounds, so
/// root-derived cuts hold tree-wide.
pub(crate) fn gomory_cuts(
    p: &LpProblem,
    lb: &[f64],
    ub: &[f64],
    basis: &Basis,
    col_is_int: &[bool],
    max_cuts: usize,
) -> Vec<CutRow> {
    let m = p.rows.len();
    let n = p.num_cols;
    if m == 0 || max_cuts == 0 || basis.cols.len() != m || basis.status.len() != n {
        return Vec::new();
    }
    let mut val = vec![0.0f64; n];
    for (j, &st) in basis.status.iter().enumerate() {
        val[j] = match st {
            ColStatus::Basic => 0.0,
            ColStatus::AtLower => {
                if lb[j].is_finite() {
                    lb[j]
                } else {
                    0.0
                }
            }
            ColStatus::AtUpper => {
                if ub[j].is_finite() {
                    ub[j]
                } else {
                    return Vec::new();
                }
            }
        };
    }
    let mut core = Core {
        p,
        m,
        n,
        art_row: Vec::new(),
        art_sign: Vec::new(),
        costs: p.costs.clone(),
        lb: lb.to_vec(),
        ub: ub.to_vec(),
        basis: basis.cols.clone(),
        status: basis.status.clone(),
        val,
        etas: Vec::new(),
        etas_base: 0,
        iterations: 0,
        refactors: 0,
        devex_w: vec![1.0; n],
        dual_w: vec![1.0; m],
        first_factor_us: 0,
        row_eta: Vec::new(),
        fire_heap: std::collections::BinaryHeap::new(),
        fire_queued: vec![false; m],
        kernel: KernelStats::default(),
    };
    if core.refactorize().is_err() {
        return Vec::new();
    }
    core.compute_basics();

    // Candidate rows: basic structural integer columns at a usefully
    // fractional value, most fractional first.
    let mut cand: Vec<(usize, f64)> = Vec::new();
    for (r, &bc) in core.basis.iter().enumerate() {
        let b = bc as usize;
        if b >= p.num_structural || !col_is_int[b] {
            continue;
        }
        let x = core.val[b];
        let f0 = x - x.floor();
        let dist = f0.min(1.0 - f0);
        if dist >= GOMORY_MIN_FRAC {
            cand.push((r, dist));
        }
    }
    cand.sort_by(|a, b| b.1.total_cmp(&a.1));
    cand.truncate(max_cuts);

    let mut rho = vec![0.0f64; m];
    let mut cuts: Vec<CutRow> = Vec::new();
    'rows: for &(r, _) in &cand {
        for v in rho.iter_mut() {
            *v = 0.0;
        }
        rho[r] = 1.0;
        core.btran(&mut rho);
        let xb = core.val[core.basis[r] as usize];
        let f0 = xb - xb.floor();
        if !(GOMORY_MIN_FRAC..=1.0 - GOMORY_MIN_FRAC).contains(&f0) {
            continue;
        }
        // The tableau row reads x_B(r) + Σ_nonbasic ᾱ_j·x_j = β. Shift
        // every nonbasic column onto its bound (x̃_j ≥ 0), apply the GMI
        // formula in the shifted space (integer columns get the mixed
        // strengthening, everything else the continuous term), then map
        // back and flip to `≤` form.
        let mut coefs: Vec<(u32, f64)> = Vec::new();
        let mut rhs = -f0; // accumulates relax − f0 − Σγl + Σγu (≤ form)
                           // `col_is_int` covers structural columns only (guarded below), so
                           // iterating it instead of the index range would stop short of the
                           // slack columns.
        #[allow(clippy::needless_range_loop)]
        for j in 0..n {
            if core.status[j] == ColStatus::Basic || core.lb[j] == core.ub[j] {
                continue;
            }
            let alpha = core.col_dot(j, &rho);
            if alpha.abs() <= 1e-11 {
                continue;
            }
            let at_upper = core.status[j] == ColStatus::AtUpper;
            let bound = if at_upper { core.ub[j] } else { core.lb[j] };
            if !bound.is_finite() {
                continue 'rows; // free phantom column: no valid shift
            }
            let a = if at_upper { -alpha } else { alpha };
            let gamma = if j < p.num_structural && col_is_int[j] {
                let fj = a - a.floor();
                fj.min(f0 * (1.0 - fj) / (1.0 - f0))
            } else if a >= 0.0 {
                a
            } else {
                f0 * (-a) / (1.0 - f0)
            };
            if !gamma.is_finite() || gamma > CUT_COEF_MAX {
                continue 'rows;
            }
            if gamma <= 1e-12 {
                // Dropping a γ·x̃ term from the `≥` left-hand side needs a
                // compensating rhs relaxation of γ·(range); with an
                // infinite range the term must stay.
                let range = core.ub[j] - core.lb[j];
                if range.is_finite() {
                    rhs += gamma * range;
                    continue;
                }
            }
            if at_upper {
                coefs.push((j as u32, gamma));
                rhs += gamma * bound;
            } else {
                coefs.push((j as u32, -gamma));
                rhs -= gamma * bound;
            }
        }
        // The current point has every x̃_j at 0, so the cut is violated by
        // f0 minus any rhs relaxation. Substitute slack columns away (the
        // row equations hold with equality everywhere, so this is exact),
        // then recompute the violation in structural space as a final
        // numerical sanity check.
        if coefs.is_empty() {
            continue;
        }
        let (coefs, rhs) = expand_to_structural(p, &coefs, rhs);
        if coefs.is_empty() || coefs.iter().any(|&(_, c)| c.abs() > CUT_COEF_MAX) {
            continue;
        }
        let lhs: f64 = coefs.iter().map(|&(j, c)| c * core.val[j as usize]).sum();
        if lhs - rhs < CUT_MIN_VIOLATION {
            continue;
        }
        cuts.push((coefs, rhs));
    }
    cuts
}

/// Rewrites a `Σ cⱼ·xⱼ ≤ rhs` row over arbitrary problem columns into an
/// equivalent one over structural columns only, by substituting each slack
/// via its defining row (`s_r = rhs_r − Σ aⱼ·xⱼ`). Every row references
/// only columns with smaller indices than its own slack, so one backward
/// sweep over the slack columns eliminates them all.
fn expand_to_structural(
    p: &LpProblem,
    coefs: &[(u32, f64)],
    mut rhs: f64,
) -> (Vec<(u32, f64)>, f64) {
    let ns = p.num_structural;
    let mut acc = vec![0.0f64; p.num_cols];
    for &(j, c) in coefs {
        acc[j as usize] += c;
    }
    for j in (ns..p.num_cols).rev() {
        let c = acc[j];
        if c == 0.0 {
            continue;
        }
        acc[j] = 0.0;
        let r = j - ns;
        rhs -= c * p.rhs[r];
        for &(cc, a) in &p.rows[r] {
            if cc as usize != j {
                acc[cc as usize] -= c * a;
            }
        }
    }
    let out: Vec<(u32, f64)> = acc
        .iter()
        .take(ns)
        .enumerate()
        .filter(|&(_, &v)| v.abs() > 1e-12)
        .map(|(j, &v)| (j as u32, v))
        .collect();
    (out, rhs)
}

/// Separates knapsack cover cuts: for every pure-binary `≤` row
/// `Σ aⱼxⱼ ≤ b` (all structural coefficients positive, all structural
/// columns binary), a greedy minimal cover `C` with `Σ_C aⱼ > b` yields
/// the valid cut `Σ_C xⱼ ≤ |C| − 1`; it is kept when the LP point `x`
/// (structural values) violates it.
pub(crate) fn cover_cuts(
    p: &LpProblem,
    lb: &[f64],
    ub: &[f64],
    x: &[f64],
    col_is_int: &[bool],
    max_cuts: usize,
) -> Vec<CutRow> {
    let mut out: Vec<CutRow> = Vec::new();
    for (r, row) in p.rows.iter().enumerate() {
        if out.len() >= max_cuts {
            break;
        }
        let slack = p.num_structural + r;
        // Only `≤` rows: slack ∈ [0, ∞).
        if lb[slack] != 0.0 || ub[slack].is_finite() {
            continue;
        }
        let b = p.rhs[r];
        if !b.is_finite() || b <= 0.0 {
            continue;
        }
        let mut items: Vec<(u32, f64)> = Vec::new();
        let mut ok = true;
        for &(c, a) in row {
            let cu = c as usize;
            if cu == slack {
                continue;
            }
            if cu >= p.num_structural
                || !col_is_int[cu]
                || lb[cu] < -FEAS_TOL
                || ub[cu] > 1.0 + FEAS_TOL
                || a <= 0.0
            {
                ok = false;
                break;
            }
            items.push((c, a));
        }
        if !ok || items.len() < 2 {
            continue;
        }
        // Greedy cover: cheapest (1 − x̄)/a first, until the weights
        // overflow the capacity.
        items.sort_by(|i, j| {
            let ci = (1.0 - x[i.0 as usize]).max(0.0) / i.1;
            let cj = (1.0 - x[j.0 as usize]).max(0.0) / j.1;
            ci.total_cmp(&cj)
        });
        let mut wsum = 0.0;
        let mut slackness = 0.0;
        let mut cover: Vec<u32> = Vec::new();
        for &(c, a) in &items {
            cover.push(c);
            wsum += a;
            slackness += (1.0 - x[c as usize]).max(0.0);
            if wsum > b + FEAS_TOL {
                break;
            }
        }
        if wsum <= b + FEAS_TOL {
            continue; // the whole row fits: no cover exists
        }
        // Cut Σ_C x ≤ |C|−1 is violated iff Σ_C (1 − x̄) < 1.
        if slackness >= 1.0 - CUT_MIN_VIOLATION {
            continue;
        }
        let coefs: Vec<(u32, f64)> = cover.iter().map(|&c| (c, 1.0)).collect();
        out.push((coefs, cover.len() as f64 - 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The one place tests build `SimplexOpts`: a plain iteration cap,
    /// generous enough for every instance in this module.
    fn topts() -> SimplexOpts {
        SimplexOpts::with_max_iters(100_000)
    }

    /// Builds an LpProblem from dense rows `a·x cmp rhs` with structural
    /// bounds; mirrors what `branch::standardize` does.
    fn lp(
        costs: Vec<f64>,
        bounds: Vec<(f64, f64)>,
        cons: Vec<(Vec<f64>, i8, f64)>, // -1: <=, 0: =, 1: >=
    ) -> LpProblem {
        let ns = costs.len();
        let m = cons.len();
        let mut lb: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let mut ub: Vec<f64> = bounds.iter().map(|b| b.1).collect();
        let mut rows = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for (r, (a, cmp, b)) in cons.into_iter().enumerate() {
            let mut row: Vec<(u32, f64)> = a
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(j, &v)| (j as u32, v))
                .collect();
            row.push(((ns + r) as u32, 1.0));
            match cmp {
                -1 => {
                    lb.push(0.0);
                    ub.push(f64::INFINITY);
                }
                1 => {
                    lb.push(f64::NEG_INFINITY);
                    ub.push(0.0);
                }
                _ => {
                    lb.push(0.0);
                    ub.push(0.0);
                }
            }
            rows.push(row);
            rhs.push(b);
        }
        let mut costs = costs;
        costs.resize(ns + m, 0.0);
        LpProblem::new(ns, costs, lb, ub, rows, rhs)
    }

    fn solve(p: &LpProblem) -> LpOutcome {
        solve_lp(p, &topts()).expect("numerical failure").outcome
    }

    #[test]
    fn exhausted_budget_stops_the_solve() {
        let p = lp(
            vec![-3.0, -2.0],
            vec![(0.0, f64::INFINITY), (0.0, f64::INFINITY)],
            vec![(vec![1.0, 1.0], -1, 4.0), (vec![1.0, 3.0], -1, 6.0)],
        );
        let opts = SimplexOpts {
            budget: Budget::with_limit(std::time::Duration::ZERO),
            ..SimplexOpts::default()
        };
        assert!(matches!(solve_lp(&p, &opts), Err(LpError::Budget { .. })));
    }

    #[test]
    fn forced_bland_reaches_the_same_optimum() {
        let p = lp(
            vec![-3.0, -2.0],
            vec![(0.0, f64::INFINITY), (0.0, f64::INFINITY)],
            vec![(vec![1.0, 1.0], -1, 4.0), (vec![1.0, 3.0], -1, 6.0)],
        );
        let opts = SimplexOpts {
            force_bland: true,
            tol_scale: 10.0,
            ..topts()
        };
        match solve_lp(&p, &opts).unwrap().outcome {
            LpOutcome::Optimal { obj, .. } => assert!((obj + 12.0).abs() < 1e-6),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn simple_2d_maximization_as_min() {
        // max 3x+2y s.t. x+y<=4, x+3y<=6, x,y>=0  -> min -3x-2y, opt at (4,0), obj 12.
        let p = lp(
            vec![-3.0, -2.0],
            vec![(0.0, f64::INFINITY), (0.0, f64::INFINITY)],
            vec![(vec![1.0, 1.0], -1, 4.0), (vec![1.0, 3.0], -1, 6.0)],
        );
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj + 12.0).abs() < 1e-6, "obj={obj}");
                assert!((x[0] - 4.0).abs() < 1e-6);
                assert!(x[1].abs() < 1e-6);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_constraints_need_phase1() {
        // min x+y s.t. x+y>=2, x-y=1 -> x=1.5, y=0.5, obj 2.
        let p = lp(
            vec![1.0, 1.0],
            vec![(0.0, f64::INFINITY), (0.0, f64::INFINITY)],
            vec![(vec![1.0, 1.0], 1, 2.0), (vec![1.0, -1.0], 0, 1.0)],
        );
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj - 2.0).abs() < 1e-6);
                assert!((x[0] - 1.5).abs() < 1e-6);
                assert!((x[1] - 0.5).abs() < 1e-6);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn detects_infeasibility() {
        // x <= 1 and x >= 2.
        let p = lp(
            vec![0.0],
            vec![(0.0, f64::INFINITY)],
            vec![(vec![1.0], -1, 1.0), (vec![1.0], 1, 2.0)],
        );
        assert!(matches!(solve(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unboundedness() {
        // min -x s.t. x >= 0 (no upper bound).
        let p = lp(
            vec![-1.0],
            vec![(0.0, f64::INFINITY)],
            vec![(vec![1.0], 1, 0.0)],
        );
        assert!(matches!(solve(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn respects_upper_bounds_via_bound_flip() {
        // min -x - y with x,y in [0, 3] and x + y <= 5: optimum (3, 2) or (2, 3).
        let p = lp(
            vec![-1.0, -1.0],
            vec![(0.0, 3.0), (0.0, 3.0)],
            vec![(vec![1.0, 1.0], -1, 5.0)],
        );
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj + 5.0).abs() < 1e-6);
                assert!(x[0] <= 3.0 + 1e-9 && x[1] <= 3.0 + 1e-9);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-ish / highly degenerate: several redundant constraints
        // through the origin.
        let p = lp(
            vec![-1.0, -1.0, -1.0],
            vec![
                (0.0, f64::INFINITY),
                (0.0, f64::INFINITY),
                (0.0, f64::INFINITY),
            ],
            vec![
                (vec![1.0, 0.0, 0.0], -1, 0.0),
                (vec![1.0, 1.0, 0.0], -1, 0.0),
                (vec![1.0, 1.0, 1.0], -1, 1.0),
                (vec![0.0, 1.0, 1.0], -1, 1.0),
                (vec![0.0, 0.0, 1.0], -1, 1.0),
            ],
        );
        match solve(&p) {
            LpOutcome::Optimal { obj, .. } => assert!((obj + 1.0).abs() < 1e-6),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x in [-5, 5], x >= -3  ->  x = -3.
        let p = lp(vec![1.0], vec![(-5.0, 5.0)], vec![(vec![1.0], 1, -3.0)]);
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj + 3.0).abs() < 1e-6);
                assert!((x[0] + 3.0).abs() < 1e-6);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn no_constraints_puts_vars_at_cheapest_bound() {
        let p = lp(vec![1.0, -1.0], vec![(0.0, 2.0), (0.0, 2.0)], vec![]);
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert_eq!(x, vec![0.0, 2.0]);
                assert_eq!(obj, -2.0);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn equality_with_bounded_vars() {
        // min 2x + 3y s.t. x + y = 10, x in [0,4], y in [0,20]  -> x=4, y=6, obj 26.
        let p = lp(
            vec![2.0, 3.0],
            vec![(0.0, 4.0), (0.0, 20.0)],
            vec![(vec![1.0, 1.0], 0, 10.0)],
        );
        match solve(&p) {
            LpOutcome::Optimal { x, obj } => {
                assert!((obj - 26.0).abs() < 1e-6);
                assert!((x[0] - 4.0).abs() < 1e-6);
                assert!((x[1] - 6.0).abs() < 1e-6);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn csc_matches_rows() {
        let p = lp(
            vec![1.0, 2.0, 0.0],
            vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)],
            vec![
                (vec![1.0, 0.0, 2.0], -1, 4.0),
                (vec![0.0, -1.0, 1.0], 0, 1.0),
            ],
        );
        // Reconstruct the dense matrix from both representations.
        let m = p.rows.len();
        let mut from_rows = vec![vec![0.0; p.num_cols]; m];
        for (r, row) in p.rows.iter().enumerate() {
            for &(c, a) in row {
                from_rows[r][c as usize] = a;
            }
        }
        let mut from_cols = vec![vec![0.0; p.num_cols]; m];
        #[allow(clippy::needless_range_loop)]
        for j in 0..p.num_cols {
            for (r, a) in p.cols.col(j) {
                from_cols[r][j] = a;
            }
        }
        assert_eq!(from_rows, from_cols);
        assert_eq!(p.nnz(), p.rows.iter().map(Vec::len).sum::<usize>());
    }

    /// Randomized cross-check: LPs whose optimum we can compute by brute
    /// force over basic feasible points of a transportation-like structure.
    #[test]
    fn random_lps_match_enumerated_vertices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..60 {
            // 2 vars, 3 random <= constraints with positive coefficients,
            // bounded box: optimum is at one of the O(25) intersection
            // points; enumerate them.
            let c = [rng.gen_range(-5.0..5.0f64), rng.gen_range(-5.0..5.0f64)];
            let mut cons = Vec::new();
            for _ in 0..3 {
                cons.push((
                    vec![rng.gen_range(0.1..3.0f64), rng.gen_range(0.1..3.0f64)],
                    -1i8,
                    rng.gen_range(1.0..8.0f64),
                ));
            }
            let p = lp(c.to_vec(), vec![(0.0, 6.0), (0.0, 6.0)], cons.clone());
            let LpOutcome::Optimal { obj, .. } = solve(&p) else {
                panic!("trial {trial}: expected optimal");
            };
            // Brute force: intersect all pairs of active boundaries.
            let mut lines: Vec<(f64, f64, f64)> = vec![
                (1.0, 0.0, 0.0),
                (0.0, 1.0, 0.0),
                (1.0, 0.0, 6.0),
                (0.0, 1.0, 6.0),
            ];
            for (a, _, b) in &cons {
                lines.push((a[0], a[1], *b));
            }
            let feasible = |x: f64, y: f64| {
                x >= -1e-9
                    && y >= -1e-9
                    && x <= 6.0 + 1e-9
                    && y <= 6.0 + 1e-9
                    && cons.iter().all(|(a, _, b)| a[0] * x + a[1] * y <= b + 1e-9)
            };
            let mut best = f64::INFINITY;
            for i in 0..lines.len() {
                for j in i + 1..lines.len() {
                    let (a1, b1, c1) = lines[i];
                    let (a2, b2, c2) = lines[j];
                    let det = a1 * b2 - a2 * b1;
                    if det.abs() < 1e-9 {
                        continue;
                    }
                    let x = (c1 * b2 - c2 * b1) / det;
                    let y = (a1 * c2 - a2 * c1) / det;
                    if feasible(x, y) {
                        best = best.min(c[0] * x + c[1] * y);
                    }
                }
            }
            assert!(
                (obj - best).abs() < 1e-5,
                "trial {trial}: simplex {obj} vs enumerated {best}"
            );
        }
    }

    // --- Basis-reuse / dual-simplex tests -----------------------------

    /// Solves, snapshots the basis, tightens one bound, and checks the
    /// dual restart against a from-scratch solve.
    fn check_restart_matches(p: &LpProblem, lb: Vec<f64>, ub: Vec<f64>) {
        let first = solve_lp(p, &topts()).expect("base solve");
        let Some(basis) = first.basis else {
            panic!("optimal solve must yield a reusable basis");
        };
        let scratch = solve_lp_from(p, &lb, &ub, &topts()).expect("scratch solve");
        let restart = resolve_lp(p, &lb, &ub, &basis, &topts()).expect("restart solve");
        match (restart, &scratch.outcome) {
            (Some(res), LpOutcome::Optimal { obj: want, .. }) => match res.outcome {
                LpOutcome::Optimal { obj, .. } => {
                    assert!(
                        (obj - want).abs() < FEAS_TOL,
                        "restart obj {obj} vs scratch {want}"
                    );
                    assert!(res.basis.is_some(), "restart must re-snapshot its basis");
                }
                other => panic!("restart disagreed with scratch Optimal: {other:?}"),
            },
            (Some(res), LpOutcome::Infeasible) => {
                assert!(
                    matches!(res.outcome, LpOutcome::Infeasible),
                    "restart must agree the tightened LP is infeasible"
                );
            }
            (None, _) => {
                // A fallback is always *allowed* (stale basis); correctness
                // is then the primal path's job, which `scratch` just took.
            }
            (Some(res), other) => panic!("scratch {other:?} vs restart {:?}", res.outcome),
        }
    }

    #[test]
    fn dual_restart_matches_scratch_after_each_single_tightening() {
        // The branching pattern B&B generates: one integer column clamped
        // up or down. Every column, both directions.
        let p = lp(
            vec![-3.0, -2.0, -4.0],
            vec![(0.0, 4.0), (0.0, 4.0), (0.0, 4.0)],
            vec![
                (vec![1.0, 1.0, 2.0], -1, 7.0),
                (vec![2.0, 1.0, 1.0], -1, 8.0),
            ],
        );
        for col in 0..3 {
            for (is_lower, v) in [(true, 1.0), (false, 2.0)] {
                let mut lb = p.lb.clone();
                let mut ub = p.ub.clone();
                if is_lower {
                    lb[col] = v;
                } else {
                    ub[col] = v;
                }
                check_restart_matches(&p, lb, ub);
            }
        }
    }

    #[test]
    fn dual_restart_detects_infeasible_child() {
        // x + y = 10 with both clamped to [0, 4]: child infeasible; the
        // dual run must prune it without a primal fallback.
        let p = lp(
            vec![2.0, 3.0],
            vec![(0.0, 20.0), (0.0, 20.0)],
            vec![(vec![1.0, 1.0], 0, 10.0)],
        );
        let first = solve_lp(&p, &topts()).unwrap();
        let basis = first.basis.expect("reusable basis");
        let lb = p.lb.clone();
        let mut ub = p.ub.clone();
        ub[0] = 4.0;
        ub[1] = 4.0;
        let restart = resolve_lp(&p, &lb, &ub, &basis, &topts()).unwrap();
        match restart {
            Some(res) => assert!(matches!(res.outcome, LpOutcome::Infeasible)),
            None => panic!("dual restart should prove infeasibility, not fall back"),
        }
    }

    /// Property-style test (vendored proptest stand-in semantics: many
    /// deterministic random cases, no shrinking): a random LP, a random
    /// single-bound tightening, and the invariant that `resolve_lp` either
    /// matches the from-scratch objective within `FEAS_TOL` or honestly
    /// reports a miss.
    #[test]
    fn prop_dual_restart_matches_scratch_on_random_tightenings() {
        use proptest::test_runner::TestRng;
        let cases = proptest::case_count();
        for case in 0..cases as u64 {
            let mut rng = TestRng::for_case("prop_dual_restart", case);
            let nv = 2 + rng.below(3) as usize; // 2..=4 vars
            let nc = 1 + rng.below(3) as usize; // 1..=3 constraints
            let costs: Vec<f64> = (0..nv).map(|_| rng.unit_f64() * 10.0 - 5.0).collect();
            let bounds: Vec<(f64, f64)> =
                (0..nv).map(|_| (0.0, 1.0 + rng.below(5) as f64)).collect();
            let cons: Vec<(Vec<f64>, i8, f64)> = (0..nc)
                .map(|_| {
                    let a: Vec<f64> = (0..nv).map(|_| rng.unit_f64() * 3.0 + 0.1).collect();
                    (a, -1i8, 1.0 + rng.unit_f64() * 7.0)
                })
                .collect();
            let p = lp(costs, bounds.clone(), cons);
            // Random single-bound tightening on a structural column.
            let col = rng.below(nv as u64) as usize;
            let (blo, bhi) = bounds[col];
            let mut lb = p.lb.clone();
            let mut ub = p.ub.clone();
            if rng.below(2) == 0 {
                lb[col] = (blo + 1.0).min(bhi);
            } else {
                ub[col] = (bhi - 1.0).max(blo);
            }
            check_restart_matches(&p, lb, ub);
        }
    }

    #[test]
    fn poisoned_basis_forces_primal_fallback() {
        // Satellite: a corrupted cached basis must be reported as a miss
        // (`Ok(None)`), and the primal path must still recover the optimum.
        // Two rows so the poisoning (duplicating one basic column into
        // every slot) genuinely corrupts the basis.
        let p = lp(
            vec![-3.0, -2.0],
            vec![(0.0, 4.0), (0.0, 4.0)],
            vec![(vec![1.0, 1.0], -1, 5.0), (vec![1.0, 1.0], -1, 6.0)],
        );
        let mut basis = solve_lp(&p, &topts()).unwrap().basis.expect("basis");
        basis.poison();
        let mut lb = p.lb.clone();
        let ub = p.ub.clone();
        lb[0] = 1.0;
        let restart = resolve_lp(&p, &lb, &ub, &basis, &topts()).unwrap();
        assert!(restart.is_none(), "poisoned basis must miss, not solve");
        // The fallback path (exactly what branch.rs runs on a miss):
        // maximize 3x+2y with x ∈ [1,4], y ∈ [0,4], x+y ≤ 5 → (4,1), −14.
        let fallback = solve_lp_from(&p, &lb, &ub, &topts()).unwrap();
        match fallback.outcome {
            LpOutcome::Optimal { obj, .. } => assert!((obj + 14.0).abs() < 1e-6, "obj={obj}"),
            other => panic!("fallback failed: {other:?}"),
        }
    }

    #[test]
    fn dual_budget_exhaustion_carries_iterations_spent() {
        // Satellite: the budget-exhaustion path of the dual simplex must
        // surface `LpError::Budget` with the iteration count payload.
        let p = lp(
            vec![-3.0, -2.0, -4.0],
            vec![(0.0, 4.0), (0.0, 4.0), (0.0, 4.0)],
            vec![
                (vec![1.0, 1.0, 2.0], -1, 7.0),
                (vec![2.0, 1.0, 1.0], -1, 8.0),
            ],
        );
        let basis = solve_lp(&p, &topts()).unwrap().basis.expect("basis");
        let mut lb = p.lb.clone();
        let ub = p.ub.clone();
        lb[2] = 3.0; // force some dual pivots
        let opts = SimplexOpts {
            budget: Budget::with_limit(std::time::Duration::ZERO),
            ..SimplexOpts::default()
        };
        match resolve_lp(&p, &lb, &ub, &basis, &opts) {
            Err(LpError::Budget { iterations, .. }) => {
                // A dead budget fires on the first amortized check, before
                // any pivot lands.
                assert_eq!(iterations, 0, "budget error must carry pivots spent");
            }
            other => panic!("expected a budget error, got {other:?}"),
        }
    }

    #[test]
    fn refactorization_triggers_and_preserves_the_optimum() {
        // A chain of equalities long enough that the pivot count crosses
        // the refactor threshold (m + REFACTOR_PERIOD etas), exercising
        // re-inversion mid-solve.
        let n = 200usize;
        let costs: Vec<f64> = (0..n)
            .map(|j| if j % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let bounds = vec![(0.0, 10.0); n];
        let mut cons = Vec::new();
        // x_j + x_{j+1} <= 10 for all j; optimum pushes odd columns up.
        for j in 0..n - 1 {
            let mut a = vec![0.0; n];
            a[j] = 1.0;
            a[j + 1] = 1.0;
            cons.push((a, -1i8, 10.0));
        }
        let p = lp(costs, bounds, cons);
        let res = solve_lp(&p, &topts()).unwrap();
        match res.outcome {
            LpOutcome::Optimal { obj, .. } => {
                // 100 odd columns at 10, even columns at 0: obj = -1000.
                assert!((obj + 1000.0).abs() < 1e-6, "obj={obj}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(
            res.refactors >= 2,
            "expected mid-solve re-inversions, got {}",
            res.refactors
        );
    }

    // --- Pricing / cut tests ------------------------------------------

    #[test]
    fn devex_and_dantzig_agree_on_random_lps() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..40 {
            let nv = 3;
            let costs: Vec<f64> = (0..nv).map(|_| rng.gen_range(-5.0..5.0f64)).collect();
            let bounds = vec![(0.0, 6.0); nv];
            let cons: Vec<(Vec<f64>, i8, f64)> = (0..3)
                .map(|_| {
                    (
                        (0..nv).map(|_| rng.gen_range(0.1..3.0f64)).collect(),
                        -1i8,
                        rng.gen_range(1.0..8.0f64),
                    )
                })
                .collect();
            let p = lp(costs, bounds, cons);
            let dantzig = SimplexOpts {
                pricing: Pricing::Dantzig,
                ..topts()
            };
            let devex = SimplexOpts {
                pricing: Pricing::Devex,
                ..topts()
            };
            match (
                solve_lp(&p, &dantzig).unwrap().outcome,
                solve_lp(&p, &devex).unwrap().outcome,
            ) {
                (LpOutcome::Optimal { obj: a, .. }, LpOutcome::Optimal { obj: b, .. }) => {
                    assert!(
                        (a - b).abs() < 1e-6,
                        "trial {trial}: dantzig {a} vs devex {b}"
                    );
                }
                (a, b) => panic!("trial {trial}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn devex_dual_restart_matches_dantzig_restart() {
        let p = lp(
            vec![-3.0, -2.0, -4.0],
            vec![(0.0, 4.0), (0.0, 4.0), (0.0, 4.0)],
            vec![
                (vec![1.0, 1.0, 2.0], -1, 7.0),
                (vec![2.0, 1.0, 1.0], -1, 8.0),
            ],
        );
        for pricing in [Pricing::Dantzig, Pricing::Devex] {
            let opts = SimplexOpts { pricing, ..topts() };
            let first = solve_lp(&p, &opts).unwrap();
            let basis = first.basis.expect("reusable basis");
            let mut lb = p.lb.clone();
            lb[2] = 3.0;
            let restart = resolve_lp(&p, &lb, &p.ub, &basis, &opts)
                .unwrap()
                .expect("restart should succeed");
            let scratch = solve_lp_from(&p, &lb, &p.ub, &opts).unwrap();
            match (restart.outcome, scratch.outcome) {
                (LpOutcome::Optimal { obj: a, .. }, LpOutcome::Optimal { obj: b, .. }) => {
                    assert!(
                        (a - b).abs() < 1e-6,
                        "{pricing:?}: restart {a} vs scratch {b}"
                    )
                }
                (a, b) => panic!("{pricing:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn first_factorization_time_is_recorded() {
        let p = lp(
            vec![-3.0, -2.0],
            vec![(0.0, f64::INFINITY), (0.0, f64::INFINITY)],
            vec![(vec![1.0, 1.0], -1, 4.0), (vec![1.0, 3.0], -1, 6.0)],
        );
        let res = solve_lp(&p, &topts()).unwrap();
        // Timing is environment-dependent; the field just must be present
        // and sane (the first factorization of a 2-row LP is ≪ 1 s).
        assert!(res.first_factor_us < 1_000_000);
    }

    /// Enumerates the feasible binary points of a pure-binary `lp()`
    /// problem (structural columns all in [0,1]).
    fn binary_points(p: &LpProblem) -> Vec<Vec<f64>> {
        let ns = p.num_structural;
        let mut out = Vec::new();
        'pts: for mask in 0..(1u32 << ns) {
            let x: Vec<f64> = (0..ns).map(|j| ((mask >> j) & 1) as f64).collect();
            for (r, row) in p.rows.iter().enumerate() {
                let mut act = 0.0;
                for &(c, a) in row {
                    let cu = c as usize;
                    if cu < ns {
                        act += a * x[cu];
                    }
                }
                // Row is act + slack = rhs with slack ∈ [lb, ub].
                let s = ns + r;
                let slack = p.rhs[r] - act;
                if slack < p.lb[s] - 1e-9 || slack > p.ub[s] + 1e-9 {
                    continue 'pts;
                }
            }
            out.push(x);
        }
        out
    }

    #[test]
    fn gomory_cuts_are_violated_by_lp_and_satisfied_by_integers() {
        // max 5x0 + 4x1 + 3x2 over binaries with two knapsack rows; the
        // LP relaxation is fractional.
        let p = lp(
            vec![-5.0, -4.0, -3.0],
            vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)],
            vec![
                (vec![2.0, 3.0, 1.0], -1, 4.0),
                (vec![4.0, 1.0, 2.0], -1, 5.0),
            ],
        );
        let res = solve_lp(&p, &topts()).unwrap();
        let basis = res.basis.expect("basis");
        let LpOutcome::Optimal { x, .. } = &res.outcome else {
            panic!("expected optimal");
        };
        let is_int = vec![true; 3];
        let cuts = gomory_cuts(&p, &p.lb, &p.ub, &basis, &is_int, 8);
        assert!(!cuts.is_empty(), "fractional LP optimum must yield cuts");
        let full = |xs: &[f64], j: usize, r_of: &dyn Fn(usize) -> f64| {
            if j < p.num_structural {
                xs[j]
            } else {
                r_of(j - p.num_structural)
            }
        };
        for (coefs, rhs) in &cuts {
            // Violated by the LP point (slack values from row residuals).
            let slack_at = |xs: &[f64], r: usize| {
                let mut act = 0.0;
                for &(c, a) in &p.rows[r] {
                    let cu = c as usize;
                    if cu < p.num_structural {
                        act += a * xs[cu];
                    }
                }
                p.rhs[r] - act
            };
            let eval = |xs: &[f64]| {
                coefs
                    .iter()
                    .map(|&(j, c)| c * full(xs, j as usize, &|r| slack_at(xs, r)))
                    .sum::<f64>()
            };
            assert!(eval(x) > rhs + 1e-5, "cut must be violated by the LP point");
            // Satisfied by every feasible binary point.
            for pt in binary_points(&p) {
                assert!(
                    eval(&pt) <= rhs + 1e-6,
                    "cut {coefs:?} ≤ {rhs} kills integer point {pt:?}"
                );
            }
        }
    }

    #[test]
    fn cover_cuts_are_valid_for_binary_knapsacks() {
        let p = lp(
            vec![-5.0, -4.0, -3.0],
            vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)],
            vec![(vec![2.0, 3.0, 2.0], -1, 4.0)],
        );
        let res = solve_lp(&p, &topts()).unwrap();
        let LpOutcome::Optimal { x, .. } = &res.outcome else {
            panic!("expected optimal");
        };
        let is_int = vec![true; 3];
        let cuts = cover_cuts(&p, &p.lb, &p.ub, x, &is_int, 8);
        for (coefs, rhs) in &cuts {
            let viol: f64 = coefs.iter().map(|&(j, c)| c * x[j as usize]).sum();
            assert!(viol > rhs + 1e-6, "cover cut must be violated by x̄");
            for pt in binary_points(&p) {
                let v: f64 = coefs.iter().map(|&(j, c)| c * pt[j as usize]).sum();
                assert!(v <= rhs + 1e-9, "cover cut kills integer point {pt:?}");
            }
        }
    }

    #[test]
    fn cut_rows_append_and_extended_basis_resolves() {
        let p = lp(
            vec![-5.0, -4.0, -3.0],
            vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)],
            vec![
                (vec![2.0, 3.0, 1.0], -1, 4.0),
                (vec![4.0, 1.0, 2.0], -1, 5.0),
            ],
        );
        let res = solve_lp(&p, &topts()).unwrap();
        let basis = res.basis.expect("basis");
        let LpOutcome::Optimal { obj: base_obj, .. } = res.outcome else {
            panic!("expected optimal");
        };
        let is_int = vec![true; 3];
        let cuts = gomory_cuts(&p, &p.lb, &p.ub, &basis, &is_int, 8);
        assert!(!cuts.is_empty());
        let aug = with_cut_rows(&p, &cuts);
        assert_eq!(aug.num_cols, p.num_cols + cuts.len());
        assert_eq!(aug.rows.len(), p.rows.len() + cuts.len());
        let ext = basis.extended_with_cut_slacks(p.num_cols, cuts.len());
        let restart = resolve_lp(&aug, &aug.lb, &aug.ub, &ext, &topts())
            .unwrap()
            .expect("extended basis must warm-restart the cut LP");
        let scratch = solve_lp(&aug, &topts()).unwrap();
        match (restart.outcome, scratch.outcome) {
            (LpOutcome::Optimal { obj: a, .. }, LpOutcome::Optimal { obj: b, .. }) => {
                assert!((a - b).abs() < 1e-6, "restart {a} vs scratch {b}");
                // Cuts tighten a minimization relaxation: bound can only rise.
                assert!(a >= base_obj - 1e-9);
            }
            (a, b) => panic!("{a:?} vs {b:?}"),
        }
    }
}
