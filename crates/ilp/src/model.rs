//! Mixed-integer linear programming model builder.
//!
//! A [`Model`] collects variables, linear constraints, and a linear
//! objective, then hands off to the [`branch`](crate::branch) module for
//! solving. The builder mirrors the structure of algebraic modelling
//! languages:
//!
//! ```
//! use gomil_ilp::{Model, Cmp, Sense};
//!
//! # fn main() -> Result<(), gomil_ilp::SolveError> {
//! let mut m = Model::new("knapsack");
//! let take_a = m.add_binary("a");
//! let take_b = m.add_binary("b");
//! m.add_constraint("weight", 3.0 * take_a + 4.0 * take_b, Cmp::Le, 5.0);
//! m.set_objective(5.0 * take_a + 6.0 * take_b, Sense::Maximize);
//! let sol = m.solve()?;
//! assert_eq!(sol.objective(), 6.0);
//! # Ok(())
//! # }
//! ```

use crate::branch::{self, BranchConfig};
use crate::certify;
use crate::expr::{LinExpr, Var};
use crate::solution::{Solution, SolveError};
use std::fmt;
use std::time::Instant;

/// The integrality class of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Integer restricted to `{0, 1}`.
    Binary,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
        })
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sense {
    /// Minimize the objective (default).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct VarData {
    pub name: String,
    pub kind: VarKind,
    pub lb: f64,
    pub ub: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct ConstraintData {
    pub name: String,
    pub expr: LinExpr,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A mixed-integer linear program.
///
/// See the module documentation for a usage example.
#[derive(Debug, Clone)]
pub struct Model {
    name: String,
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<ConstraintData>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Sense,
}

impl Model {
    /// Creates an empty model with the given name (used in diagnostics and
    /// LP-format export).
    pub fn new(name: impl Into<String>) -> Model {
        Model {
            name: name.into(),
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
            sense: Sense::Minimize,
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a variable with explicit kind and bounds, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind, lb: f64, ub: f64) -> Var {
        assert!(
            !lb.is_nan() && !ub.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(lb <= ub, "variable lower bound exceeds upper bound");
        let (lb, ub) = match kind {
            VarKind::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarData {
            name: name.into(),
            kind,
            lb,
            ub,
        });
        v
    }

    /// Adds a continuous variable in `[lb, ub]`.
    pub fn add_continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Var {
        self.add_var(name, VarKind::Continuous, lb, ub)
    }

    /// Adds an integer variable in `[lb, ub]`.
    pub fn add_integer(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Var {
        self.add_var(name, VarKind::Integer, lb, ub)
    }

    /// Adds a `{0,1}` variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Adds the linear constraint `expr cmp rhs`.
    ///
    /// Any constant inside `expr` is moved to the right-hand side, so
    /// `add_constraint(n, x + 1.0, Le, 3.0)` stores `x ≤ 2`.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: impl Into<LinExpr>,
        cmp: Cmp,
        rhs: f64,
    ) {
        let mut expr = expr.into();
        let rhs = rhs - expr.constant();
        expr.add_constant(-expr.constant());
        self.constraints.push(ConstraintData {
            name: name.into(),
            expr,
            cmp,
            rhs,
        });
    }

    /// Convenience for an equality constraint `lhs = rhs` between two
    /// expressions.
    pub fn add_eq(
        &mut self,
        name: impl Into<String>,
        lhs: impl Into<LinExpr>,
        rhs: impl Into<LinExpr>,
    ) {
        let e = lhs.into() - rhs.into();
        self.add_constraint(name, e, Cmp::Eq, 0.0);
    }

    /// Sets the objective expression and direction.
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>, sense: Sense) {
        self.objective = expr.into();
        self.sense = sense;
    }

    /// The current objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of integer (including binary) variables.
    pub fn num_integer_vars(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.kind != VarKind::Continuous)
            .count()
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_name(&self, var: Var) -> &str {
        &self.vars[var.index()].name
    }

    /// Kind of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_kind(&self, var: Var) -> VarKind {
        self.vars[var.index()].kind
    }

    /// `(lower, upper)` bounds of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_bounds(&self, var: Var) -> (f64, f64) {
        let d = &self.vars[var.index()];
        (d.lb, d.ub)
    }

    /// Tightens the bounds of an existing variable.
    ///
    /// # Panics
    ///
    /// Panics if the new bounds are inconsistent (`lb > ub`).
    pub fn set_var_bounds(&mut self, var: Var, lb: f64, ub: f64) {
        assert!(lb <= ub, "variable lower bound exceeds upper bound");
        let d = &mut self.vars[var.index()];
        d.lb = lb;
        d.ub = ub;
    }

    /// Checks whether `values` (indexed by variable index) satisfies all
    /// bounds, integrality requirements, and constraints within `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, v) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < v.lb - tol || x > v.ub + tol {
                return false;
            }
            if v.kind != VarKind::Continuous && (x - x.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(values);
            match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }

    /// Solves the model with default configuration.
    ///
    /// The returned solution has passed the independent post-solve check in
    /// [`certify`](crate::certify); see [`Model::solve_with`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`] or [`SolveError::Unbounded`] for
    /// models without an optimum, [`SolveError::Limit`] when a resource
    /// limit stops the search before any feasible point is found, and
    /// [`SolveError::Certify`] if the solver's answer fails the post-solve
    /// check (a solver bug).
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(&BranchConfig::default())
    }

    /// Solves with an explicit branch-and-bound configuration (time limits,
    /// wall-clock budget, warm start, gap tolerance).
    ///
    /// This is the resilient entry point on top of the raw
    /// [`branch::solve`](crate::branch::solve) engine. It adds two layers:
    ///
    /// * **Numerical retry** — when the engine reports
    ///   [`SolveError::Numerical`] and
    ///   [`numerical_retry`](BranchConfig::numerical_retry) is on, the solve
    ///   is repeated once with Bland's anti-cycling pivot rule and relaxed
    ///   tolerances before the error is propagated.
    /// * **Certification** — every solution is re-checked against the
    ///   original model by [`certify::certify`] and carries the resulting
    ///   [`Certificate`](crate::certify::Certificate); a check failure
    ///   surfaces as [`SolveError::Certify`] instead of a wrong answer.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_with(&self, config: &BranchConfig) -> Result<Solution, SolveError> {
        let start = Instant::now();
        let mut sol = match branch::solve(self, config) {
            Ok(sol) => sol,
            Err(SolveError::Numerical(first)) if config.numerical_retry && !config.force_bland => {
                // Maximum-robustness retry: Bland's rule, Dantzig pricing,
                // relaxed tolerances, no basis reuse, no cuts and no
                // presolve reductions — none of the performance machinery
                // may re-trigger the failure being retried.
                let retry = BranchConfig {
                    force_bland: true,
                    tol_scale: 10.0,
                    reuse_basis: false,
                    pricing: crate::simplex::Pricing::Dantzig,
                    cuts: branch::CutMode::Off,
                    probing: false,
                    scaling: false,
                    reduce: false,
                    ..config.clone()
                };
                branch::solve(self, &retry).map_err(|e| match e {
                    SolveError::Numerical(second) => SolveError::Numerical(format!(
                        "{first}; retry with Bland's rule also failed: {second}"
                    )),
                    other => other,
                })?
            }
            Err(e) => return Err(e),
        };
        sol.wall_time = start.elapsed();
        match certify::certify(self, &sol) {
            Ok(cert) => {
                sol.certificate = Some(cert);
                Ok(sol)
            }
            Err(e) => Err(SolveError::Certify(e)),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model {}: {} vars ({} integer), {} constraints",
            self.name,
            self.num_vars(),
            self.num_integer_vars(),
            self.num_constraints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_constant_folds_into_rhs() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 10.0);
        m.add_constraint("c", x + 1.0, Cmp::Le, 3.0);
        assert_eq!(m.constraints[0].rhs, 2.0);
        assert_eq!(m.constraints[0].expr.constant(), 0.0);
    }

    #[test]
    fn binary_bounds_are_clamped() {
        let mut m = Model::new("t");
        let b = m.add_var("b", VarKind::Binary, -5.0, 5.0);
        assert_eq!(m.var_bounds(b), (0.0, 1.0));
    }

    #[test]
    fn feasibility_check_covers_integrality() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", LinExpr::from(x), Cmp::Le, 5.0);
        assert!(m.is_feasible(&[3.0], 1e-6));
        assert!(!m.is_feasible(&[3.5], 1e-6));
        assert!(!m.is_feasible(&[6.0], 1e-6));
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper")]
    fn inverted_bounds_panic() {
        let mut m = Model::new("t");
        m.add_continuous("x", 1.0, 0.0);
    }

    #[test]
    fn add_eq_produces_equality() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_eq("e", x + 2.0, y * 1.0);
        assert_eq!(m.constraints[0].cmp, Cmp::Eq);
        assert_eq!(m.constraints[0].rhs, -2.0);
        assert!(m.is_feasible(&[1.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 4.0], 1e-9));
    }
}
