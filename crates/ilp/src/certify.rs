//! Independent certification of solver results.
//!
//! The branch-and-bound engine in [`branch`](crate::branch) maintains a lot
//! of derived state (compressed columns, presolve-tightened bounds, slack
//! rows). A bug anywhere in that machinery could silently return an
//! assignment that violates the *original* model. This module re-checks a
//! returned [`Solution`] against the model as written, sharing no code with
//! the solve path: it walks the raw variable bounds, integrality
//! requirements, constraint expressions, and objective, and reports the
//! first violation as a typed [`CertifyError`].
//!
//! [`Model::solve`](crate::Model::solve) and
//! [`Model::solve_with`](crate::Model::solve_with) run [`certify`]
//! automatically on every solution they return, so a certified
//! [`Certificate`] is attached to every [`Solution`] the public API hands
//! out. The checks are also available directly for auditing external
//! assignments (e.g. warm starts) via [`certify_values`].

use crate::model::{Cmp, Model, Sense, VarKind};
use crate::solution::Solution;
use std::fmt;

/// Absolute tolerance for bound, integrality, and constraint residuals.
pub const CERT_FEAS_TOL: f64 = 1e-5;
/// Relative tolerance for the recomputed objective value.
pub const CERT_OBJ_TOL: f64 = 1e-6;

/// A violation found while re-checking a solution against its model.
#[derive(Debug, Clone, PartialEq)]
pub enum CertifyError {
    /// The assignment has the wrong number of values for the model.
    WrongArity {
        /// Number of variables in the model.
        expected: usize,
        /// Number of values in the assignment.
        got: usize,
    },
    /// A value is NaN or infinite.
    NonFinite {
        /// Variable name.
        var: String,
        /// Variable index.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A value lies outside its variable's declared bounds.
    BoundViolation {
        /// Variable name.
        var: String,
        /// Variable index.
        index: usize,
        /// The offending value.
        value: f64,
        /// Declared lower bound.
        lower: f64,
        /// Declared upper bound.
        upper: f64,
    },
    /// An integer or binary variable takes a fractional value.
    IntegralityViolation {
        /// Variable name.
        var: String,
        /// Variable index.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A constraint's residual exceeds tolerance.
    ConstraintViolation {
        /// Constraint name.
        constraint: String,
        /// Constraint index.
        index: usize,
        /// Signed violation amount (how far past the right-hand side).
        residual: f64,
    },
    /// The objective reported by the solver disagrees with the objective
    /// recomputed from the returned values.
    ObjectiveMismatch {
        /// Objective value the solver reported.
        reported: f64,
        /// Objective recomputed from the assignment.
        recomputed: f64,
    },
    /// The reported best bound sits on the wrong side of the objective for
    /// the model's optimization sense.
    BoundSideError {
        /// Objective value the solver reported.
        objective: f64,
        /// Best bound the solver reported.
        bound: f64,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::WrongArity { expected, got } => write!(
                f,
                "assignment has {got} values but the model has {expected} variables"
            ),
            CertifyError::NonFinite { var, index, value } => {
                write!(f, "variable {var} (#{index}) has non-finite value {value}")
            }
            CertifyError::BoundViolation {
                var,
                index,
                value,
                lower,
                upper,
            } => write!(
                f,
                "variable {var} (#{index}) = {value} violates bounds [{lower}, {upper}]"
            ),
            CertifyError::IntegralityViolation { var, index, value } => write!(
                f,
                "integer variable {var} (#{index}) has fractional value {value}"
            ),
            CertifyError::ConstraintViolation {
                constraint,
                index,
                residual,
            } => write!(
                f,
                "constraint {constraint} (#{index}) violated by {residual:.3e}"
            ),
            CertifyError::ObjectiveMismatch {
                reported,
                recomputed,
            } => write!(
                f,
                "reported objective {reported} disagrees with recomputed value {recomputed}"
            ),
            CertifyError::BoundSideError { objective, bound } => write!(
                f,
                "best bound {bound} is on the wrong side of objective {objective}"
            ),
        }
    }
}

impl std::error::Error for CertifyError {}

/// Evidence that a solution passed independent re-checking, with the worst
/// residuals observed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Certificate {
    /// Largest bound violation over all variables (≤ tolerance).
    pub max_bound_violation: f64,
    /// Largest distance from integrality over all integer variables.
    pub max_integrality_violation: f64,
    /// Largest constraint residual past its right-hand side.
    pub max_constraint_residual: f64,
    /// Absolute difference between reported and recomputed objective.
    pub objective_error: f64,
}

/// Checks a raw assignment against the model's bounds, integrality
/// requirements, and constraints within `tol`.
///
/// This is the value-level half of [`certify`]; it is also used to vet
/// warm-start assignments before the solver accepts them as incumbents.
///
/// # Errors
///
/// The first violation found, as a typed [`CertifyError`].
pub fn certify_values(
    model: &Model,
    values: &[f64],
    tol: f64,
) -> Result<Certificate, CertifyError> {
    if values.len() != model.num_vars() {
        return Err(CertifyError::WrongArity {
            expected: model.num_vars(),
            got: values.len(),
        });
    }
    let mut cert = Certificate::default();
    for (i, (v, &x)) in model.vars.iter().zip(values.iter()).enumerate() {
        if !x.is_finite() {
            return Err(CertifyError::NonFinite {
                var: v.name.clone(),
                index: i,
                value: x,
            });
        }
        let bound_viol = (v.lb - x).max(x - v.ub).max(0.0);
        if bound_viol > tol {
            return Err(CertifyError::BoundViolation {
                var: v.name.clone(),
                index: i,
                value: x,
                lower: v.lb,
                upper: v.ub,
            });
        }
        cert.max_bound_violation = cert.max_bound_violation.max(bound_viol);
        if v.kind != VarKind::Continuous {
            let frac = (x - x.round()).abs();
            if frac > tol {
                return Err(CertifyError::IntegralityViolation {
                    var: v.name.clone(),
                    index: i,
                    value: x,
                });
            }
            cert.max_integrality_violation = cert.max_integrality_violation.max(frac);
        }
    }
    for (ci, c) in model.constraints.iter().enumerate() {
        let lhs = c.expr.eval(values);
        let residual = match c.cmp {
            Cmp::Le => lhs - c.rhs,
            Cmp::Ge => c.rhs - lhs,
            Cmp::Eq => (lhs - c.rhs).abs(),
        }
        .max(0.0);
        if residual > tol {
            return Err(CertifyError::ConstraintViolation {
                constraint: c.name.clone(),
                index: ci,
                residual,
            });
        }
        cert.max_constraint_residual = cert.max_constraint_residual.max(residual);
    }
    Ok(cert)
}

/// Fully certifies a [`Solution`] against its model: value feasibility (via
/// [`certify_values`]), a recomputed objective, and a sanity check that the
/// reported best bound lies on the correct side for the model's sense.
///
/// # Errors
///
/// The first violation found, as a typed [`CertifyError`].
pub fn certify(model: &Model, sol: &Solution) -> Result<Certificate, CertifyError> {
    let mut cert = certify_values(model, sol.values(), CERT_FEAS_TOL)?;

    let recomputed = model.objective.eval(sol.values());
    let reported = sol.objective();
    let obj_err = (reported - recomputed).abs();
    if obj_err > CERT_OBJ_TOL * reported.abs().max(1.0) {
        return Err(CertifyError::ObjectiveMismatch {
            reported,
            recomputed,
        });
    }
    cert.objective_error = obj_err;

    let bound = sol.best_bound();
    let slack = CERT_OBJ_TOL * reported.abs().max(1.0);
    let ok = match model.sense {
        Sense::Minimize => bound <= reported + slack,
        Sense::Maximize => bound >= reported - slack,
    };
    if !ok {
        return Err(CertifyError::BoundSideError {
            objective: reported,
            bound,
        });
    }
    Ok(cert)
}

/// Checks a structural assignment against a standardized LP's *original*
/// rows and bounds — the LP-level analogue of [`certify_values`], used to
/// vet what the reduction presolve's postsolve reconstructs before a
/// reduced solve's answer is trusted in full space.
///
/// `x` holds the structural columns only; each row's slack value is
/// implied (`s_r = rhs_r − Σ a_rj·x_j`, the slack coefficient being 1)
/// and must land within the slack's bounds, which is exactly "the
/// original constraint holds". `lb`/`ub` are the per-node override
/// bounds (`p.num_cols` long), matching what the solve saw.
///
/// # Errors
///
/// A human-readable description of the first violation found.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn certify_lp_rows(
    p: &crate::simplex::LpProblem,
    lb: &[f64],
    ub: &[f64],
    x: &[f64],
    tol: f64,
) -> Result<(), String> {
    if x.len() != p.num_structural {
        return Err(format!(
            "arity mismatch: {} structural values for {} columns",
            x.len(),
            p.num_structural
        ));
    }
    for (j, &v) in x.iter().enumerate() {
        if !v.is_finite() {
            return Err(format!("column {j} is not finite: {v}"));
        }
        if v < lb[j] - tol || v > ub[j] + tol {
            return Err(format!(
                "column {j} = {v} outside [{}, {}]",
                lb[j], ub[j]
            ));
        }
    }
    for (r, row) in p.rows.iter().enumerate() {
        let slack = (p.num_structural + r) as u32;
        let mut activity = 0.0;
        for &(c, a) in row {
            if c != slack {
                activity += a * x[c as usize];
            }
        }
        let s = p.rhs[r] - activity;
        if s < lb[slack as usize] - tol || s > ub[slack as usize] + tol {
            return Err(format!(
                "row {r}: slack {s} outside [{}, {}] (activity {activity}, rhs {})",
                lb[slack as usize], ub[slack as usize], p.rhs[r]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Sense};
    use crate::LinExpr;

    fn knapsack() -> Model {
        let mut m = Model::new("k");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_constraint("cap", 3.0 * a + 4.0 * b, Cmp::Le, 5.0);
        m.set_objective(5.0 * a + 6.0 * b, Sense::Maximize);
        m
    }

    #[test]
    fn accepts_a_genuine_optimum() {
        let m = knapsack();
        let s = m.solve().unwrap();
        let cert = certify(&m, &s).unwrap();
        assert!(cert.max_constraint_residual <= CERT_FEAS_TOL);
        assert!(cert.objective_error <= CERT_OBJ_TOL);
    }

    #[test]
    fn rejects_out_of_bounds_value() {
        let m = knapsack();
        let err = certify_values(&m, &[2.0, 0.0], CERT_FEAS_TOL).unwrap_err();
        assert!(matches!(err, CertifyError::BoundViolation { index: 0, .. }));
    }

    #[test]
    fn rejects_fractional_integer() {
        let m = knapsack();
        let err = certify_values(&m, &[0.5, 0.0], CERT_FEAS_TOL).unwrap_err();
        assert!(matches!(
            err,
            CertifyError::IntegralityViolation { index: 0, .. }
        ));
    }

    #[test]
    fn rejects_constraint_violation_with_name() {
        let m = knapsack();
        let err = certify_values(&m, &[1.0, 1.0], CERT_FEAS_TOL).unwrap_err();
        match err {
            CertifyError::ConstraintViolation {
                constraint,
                residual,
                ..
            } => {
                assert_eq!(constraint, "cap");
                assert!((residual - 2.0).abs() < 1e-9);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_arity_and_non_finite() {
        let m = knapsack();
        assert!(matches!(
            certify_values(&m, &[1.0], CERT_FEAS_TOL).unwrap_err(),
            CertifyError::WrongArity {
                expected: 2,
                got: 1
            }
        ));
        assert!(matches!(
            certify_values(&m, &[f64::NAN, 0.0], CERT_FEAS_TOL).unwrap_err(),
            CertifyError::NonFinite { index: 0, .. }
        ));
    }

    #[test]
    fn rejects_corrupted_objective_and_bound_side() {
        let m = knapsack();
        let mut s = m.solve().unwrap();
        s.objective += 1.0;
        assert!(matches!(
            certify(&m, &s).unwrap_err(),
            CertifyError::ObjectiveMismatch { .. }
        ));
        let mut s2 = m.solve().unwrap();
        // Maximize: a bound *below* the objective claims the incumbent beats
        // the proven optimum, which is impossible.
        s2.best_bound = s2.objective - 1.0;
        assert!(matches!(
            certify(&m, &s2).unwrap_err(),
            CertifyError::BoundSideError { .. }
        ));
    }

    #[test]
    fn minimize_bound_side() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Ge, 5.0);
        m.set_objective(LinExpr::from(x), Sense::Minimize);
        let mut s = m.solve().unwrap();
        assert!(certify(&m, &s).is_ok());
        s.best_bound = s.objective + 1.0;
        assert!(matches!(
            certify(&m, &s).unwrap_err(),
            CertifyError::BoundSideError { .. }
        ));
    }
}
