//! Solver results and errors.

use crate::certify::{Certificate, CertifyError};
use crate::expr::Var;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// The returned solution is optimal (within tolerances).
    Optimal,
    /// A feasible solution was found but the search hit a limit before
    /// proving optimality; the reported bound gives the remaining gap.
    Feasible,
}

/// Where the returned incumbent assignment came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncumbentSource {
    /// The caller-supplied warm start was never improved upon.
    WarmStart,
    /// An LP relaxation happened to be integral.
    LpIntegral,
    /// The round-and-repair heuristic produced it.
    Heuristic,
}

impl fmt::Display for IncumbentSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IncumbentSource::WarmStart => "warm start",
            IncumbentSource::LpIntegral => "integral LP relaxation",
            IncumbentSource::Heuristic => "round-and-repair heuristic",
        })
    }
}

/// What happened to the warm start the caller supplied (if any).
///
/// Warm starts used to be rejected silently; the solver now validates them
/// up front and reports the outcome here, including the exact violation for
/// a rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum WarmStartStatus {
    /// No warm start was supplied.
    NotProvided,
    /// The warm start was feasible and was installed as the initial
    /// incumbent.
    Accepted,
    /// The warm start was infeasible; the violation explains why.
    Rejected(CertifyError),
}

impl fmt::Display for WarmStartStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarmStartStatus::NotProvided => f.write_str("not provided"),
            WarmStartStatus::Accepted => f.write_str("accepted"),
            WarmStartStatus::Rejected(e) => write!(f, "rejected: {e}"),
        }
    }
}

/// One incumbent improvement observed during the search.
///
/// The solver appends an event every time a strictly better feasible
/// assignment is admitted (warm starts included), so the sequence of
/// objectives is strictly improving in the model's optimization direction.
#[derive(Debug, Clone, PartialEq)]
pub struct IncumbentEvent {
    /// When the improvement landed, measured from the start of the solve.
    pub at: Duration,
    /// The incumbent objective after the improvement, in the caller's
    /// objective space (i.e. already un-negated for maximize models).
    pub objective: f64,
    /// Which mechanism produced the improvement.
    pub source: IncumbentSource,
}

/// Per-phase timing and work breakdown for the root node of the search.
///
/// Wide models can spend their entire budget before the first branch:
/// building the model, presolving it, factorizing the first basis, and
/// grinding through the root LP. This profile makes that spend visible so
/// regressions in any one phase show up in benchmarks instead of hiding
/// inside total wall-clock. All durations are in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RootProfile {
    /// Time spent constructing the [`Model`](crate::Model) (variables,
    /// linearized constraints) before the solver saw it. Stamped by the
    /// caller via [`Solution::set_build_time`]; `0` when the caller did
    /// not measure it.
    pub build_us: u64,
    /// Time spent in presolve (activity bound tightening, probing,
    /// coefficient strengthening) plus LP standardization.
    pub presolve_us: u64,
    /// Time the first basis factorization took inside the root LP solve.
    pub first_factor_us: u64,
    /// Wall-clock of the root LP solve, including cut-round resolves.
    pub root_lp_us: u64,
    /// Simplex iterations spent on the root LP, including cut-round
    /// resolves (these are also included in
    /// [`Solution::lp_iterations`]).
    pub root_lp_iters: u64,
    /// Cut separation rounds that generated at least one cut.
    pub cut_rounds: u64,
    /// Total Gomory + cover cuts appended to the root relaxation.
    pub cuts_added: u64,
    /// Time spent separating cuts (excluding the resolves they trigger,
    /// which are counted in [`root_lp_us`](Self::root_lp_us)).
    pub cut_us: u64,
    /// Rows the LP reduction presolve removed before the root solve
    /// (empty, redundant, singleton and dominated-duplicate rows).
    pub reduce_rows: u64,
    /// Structural columns the LP reduction presolve substituted out before
    /// the root solve (node-fixed and empty columns).
    pub reduce_cols: u64,
    /// Rows rescaled by geometric-mean equilibration (0 when scaling is
    /// disabled or every row already had unit geometric mean).
    pub scale_rows: u64,
    /// Spread of per-row geometric coefficient means (`max/min` over rows
    /// of `geomean(|a|)`) before equilibration (0.0 when scaling did not
    /// run; 1.0 for an empty matrix). A spread already ≤ 4 skips the
    /// rescaling entirely (`rows_scaled` stays 0).
    pub scale_range_before: f64,
    /// Row-geomean spread after equilibration (≤ 2 up to the power-of-two
    /// rounding whenever rescaling actually ran).
    pub scale_range_after: f64,
}

/// A (mixed-)integer solution returned by the solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    pub(crate) values: Vec<f64>,
    pub(crate) objective: f64,
    pub(crate) best_bound: f64,
    pub(crate) status: SolveStatus,
    pub(crate) nodes: u64,
    pub(crate) nodes_pruned: u64,
    pub(crate) nodes_branched: u64,
    pub(crate) lp_iterations: u64,
    pub(crate) lp_warm_attempts: u64,
    pub(crate) lp_warm_hits: u64,
    pub(crate) lp_refactors: u64,
    pub(crate) lp_ftran: u64,
    pub(crate) lp_ftran_hyper: u64,
    pub(crate) lp_btran: u64,
    pub(crate) lp_btran_hyper: u64,
    pub(crate) wall_time: Duration,
    pub(crate) incumbent_source: IncumbentSource,
    pub(crate) warm_start: WarmStartStatus,
    pub(crate) certificate: Option<Certificate>,
    pub(crate) timeline: Vec<IncumbentEvent>,
    pub(crate) jobs: usize,
    pub(crate) root_profile: RootProfile,
}

impl Solution {
    /// Value of a variable in this solution.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// Value of an integer variable rounded to the nearest integer.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    pub fn int_value(&self, var: Var) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// The full assignment, indexed by variable index.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value of the returned assignment.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Best proven bound on the optimal objective. Equals
    /// [`objective`](Self::objective) when the status is
    /// [`SolveStatus::Optimal`].
    pub fn best_bound(&self) -> f64 {
        self.best_bound
    }

    /// Relative optimality gap `|objective − bound| / max(1, |objective|)`.
    pub fn gap(&self) -> f64 {
        (self.objective - self.best_bound).abs() / self.objective.abs().max(1.0)
    }

    /// Termination status.
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// Whether optimality was proven.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// Number of branch-and-bound nodes explored (LP relaxations attempted).
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Number of nodes discarded without producing children: cut off by the
    /// incumbent bound, proven empty by bound propagation, or LP-infeasible.
    pub fn nodes_pruned(&self) -> u64 {
        self.nodes_pruned
    }

    /// Number of nodes whose relaxation was split into two children.
    pub fn nodes_branched(&self) -> u64 {
        self.nodes_branched
    }

    /// Total simplex iterations across all LP relaxations.
    pub fn lp_iterations(&self) -> u64 {
        self.lp_iterations
    }

    /// Nodes that arrived carrying a parent basis and attempted a
    /// dual-simplex warm restart.
    pub fn lp_warm_attempts(&self) -> u64 {
        self.lp_warm_attempts
    }

    /// Warm-restart attempts that reoptimized without falling back to the
    /// from-scratch primal simplex.
    pub fn lp_warm_hits(&self) -> u64 {
        self.lp_warm_hits
    }

    /// Warm-restart hit rate in `[0, 1]`; `0` when no restart was tried.
    pub fn lp_warm_hit_rate(&self) -> f64 {
        if self.lp_warm_attempts == 0 {
            0.0
        } else {
            self.lp_warm_hits as f64 / self.lp_warm_attempts as f64
        }
    }

    /// Basis re-inversions (eta-file rebuilds) across all LP solves.
    pub fn lp_refactors(&self) -> u64 {
        self.lp_refactors
    }

    /// Average simplex pivots per explored node.
    pub fn pivots_per_node(&self) -> f64 {
        self.lp_iterations as f64 / self.nodes.max(1) as f64
    }

    /// FTRAN kernel applications across all LP solves (entering columns
    /// and bound-flip accumulators; dense utility solves excluded).
    pub fn lp_ftran(&self) -> u64 {
        self.lp_ftran
    }

    /// FTRAN applications that stayed on the hypersparse path — the result
    /// pattern never crossed the density cutover, so cost was proportional
    /// to the nonzeros touched rather than the row count.
    pub fn lp_ftran_hyper(&self) -> u64 {
        self.lp_ftran_hyper
    }

    /// BTRAN kernel applications across all LP solves (pricing rows).
    pub fn lp_btran(&self) -> u64 {
        self.lp_btran
    }

    /// BTRAN applications whose result pattern stayed below the density
    /// cutover, enabling sparse row-sweep pricing.
    pub fn lp_btran_hyper(&self) -> u64 {
        self.lp_btran_hyper
    }

    /// Fraction of FTRAN+BTRAN applications served hypersparsely, in
    /// `[0, 1]`; `0` when no kernel call was made.
    pub fn lp_hyper_rate(&self) -> f64 {
        let total = self.lp_ftran + self.lp_btran;
        if total == 0 {
            0.0
        } else {
            (self.lp_ftran_hyper + self.lp_btran_hyper) as f64 / total as f64
        }
    }

    /// Every incumbent improvement in admission order, ending at the
    /// returned assignment. Empty only when the solve failed before any
    /// feasible point (in which case there is no `Solution` to ask).
    pub fn incumbent_timeline(&self) -> &[IncumbentEvent] {
        &self.timeline
    }

    /// How many workers explored the tree (the effective
    /// [`BranchConfig::jobs`](crate::BranchConfig::jobs), at least 1).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Wall-clock time the search spent (including a numerical retry, when
    /// the solve went through [`Model::solve_with`](crate::Model::solve_with)).
    pub fn wall_time(&self) -> Duration {
        self.wall_time
    }

    /// Which mechanism produced the returned incumbent.
    pub fn incumbent_source(&self) -> IncumbentSource {
        self.incumbent_source
    }

    /// Outcome of warm-start validation.
    pub fn warm_start(&self) -> &WarmStartStatus {
        &self.warm_start
    }

    /// The certificate attached by the automatic post-solve check, when the
    /// solution came from [`Model::solve`](crate::Model::solve) or
    /// [`Model::solve_with`](crate::Model::solve_with). `None` for solutions
    /// obtained from the raw [`branch::solve`](crate::branch::solve) engine.
    pub fn certificate(&self) -> Option<&Certificate> {
        self.certificate.as_ref()
    }

    /// Per-phase breakdown of the root-node work (presolve, first
    /// factorization, root LP, cuts). `build_us` is `0` unless the caller
    /// stamped it with [`set_build_time`](Self::set_build_time).
    pub fn root_profile(&self) -> RootProfile {
        self.root_profile
    }

    /// Records how long the caller spent constructing the model before the
    /// solve, so [`root_profile`](Self::root_profile) covers the full path
    /// from formulation to first branch. The solver cannot measure this
    /// itself — it only sees the finished model.
    pub fn set_build_time(&mut self, build: Duration) {
        self.root_profile.build_us = build.as_micros() as u64;
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} objective={} bound={} nodes={} pruned={} branched={} lp_iters={} \
             warm={}/{} refactors={} jobs={}",
            self.status,
            self.objective,
            self.best_bound,
            self.nodes,
            self.nodes_pruned,
            self.nodes_branched,
            self.lp_iterations,
            self.lp_warm_hits,
            self.lp_warm_attempts,
            self.lp_refactors,
            self.jobs
        )
    }
}

/// Errors produced by [`Model::solve`](crate::Model::solve).
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The constraints admit no assignment.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A limit (time, nodes) stopped the search before any feasible point
    /// was found. Contains a human-readable description of the limit.
    Limit(String),
    /// The model is malformed (e.g. NaN coefficient) or numerically
    /// intractable for the solver.
    Numerical(String),
    /// The solver produced an answer, but the independent post-solve check
    /// found it violates the original model. This indicates a solver bug;
    /// the result must not be trusted.
    Certify(CertifyError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => f.write_str("model is infeasible"),
            SolveError::Unbounded => f.write_str("model is unbounded"),
            SolveError::Limit(s) => {
                write!(f, "search limit reached before finding a solution: {s}")
            }
            SolveError::Numerical(s) => write!(f, "numerical failure: {s}"),
            SolveError::Certify(e) => write!(f, "solution failed certification: {e}"),
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_zero_for_proven_optimum() {
        let s = Solution {
            values: vec![1.0],
            objective: 5.0,
            best_bound: 5.0,
            status: SolveStatus::Optimal,
            nodes: 1,
            nodes_pruned: 0,
            nodes_branched: 0,
            lp_iterations: 3,
            lp_warm_attempts: 2,
            lp_warm_hits: 1,
            lp_refactors: 4,
            lp_ftran: 6,
            lp_ftran_hyper: 3,
            lp_btran: 2,
            lp_btran_hyper: 1,
            wall_time: Duration::from_millis(1),
            incumbent_source: IncumbentSource::LpIntegral,
            warm_start: WarmStartStatus::NotProvided,
            certificate: None,
            timeline: vec![IncumbentEvent {
                at: Duration::ZERO,
                objective: 5.0,
                source: IncumbentSource::LpIntegral,
            }],
            jobs: 1,
            root_profile: RootProfile {
                root_lp_iters: 2,
                ..RootProfile::default()
            },
        };
        assert_eq!(s.gap(), 0.0);
        assert!(s.is_optimal());
        assert_eq!(s.incumbent_timeline().len(), 1);
        assert_eq!(s.jobs(), 1);
        assert_eq!(s.lp_warm_attempts(), 2);
        assert_eq!(s.lp_warm_hits(), 1);
        assert_eq!(s.lp_warm_hit_rate(), 0.5);
        assert_eq!(s.lp_refactors(), 4);
        assert_eq!(s.pivots_per_node(), 3.0);
        assert_eq!(s.lp_ftran(), 6);
        assert_eq!(s.lp_btran(), 2);
        assert_eq!(s.lp_hyper_rate(), 0.5);
        assert_eq!(s.root_profile().root_lp_iters, 2);
        assert_eq!(s.root_profile().cuts_added, 0);
        let text = s.to_string();
        assert!(text.contains("pruned=0"), "{text}");
        assert!(text.contains("warm=1/2"), "{text}");
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        assert_eq!(SolveError::Infeasible.to_string(), "model is infeasible");
        assert!(SolveError::Limit("10s".into()).to_string().contains("10s"));
    }

    #[test]
    fn solution_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Solution>();
        assert_send_sync::<SolveError>();
    }
}
