//! Parallel branch-and-bound: a fixed worker pool over a shared best-first
//! queue.
//!
//! Engaged by [`BranchConfig::jobs`](crate::BranchConfig::jobs) > 1. The
//! design mirrors the sequential loop in [`branch`](crate::branch) exactly —
//! same presolve/standardize front end, same pseudocost branching, same
//! round-and-repair heuristic cadence — but distributes node processing:
//!
//! * **Open queue.** One `Mutex<BinaryHeap>` ordered best-bound-first (the
//!   same NaN-safe [`f64::total_cmp`] comparator as the sequential heap).
//!   Workers pop the globally best open node; when the heap runs dry but
//!   peers are still processing (and may push children), a worker parks on
//!   a condvar rather than exiting. The search is over when the heap is
//!   empty *and* no worker is mid-node.
//! * **Shared incumbent.** The incumbent objective lives in an `AtomicU64`
//!   as order-preserving bits, so every worker prunes against the freshest
//!   bound with one relaxed load — no lock on the hot path. Improvements
//!   CAS the objective first (losers retry or abandon), then store the
//!   assignment and a timeline event under a mutex.
//! * **Node state.** Sequential search stores branching deltas in an arena
//!   owned by the loop; here each node carries an `Arc` parent-pointer
//!   chain instead, so any worker can materialize any node's bounds without
//!   touching shared mutable state. Per-worker `lb`/`ub` scratch buffers
//!   keep simplex state thread-private, while parent bases travel with
//!   stolen nodes (`Arc<Basis>`) so any worker can dual-warm-restart.
//! * **Cancellation.** Workers share the solve's [`Budget`]: deadlines and
//!   [`Budget::cancel`] are observed between nodes (via an amortized
//!   [`BudgetChecker`]) and inside every simplex pivot loop, so one
//!   pipeline-level budget still bounds the whole parallel search.
//!
//! Determinism: for a fixed model the *proved optimum* is identical to the
//! sequential engine's (pruning only ever discards nodes that provably
//! cannot beat the incumbent), but node visit order, node/iteration counts,
//! and which of several optimal assignments is returned depend on thread
//! timing.
//!
//! [`Budget`]: gomil_budget::Budget
//! [`Budget::cancel`]: gomil_budget::Budget::cancel
//! [`BudgetChecker`]: gomil_budget::BudgetChecker

use crate::branch::{
    checked_bound, expand, solve_lp_reduced, BoundDelta, Incumbent, PcTables, SearchCounters,
    SearchCtx, SearchOutcome,
};
use crate::model::VarKind;
use crate::propagate::propagate_bounds;
use crate::simplex::{resolve_lp, Basis, KernelStats, LpError, LpOutcome, LpResult, FEAS_TOL};
use crate::solution::{IncumbentEvent, IncumbentSource, SolveError};
use gomil_budget::BudgetChecker;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Between-node budget checks sample the clock every this many nodes per
/// worker; the simplex inner loop still checks on its own cadence, so a
/// deadline is never missed by more than one LP solve.
const BUDGET_CHECK_AMORTIZATION: u32 = 8;

/// Maps an f64 to bits whose unsigned order matches the float order
/// (negative floats reversed, sign bit flipped on the rest). Lets an
/// `AtomicU64` hold a minimize-space objective that only ever decreases.
fn key_of(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

fn val_of(k: u64) -> f64 {
    f64::from_bits(if k >> 63 == 1 { k & !(1 << 63) } else { !k })
}

/// One link in a node's parent-pointer chain of branching decisions.
struct PathNode {
    parent: Option<Arc<PathNode>>,
    delta: BoundDelta,
}

/// Applies every delta on the chain, innermost-first (the same
/// tighten-only semantics as the sequential arena walk).
fn apply_path(mut path: Option<&Arc<PathNode>>, lb: &mut [f64], ub: &mut [f64]) {
    while let Some(p) = path {
        p.delta.tighten(lb, ub);
        path = p.parent.as_ref();
    }
}

/// An open node in the shared queue.
struct ParNode {
    bound: f64,
    depth: u32,
    path: Option<Arc<PathNode>>,
    /// `(column, went_up, parent LP objective, fractional distance)` for
    /// pseudocost updates, like the sequential engine.
    branch: Option<(usize, bool, f64, f64)>,
    /// The parent's optimal basis; travels with the node so whichever
    /// worker steals it can dual-warm-restart, exactly like the sequential
    /// engine.
    basis: Option<Arc<Basis>>,
}

impl PartialEq for ParNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ParNode {}
impl Ord for ParNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Same NaN-safe best-first order as the sequential OpenNode.
        other
            .bound
            .total_cmp(&self.bound)
            .then(self.depth.cmp(&other.depth))
    }
}
impl PartialOrd for ParNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Why the whole pool must stop early.
enum Stop {
    /// Budget/node limit; carries the best open bound at the trigger.
    Limit(String, f64),
    /// Root relaxation unbounded with no incumbent.
    UnboundedRoot,
    /// Simplex breakdown somewhere; the solve fails as a whole.
    Numerical(String),
}

/// Queue state guarded by one mutex.
struct QueueState {
    heap: BinaryHeap<ParNode>,
    /// Bounds of nodes currently being processed; needed so the final
    /// reported bound covers in-flight work, not just the heap.
    inflight: Vec<f64>,
    /// Workers currently processing a node (may still push children).
    active: usize,
    stop: Option<Stop>,
}

/// Incumbent payload behind the atomic objective mirror.
struct IncSlot {
    best: Option<Incumbent>,
    timeline: Vec<IncumbentEvent>,
}

struct Shared<'c, 'm> {
    ctx: &'c SearchCtx<'m>,
    q: Mutex<QueueState>,
    cv: Condvar,
    /// Minimize-space incumbent objective as order-preserving bits;
    /// `key_of(f64::INFINITY)` while no incumbent exists. Only ever
    /// decreases (CAS), so a relaxed load is always a valid cutoff.
    inc_bits: AtomicU64,
    inc: Mutex<IncSlot>,
    pc: Mutex<PcTables>,
    explored: AtomicU64,
    pruned: AtomicU64,
    branched: AtomicU64,
    lp_iters: AtomicU64,
    warm_attempts: AtomicU64,
    warm_hits: AtomicU64,
    refactors: AtomicU64,
    ftran: AtomicU64,
    ftran_hyper: AtomicU64,
    btran: AtomicU64,
    btran_hyper: AtomicU64,
}

/// What processing one node produced.
enum NodeResult {
    Children(ParNode, ParNode),
    /// Pruned, infeasible, or recorded as an incumbent — no children.
    Exhausted,
    Stop(Stop),
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl<'c, 'm> Shared<'c, 'm> {
    /// The current incumbent objective, if any.
    fn cutoff(&self) -> Option<f64> {
        let best = val_of(self.inc_bits.load(Ordering::Relaxed));
        (best != f64::INFINITY).then_some(best)
    }

    /// Whether a node with this bound cannot beat the incumbent (the same
    /// gap-tolerance cutoff as the sequential loop).
    fn prunable(&self, bound: f64) -> bool {
        match self.cutoff() {
            Some(best) => bound >= best - self.ctx.config.gap_tol * best.abs().max(1.0),
            None => false,
        }
    }

    /// Offers a feasible assignment as the shared incumbent. The objective
    /// mirror is CAS'd first — losers (no strict improvement) return
    /// without touching the mutex — then the payload and timeline are
    /// updated under the lock, re-checking in case a better offer landed
    /// between the CAS and the lock.
    fn offer(&self, vals: Vec<f64>, source: IncumbentSource) {
        let obj = self.ctx.eval_obj(&vals);
        if obj.is_nan() {
            return;
        }
        let key = key_of(obj);
        let mut cur = self.inc_bits.load(Ordering::Relaxed);
        loop {
            if obj >= val_of(cur) - 1e-9 {
                return; // not a strict improvement
            }
            match self
                .inc_bits
                .compare_exchange_weak(cur, key, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let mut slot = lock(&self.inc);
        if slot.best.as_ref().is_none_or(|(_, b, _)| obj < b - 1e-9) {
            slot.timeline.push(IncumbentEvent {
                at: self.ctx.start.elapsed(),
                objective: obj,
                source,
            });
            slot.best = Some((vals, obj, source));
        }
    }

    /// Blocks until a node is available, the pool is told to stop, or the
    /// search is exhausted. `None` means "this worker is done".
    fn acquire(&self, checker: &mut BudgetChecker) -> Option<ParNode> {
        let mut q = lock(&self.q);
        loop {
            if q.stop.is_some() {
                return None;
            }
            if let Some(top_bound) = q.heap.peek().map(|n| n.bound) {
                // The top is the minimum bound: if it cannot beat the
                // incumbent, neither can anything below it. Discard the
                // whole heap in one sweep (the parallel analogue of the
                // sequential pop-and-skip prune).
                if self.prunable(top_bound) {
                    let n = q.heap.len() as u64;
                    q.heap.clear();
                    self.pruned.fetch_add(n, Ordering::Relaxed);
                    continue;
                }
                if let Err(reason) = checker.check() {
                    q.stop = Some(Stop::Limit(reason.to_string(), top_bound));
                    self.cv.notify_all();
                    return None;
                }
                if self.explored.load(Ordering::Relaxed) >= self.ctx.config.node_limit {
                    let msg = format!("node limit {}", self.ctx.config.node_limit);
                    q.stop = Some(Stop::Limit(msg, top_bound));
                    self.cv.notify_all();
                    return None;
                }
                let node = q.heap.pop().expect("peeked node vanished under lock");
                q.active += 1;
                q.inflight.push(node.bound);
                return Some(node);
            }
            if q.active == 0 {
                // Nothing open, nobody producing: search exhausted.
                self.cv.notify_all();
                return None;
            }
            q = self.cv.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Publishes the result of one processed node and updates termination
    /// bookkeeping.
    fn release(&self, bound: f64, result: NodeResult) {
        let mut q = lock(&self.q);
        q.active -= 1;
        if let Some(pos) = q
            .inflight
            .iter()
            .position(|b| b.to_bits() == bound.to_bits())
        {
            q.inflight.swap_remove(pos);
        }
        match result {
            NodeResult::Children(a, b) => {
                q.heap.push(a);
                q.heap.push(b);
            }
            NodeResult::Exhausted => {}
            NodeResult::Stop(s) => {
                if q.stop.is_none() {
                    q.stop = Some(s);
                }
            }
        }
        // Wake sleepers for new work, a stop, or possible termination.
        self.cv.notify_all();
    }

    /// The sequential per-node pipeline: materialize bounds, propagate,
    /// solve the LP relaxation, update pseudocosts, then prune, record an
    /// incumbent, or branch.
    fn process(&self, node: &ParNode, lb_buf: &mut [f64], ub_buf: &mut [f64]) -> NodeResult {
        let ctx = self.ctx;
        let std = &ctx.std;
        let config = ctx.config;
        let explored_now = self.explored.fetch_add(1, Ordering::Relaxed) + 1;

        lb_buf.copy_from_slice(&std.lp.lb);
        ub_buf.copy_from_slice(&std.lp.ub);
        apply_path(node.path.as_ref(), lb_buf, ub_buf);
        if lb_buf
            .iter()
            .zip(ub_buf.iter())
            .any(|(l, u)| *l > u + FEAS_TOL)
        {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            return NodeResult::Exhausted; // branching made it empty
        }
        if !propagate_bounds(&std.lp, lb_buf, ub_buf, &std.col_is_int, 3) {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            return NodeResult::Exhausted; // propagation proved infeasibility
        }

        // Dual warm restart from the basis that traveled with the node;
        // miss ⇒ from-scratch primal, exactly like the sequential engine.
        let mut res: Option<LpResult> = None;
        if ctx.config.reuse_basis {
            if let Some(basis) = node.basis.as_deref() {
                self.warm_attempts.fetch_add(1, Ordering::Relaxed);
                match resolve_lp(&std.lp, lb_buf, ub_buf, basis, &ctx.lp_opts) {
                    Ok(Some(r)) => {
                        self.warm_hits.fetch_add(1, Ordering::Relaxed);
                        res = Some(r);
                    }
                    Ok(None) => {}
                    Err(LpError::Budget { reason, iterations }) => {
                        self.lp_iters.fetch_add(iterations, Ordering::Relaxed);
                        return NodeResult::Stop(Stop::Limit(reason.to_string(), node.bound));
                    }
                    Err(LpError::Numerical(msg)) => return NodeResult::Stop(Stop::Numerical(msg)),
                }
            }
        }
        let res = match res {
            Some(r) => r,
            None => match solve_lp_reduced(
                &std.lp,
                lb_buf,
                ub_buf,
                &ctx.lp_opts,
                ctx.config.reduce,
                None,
            ) {
                Ok(r) => r,
                Err(LpError::Budget { reason, iterations }) => {
                    self.lp_iters.fetch_add(iterations, Ordering::Relaxed);
                    return NodeResult::Stop(Stop::Limit(reason.to_string(), node.bound));
                }
                Err(LpError::Numerical(msg)) => return NodeResult::Stop(Stop::Numerical(msg)),
            },
        };
        self.lp_iters.fetch_add(res.iterations, Ordering::Relaxed);
        self.refactors.fetch_add(res.refactors, Ordering::Relaxed);
        self.ftran.fetch_add(res.kernel.ftran, Ordering::Relaxed);
        self.ftran_hyper
            .fetch_add(res.kernel.ftran_hyper, Ordering::Relaxed);
        self.btran.fetch_add(res.kernel.btran, Ordering::Relaxed);
        self.btran_hyper
            .fetch_add(res.kernel.btran_hyper, Ordering::Relaxed);
        let child_basis = res.basis.map(Arc::new);
        let (x, lp_obj) = match res.outcome {
            LpOutcome::Infeasible => {
                self.pruned.fetch_add(1, Ordering::Relaxed);
                return NodeResult::Exhausted;
            }
            LpOutcome::Unbounded => {
                if node.depth == 0 && self.cutoff().is_none() {
                    return NodeResult::Stop(Stop::UnboundedRoot);
                }
                self.pruned.fetch_add(1, Ordering::Relaxed);
                return NodeResult::Exhausted;
            }
            LpOutcome::Optimal { x, obj } => match checked_bound(obj + ctx.obj_offset) {
                Ok(b) => (x, b),
                Err(e) => return NodeResult::Stop(Stop::Numerical(e.to_string())),
            },
        };

        if let Some((col, up, parent_obj, dist)) = node.branch {
            lock(&self.pc).observe(col, up, parent_obj, dist, lp_obj);
        }

        if self.prunable(lp_obj) {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            return NodeResult::Exhausted;
        }

        let pick = lock(&self.pc).pick_branch(&x, &std.col_is_int);
        match pick {
            None => {
                // Integral LP optimum: offer as shared incumbent.
                let mut vals = expand(std, &x);
                for (i, v) in vals.iter_mut().enumerate() {
                    if ctx.model.vars[i].kind != VarKind::Continuous {
                        *v = v.round();
                    }
                }
                self.offer(vals, IncumbentSource::LpIntegral);
                NodeResult::Exhausted
            }
            Some((c, _)) => {
                // Heuristic: round and repair on the same global cadence as
                // the sequential engine (approximate under concurrency).
                if config.heuristic_period > 0 && explored_now % config.heuristic_period == 1 {
                    if let Some(vals) = crate::heur::round_and_repair(
                        &std.lp,
                        lb_buf,
                        ub_buf,
                        &std.col_is_int,
                        &x,
                        &ctx.lp_opts,
                    ) {
                        let full = expand(std, &vals);
                        if ctx.model.is_feasible(&full, FEAS_TOL * 10.0) {
                            self.offer(full, IncumbentSource::Heuristic);
                        }
                    }
                }
                self.branched.fetch_add(1, Ordering::Relaxed);
                debug_assert!(
                    lp_obj.is_finite(),
                    "child node bound must be finite, got {lp_obj}"
                );
                let xi = x[c];
                let down = xi.floor();
                let up = xi.ceil();
                let depth = node.depth + 1;
                let child = |is_lower: bool, value: f64, dist: f64| ParNode {
                    bound: lp_obj,
                    depth,
                    path: Some(Arc::new(PathNode {
                        parent: node.path.clone(),
                        delta: BoundDelta {
                            col: c as u32,
                            is_lower,
                            value,
                        },
                    })),
                    branch: Some((c, is_lower, lp_obj, dist)),
                    basis: child_basis.clone(),
                };
                NodeResult::Children(child(false, down, xi - down), child(true, up, up - xi))
            }
        }
    }
}

fn worker(shared: &Shared<'_, '_>) {
    let ncols = shared.ctx.std.lp.num_cols;
    let mut lb_buf = vec![0.0; ncols];
    let mut ub_buf = vec![0.0; ncols];
    let mut checker = BudgetChecker::new(shared.ctx.budget.clone(), BUDGET_CHECK_AMORTIZATION);
    while let Some(node) = shared.acquire(&mut checker) {
        let bound = node.bound;
        let result = shared.process(&node, &mut lb_buf, &mut ub_buf);
        shared.release(bound, result);
    }
}

/// Runs the worker-pool search. Called by [`branch::solve`](crate::branch)
/// when `config.jobs > 1`; inherits the prepared context plus any
/// warm-start incumbent/timeline.
pub(crate) fn search(
    ctx: &SearchCtx<'_>,
    incumbent: Option<Incumbent>,
    timeline: Vec<IncumbentEvent>,
) -> Result<SearchOutcome, SolveError> {
    let jobs = ctx.config.jobs.max(2);
    let mut heap = BinaryHeap::new();
    heap.push(ParNode {
        bound: f64::NEG_INFINITY,
        depth: 0,
        path: None,
        branch: None,
        // The root LP was already solved (and cut) in `prepare`; whichever
        // worker claims the root dual-warm-restarts from its basis.
        basis: ctx.root_basis.clone(),
    });
    let shared = Shared {
        ctx,
        q: Mutex::new(QueueState {
            heap,
            inflight: Vec::new(),
            active: 0,
            stop: None,
        }),
        cv: Condvar::new(),
        inc_bits: AtomicU64::new(key_of(
            incumbent.as_ref().map_or(f64::INFINITY, |(_, o, _)| *o),
        )),
        inc: Mutex::new(IncSlot {
            best: incumbent,
            timeline,
        }),
        pc: Mutex::new(PcTables::new(ctx.std.lp.num_structural)),
        explored: AtomicU64::new(0),
        pruned: AtomicU64::new(0),
        branched: AtomicU64::new(0),
        lp_iters: AtomicU64::new(0),
        warm_attempts: AtomicU64::new(0),
        warm_hits: AtomicU64::new(0),
        refactors: AtomicU64::new(0),
        ftran: AtomicU64::new(0),
        ftran_hyper: AtomicU64::new(0),
        btran: AtomicU64::new(0),
        btran_hyper: AtomicU64::new(0),
    };

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| worker(&shared));
        }
    });

    let q = shared.q.into_inner().unwrap_or_else(|p| p.into_inner());
    let slot = shared.inc.into_inner().unwrap_or_else(|p| p.into_inner());
    let counters = SearchCounters {
        explored: shared.explored.load(Ordering::Relaxed),
        pruned: shared.pruned.load(Ordering::Relaxed),
        branched: shared.branched.load(Ordering::Relaxed),
        lp_iters: shared.lp_iters.load(Ordering::Relaxed),
        warm_attempts: shared.warm_attempts.load(Ordering::Relaxed),
        warm_hits: shared.warm_hits.load(Ordering::Relaxed),
        refactors: shared.refactors.load(Ordering::Relaxed),
        kernel: KernelStats {
            ftran: shared.ftran.load(Ordering::Relaxed),
            ftran_hyper: shared.ftran_hyper.load(Ordering::Relaxed),
            btran: shared.btran.load(Ordering::Relaxed),
            btran_hyper: shared.btran_hyper.load(Ordering::Relaxed),
        },
    };

    let mut saw_unbounded_root = false;
    let (limit_hit, mut best_open_bound) = match q.stop {
        None => (None, f64::NEG_INFINITY),
        Some(Stop::Limit(msg, bound)) => (Some(msg), bound),
        Some(Stop::UnboundedRoot) => {
            saw_unbounded_root = true;
            (None, f64::NEG_INFINITY)
        }
        Some(Stop::Numerical(msg)) => return Err(SolveError::Numerical(msg)),
    };
    // The reported bound must cover everything still open when the pool
    // stopped: the trigger node, the remaining heap, and (defensively)
    // anything that was in flight.
    if limit_hit.is_some() {
        if let Some(top) = q.heap.peek() {
            best_open_bound = best_open_bound.min(top.bound);
        }
        for &b in &q.inflight {
            best_open_bound = best_open_bound.min(b);
        }
    }

    Ok(SearchOutcome {
        incumbent: slot.best,
        timeline: slot.timeline,
        counters,
        limit_hit,
        best_open_bound,
        saw_unbounded_root,
    })
}

#[cfg(test)]
mod tests {
    use crate::model::Model;
    use crate::{BranchConfig, Cmp, LinExpr, Sense, SolveError};

    fn knapsack() -> Model {
        let mut m = Model::new("knap");
        let items: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        let w = [2.0, 3.0, 4.0, 5.0, 7.0, 8.0];
        let v = [3.0, 4.0, 5.0, 6.0, 9.0, 10.0];
        let weight: LinExpr = items.iter().zip(w.iter()).map(|(&x, &wi)| wi * x).sum();
        let value: LinExpr = items.iter().zip(v.iter()).map(|(&x, &vi)| vi * x).sum();
        m.add_constraint("cap", weight, Cmp::Le, 11.0);
        m.set_objective(value, Sense::Maximize);
        m
    }

    #[test]
    fn key_mapping_is_order_preserving() {
        use super::{key_of, val_of};
        let xs = [
            f64::NEG_INFINITY,
            -1.0e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.75,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(key_of(w[0]) <= key_of(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &x in &xs {
            assert_eq!(val_of(key_of(x)).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn parallel_matches_sequential_objective() {
        for jobs in [2, 4] {
            let m = knapsack();
            let cfg = BranchConfig {
                jobs,
                ..BranchConfig::default()
            };
            let s = m.solve_with(&cfg).unwrap();
            assert!(s.is_optimal(), "jobs={jobs}");
            assert!(
                (s.objective() - 14.0).abs() < 1e-6,
                "jobs={jobs}: {}",
                s.objective()
            );
            assert_eq!(s.jobs(), jobs);
            assert!(s.certificate().is_some());
        }
    }

    #[test]
    fn parallel_detects_infeasibility() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 1.0);
        m.add_constraint("c", 2.0 * x, Cmp::Eq, 1.0);
        let cfg = BranchConfig {
            jobs: 4,
            ..BranchConfig::default()
        };
        assert_eq!(m.solve_with(&cfg).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn parallel_detects_unbounded_root() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x), Sense::Maximize);
        let cfg = BranchConfig {
            jobs: 2,
            ..BranchConfig::default()
        };
        assert_eq!(m.solve_with(&cfg).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn parallel_honours_dead_budget_with_warm_start() {
        use gomil_budget::Budget;
        use std::time::Duration;
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Ge, 5.0);
        m.set_objective(LinExpr::from(x), Sense::Minimize);
        let cfg = BranchConfig {
            jobs: 4,
            budget: Budget::with_limit(Duration::ZERO),
            time_limit: None,
            initial: Some(vec![4.0]),
            ..BranchConfig::default()
        };
        let s = m.solve_with(&cfg).unwrap();
        assert_eq!(s.status(), crate::SolveStatus::Feasible);
        assert_eq!(s.int_value(x), 4);
    }

    #[test]
    fn parallel_cancellation_stops_the_pool() {
        use gomil_budget::Budget;
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Ge, 5.0);
        m.set_objective(LinExpr::from(x), Sense::Minimize);
        let budget = Budget::unlimited();
        budget.cancel();
        let cfg = BranchConfig {
            jobs: 8,
            budget,
            time_limit: None,
            ..BranchConfig::default()
        };
        match m.solve_with(&cfg).unwrap_err() {
            SolveError::Limit(msg) => assert!(msg.contains("cancelled"), "{msg}"),
            other => panic!("unexpected: {other}"),
        }
    }
}
