//! Bound-tightening presolve.
//!
//! Before branch and bound, the solver propagates constraint activity
//! bounds to tighten variable bounds, rounds integer bounds inward, and
//! detects trivially infeasible or redundant rows. On the GOMIL models this
//! fixes a large fraction of variables outright (e.g. compressor counts in
//! columns whose bit count is too small for any compressor), which directly
//! shrinks the standardized LP: fixed columns are compressed out before the
//! sparse column store is built, so they cost nothing in pricing or FTRAN.

use crate::model::{Cmp, Model, VarKind};
use crate::simplex::FEAS_TOL;
use gomil_budget::Budget;

/// Result of presolving a model.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// Tightened lower bounds, indexed by variable index.
    pub lb: Vec<f64>,
    /// Tightened upper bounds, indexed by variable index.
    pub ub: Vec<f64>,
    /// Rows proven redundant under the tightened bounds (always satisfied).
    pub redundant: Vec<bool>,
    /// Whether the model was proven infeasible.
    pub infeasible: bool,
    /// Number of variables fixed (`lb == ub`) after tightening.
    pub fixed: usize,
}

/// Runs activity-based bound tightening to a fixpoint (bounded passes).
pub fn presolve(model: &Model) -> Presolved {
    presolve_with_budget(model, &Budget::unlimited())
}

/// Like [`presolve`], but stops tightening early (keeping whatever bounds
/// it has derived so far, which are always valid) once `budget` expires.
pub fn presolve_with_budget(model: &Model, budget: &Budget) -> Presolved {
    let n = model.num_vars();
    let mut lb: Vec<f64> = (0..n).map(|i| model.vars[i].lb).collect();
    let mut ub: Vec<f64> = (0..n).map(|i| model.vars[i].ub).collect();

    // Integer bounds start rounded inward.
    for (i, v) in model.vars.iter().enumerate() {
        if v.kind != VarKind::Continuous {
            lb[i] = (lb[i] - FEAS_TOL).ceil();
            ub[i] = (ub[i] + FEAS_TOL).floor();
        }
    }

    let mut redundant = vec![false; model.num_constraints()];
    let mut infeasible = false;

    'outer: for _pass in 0..20 {
        if budget.exhausted() {
            break;
        }
        let mut changed = false;
        for (ci, c) in model.constraints.iter().enumerate() {
            if redundant[ci] {
                continue;
            }
            // Treat the row as one or two `expr ≤ rhs` forms.
            let forms: &[(f64, f64)] = match c.cmp {
                Cmp::Le => &[(1.0, 1.0)],
                Cmp::Ge => &[(-1.0, -1.0)],
                Cmp::Eq => &[(1.0, 1.0), (-1.0, -1.0)],
            };
            for &(sign, _) in forms {
                let rhs = sign * c.rhs;
                // Minimum activity of sign·expr.
                let mut min_act = 0.0f64;
                let mut max_act = 0.0f64;
                for (v, coef) in c.expr.iter() {
                    let a = sign * coef;
                    let (l, u) = (lb[v.index()], ub[v.index()]);
                    if a > 0.0 {
                        min_act += a * l;
                        max_act += a * u;
                    } else {
                        min_act += a * u;
                        max_act += a * l;
                    }
                }
                if min_act > rhs + FEAS_TOL {
                    infeasible = true;
                    break 'outer;
                }
                if c.cmp != Cmp::Eq && max_act <= rhs + FEAS_TOL && max_act.is_finite() {
                    redundant[ci] = true;
                    continue;
                }
                if !min_act.is_finite() {
                    continue; // cannot propagate through infinite activity
                }
                // Tighten each variable: a·x ≤ rhs − (min_act − its own
                // minimal contribution).
                for (v, coef) in c.expr.iter() {
                    let a = sign * coef;
                    let i = v.index();
                    let (l, u) = (lb[i], ub[i]);
                    let own_min = if a > 0.0 { a * l } else { a * u };
                    let slack = rhs - (min_act - own_min);
                    let is_int = model.vars[i].kind != VarKind::Continuous;
                    if a > 0.0 {
                        let mut new_ub = slack / a;
                        if is_int {
                            new_ub = (new_ub + FEAS_TOL).floor();
                        }
                        if new_ub < u - 1e-9 {
                            ub[i] = new_ub;
                            changed = true;
                        }
                    } else {
                        let mut new_lb = slack / a;
                        if is_int {
                            new_lb = (new_lb - FEAS_TOL).ceil();
                        }
                        if new_lb > l + 1e-9 {
                            lb[i] = new_lb;
                            changed = true;
                        }
                    }
                    if lb[i] > ub[i] + FEAS_TOL {
                        infeasible = true;
                        break 'outer;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let fixed = (0..n)
        .filter(|&i| (ub[i] - lb[i]).abs() <= FEAS_TOL && lb[i].is_finite())
        .count();
    Presolved {
        lb,
        ub,
        redundant,
        infeasible,
        fixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Model};

    #[test]
    fn tightens_upper_bound_from_le_row() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 100.0);
        let y = m.add_continuous("y", 2.0, 100.0);
        m.add_constraint("c", x + y, Cmp::Le, 10.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert_eq!(p.ub[x.index()], 8.0);
        assert_eq!(p.ub[y.index()], 10.0);
    }

    #[test]
    fn rounds_integer_bounds_inward() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Le, 7.0);
        let p = presolve(&m);
        assert_eq!(p.ub[x.index()], 3.0);
    }

    #[test]
    fn detects_infeasible_activity() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x), Cmp::Ge, 2.0);
        let p = presolve(&m);
        assert!(p.infeasible);
    }

    #[test]
    fn fixes_binary_through_chained_rows() {
        // b1 >= 1 forces b1 = 1; b1 + b2 <= 1 then forces b2 = 0.
        let mut m = Model::new("t");
        let b1 = m.add_binary("b1");
        let b2 = m.add_binary("b2");
        m.add_constraint("f", LinExpr::from(b1), Cmp::Ge, 1.0);
        m.add_constraint("x", b1 + b2, Cmp::Le, 1.0);
        let p = presolve(&m);
        assert_eq!((p.lb[b1.index()], p.ub[b1.index()]), (1.0, 1.0));
        assert_eq!((p.lb[b2.index()], p.ub[b2.index()]), (0.0, 0.0));
        assert_eq!(p.fixed, 2);
    }

    #[test]
    fn marks_redundant_rows() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x), Cmp::Le, 5.0);
        let p = presolve(&m);
        assert!(p.redundant[0]);
    }

    #[test]
    fn equality_propagates_both_directions() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 100.0);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.add_constraint("c", x + y, Cmp::Eq, 5.0);
        let p = presolve(&m);
        // x = 5 − y ∈ [2, 5].
        assert_eq!(p.lb[x.index()], 2.0);
        assert_eq!(p.ub[x.index()], 5.0);
    }
}
