//! Bound-tightening presolve.
//!
//! Before branch and bound, the solver propagates constraint activity
//! bounds to tighten variable bounds, rounds integer bounds inward, and
//! detects trivially infeasible or redundant rows. On the GOMIL models this
//! fixes a large fraction of variables outright (e.g. compressor counts in
//! columns whose bit count is too small for any compressor), which directly
//! shrinks the standardized LP: fixed columns are compressed out before the
//! sparse column store is built, so they cost nothing in pricing or FTRAN.
//!
//! Two MIP-grade reductions run on top of the activity fixpoint:
//!
//! * **Binary probing** tentatively fixes a 0/1 variable to each of its two
//!   values and propagates. If one branch is infeasible the variable is
//!   fixed to the other value; if both survive, bounds implied by *both*
//!   branches become global bounds. Probing is capped by a work budget so
//!   it stays cheap on wide models.
//! * **Coefficient strengthening** tightens the coefficient of an integer
//!   variable on a `≤` row when the row cannot be binding unless the
//!   variable sits at its upper bound. The strengthened row is valid for
//!   every integer point of the original model and implies the original
//!   row within the variable bounds, so certification against the original
//!   model is unaffected while the LP relaxation gets strictly tighter.

use crate::expr::{LinExpr, Var};
use crate::model::{Cmp, Model, VarKind};
use crate::simplex::FEAS_TOL;
use gomil_budget::Budget;
use std::collections::VecDeque;

/// Maximum number of binary variables probed per presolve call.
const PROBE_MAX_VARS: usize = 256;
/// Total row-term visits allowed across all probes (keeps probing bounded
/// on wide models where a single propagation can cascade).
const PROBE_WORK_CAP: u64 = 5_000_000;

/// Switches for the optional presolve reductions. The defaults enable
/// everything; the branch-and-bound numerical retry and A/B benchmarks
/// turn individual reductions off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresolveOpts {
    /// Probe binary variables (tentative fix + propagate) to harvest
    /// fixings and implied bounds.
    pub probing: bool,
    /// Strengthen integer coefficients on `≤` rows.
    pub strengthen: bool,
}

impl Default for PresolveOpts {
    fn default() -> Self {
        PresolveOpts {
            probing: true,
            strengthen: true,
        }
    }
}

/// Result of presolving a model.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// Tightened lower bounds, indexed by variable index.
    pub lb: Vec<f64>,
    /// Tightened upper bounds, indexed by variable index.
    pub ub: Vec<f64>,
    /// Rows proven redundant under the tightened bounds (always satisfied).
    pub redundant: Vec<bool>,
    /// Whether the model was proven infeasible.
    pub infeasible: bool,
    /// Number of variables fixed (`lb == ub`) after tightening.
    pub fixed: usize,
    /// Rows whose coefficients were strengthened; the replacement is a `≤`
    /// row that is valid for every integer point and implies the original
    /// row within the variable bounds. Sorted by row index.
    pub strengthened: Vec<StrengthenedRow>,
}

/// One coefficient-strengthened row: `(row index, replacement terms,
/// replacement rhs)`.
pub type StrengthenedRow = (usize, Vec<(Var, f64)>, f64);

/// Runs activity-based bound tightening to a fixpoint (bounded passes).
pub fn presolve(model: &Model) -> Presolved {
    presolve_with_budget(model, &Budget::unlimited())
}

/// Like [`presolve`], but stops tightening early (keeping whatever bounds
/// it has derived so far, which are always valid) once `budget` expires.
pub fn presolve_with_budget(model: &Model, budget: &Budget) -> Presolved {
    presolve_with_opts(model, budget, &PresolveOpts::default())
}

/// What happened when one row was propagated against the current bounds.
enum RowProp {
    /// The row's minimum activity exceeds its rhs: no assignment exists.
    Infeasible,
    /// The row's maximum activity is within its rhs: always satisfied.
    Redundant,
    /// Normal propagation; the flag says whether any bound moved.
    Done(bool),
}

/// Propagates a single `sign·expr ≤ sign·rhs` form, tightening `lb`/`ub`
/// in place. `on_change(i, old_lb, old_ub)` fires before each mutation so
/// probing can record an undo trail.
#[allow(clippy::too_many_arguments)]
fn tighten_form(
    model: &Model,
    expr: &LinExpr,
    sign: f64,
    rhs: f64,
    is_eq: bool,
    lb: &mut [f64],
    ub: &mut [f64],
    mut on_change: impl FnMut(usize, f64, f64),
) -> RowProp {
    let rhs = sign * rhs;
    let mut min_act = 0.0f64;
    let mut max_act = 0.0f64;
    for (v, coef) in expr.iter() {
        let a = sign * coef;
        let (l, u) = (lb[v.index()], ub[v.index()]);
        if a > 0.0 {
            min_act += a * l;
            max_act += a * u;
        } else {
            min_act += a * u;
            max_act += a * l;
        }
    }
    if min_act > rhs + FEAS_TOL {
        return RowProp::Infeasible;
    }
    if !is_eq && max_act <= rhs + FEAS_TOL && max_act.is_finite() {
        return RowProp::Redundant;
    }
    if !min_act.is_finite() {
        return RowProp::Done(false); // cannot propagate through infinite activity
    }
    let mut changed = false;
    // Tighten each variable: a·x ≤ rhs − (min_act − its own minimal
    // contribution).
    for (v, coef) in expr.iter() {
        let a = sign * coef;
        let i = v.index();
        let (l, u) = (lb[i], ub[i]);
        let own_min = if a > 0.0 { a * l } else { a * u };
        let slack = rhs - (min_act - own_min);
        let is_int = model.vars[i].kind != VarKind::Continuous;
        if a > 0.0 {
            let mut new_ub = slack / a;
            if is_int {
                new_ub = (new_ub + FEAS_TOL).floor();
            }
            if new_ub < u - 1e-9 {
                on_change(i, lb[i], ub[i]);
                ub[i] = new_ub;
                changed = true;
            }
        } else {
            let mut new_lb = slack / a;
            if is_int {
                new_lb = (new_lb - FEAS_TOL).ceil();
            }
            if new_lb > l + 1e-9 {
                on_change(i, lb[i], ub[i]);
                lb[i] = new_lb;
                changed = true;
            }
        }
        if lb[i] > ub[i] + FEAS_TOL {
            return RowProp::Infeasible;
        }
    }
    RowProp::Done(changed)
}

/// The `(sign, is_eq)` forms a row decomposes into for propagation.
fn forms_of(cmp: Cmp) -> &'static [(f64, bool)] {
    match cmp {
        Cmp::Le => &[(1.0, false)],
        Cmp::Ge => &[(-1.0, false)],
        Cmp::Eq => &[(1.0, true), (-1.0, true)],
    }
}

/// Runs the activity fixpoint over all rows. Returns `true` if the model
/// was proven infeasible.
fn fixpoint(
    model: &Model,
    lb: &mut [f64],
    ub: &mut [f64],
    redundant: &mut [bool],
    budget: &Budget,
    passes: usize,
) -> bool {
    for _pass in 0..passes {
        if budget.exhausted() {
            break;
        }
        let mut changed = false;
        for (ci, c) in model.constraints.iter().enumerate() {
            if redundant[ci] {
                continue;
            }
            for &(sign, is_eq) in forms_of(c.cmp) {
                match tighten_form(model, &c.expr, sign, c.rhs, is_eq, lb, ub, |_, _, _| {}) {
                    RowProp::Infeasible => return true,
                    RowProp::Redundant => {
                        redundant[ci] = true;
                        break;
                    }
                    RowProp::Done(c) => changed |= c,
                }
            }
        }
        if !changed {
            break;
        }
    }
    false
}

/// Tentatively fixes variable `probe` to `val`, propagates through the
/// rows touching each changed variable, and returns the bounds implied for
/// every variable the propagation moved (`None` when the branch is
/// infeasible). Bounds are restored before returning either way.
#[allow(clippy::too_many_arguments)]
fn probe_one(
    model: &Model,
    lb: &mut [f64],
    ub: &mut [f64],
    redundant: &[bool],
    rows_of: &[Vec<u32>],
    probe: usize,
    val: f64,
    work: &mut u64,
) -> Option<Vec<(usize, f64, f64)>> {
    let mut trail: Vec<(usize, f64, f64)> = vec![(probe, lb[probe], ub[probe])];
    lb[probe] = val;
    ub[probe] = val;

    let mut queue: VecDeque<u32> = rows_of[probe].iter().copied().collect();
    let mut in_queue = vec![false; model.num_constraints()];
    for &r in &queue {
        in_queue[r as usize] = true;
    }
    let mut infeasible = false;
    while let Some(ci) = queue.pop_front() {
        in_queue[ci as usize] = false;
        if *work > PROBE_WORK_CAP {
            break; // partial propagation still yields valid implications
        }
        let c = &model.constraints[ci as usize];
        let mut touched: Vec<usize> = Vec::new();
        for &(sign, is_eq) in forms_of(c.cmp) {
            *work += c.expr.iter().count() as u64;
            match tighten_form(model, &c.expr, sign, c.rhs, is_eq, lb, ub, |i, l, u| {
                trail.push((i, l, u));
                touched.push(i);
            }) {
                RowProp::Infeasible => infeasible = true,
                RowProp::Redundant => break,
                RowProp::Done(_) => {}
            }
            if infeasible {
                break;
            }
        }
        if infeasible {
            break;
        }
        for i in touched {
            for &r in &rows_of[i] {
                if !in_queue[r as usize] && !redundant[r as usize] && r != ci {
                    in_queue[r as usize] = true;
                    queue.push_back(r);
                }
            }
        }
    }

    let result = if infeasible {
        None
    } else {
        // First-occurrence dedup of the trail gives the changed set; the
        // current bounds hold this branch's implications.
        let mut emitted: Vec<usize> = Vec::with_capacity(trail.len());
        let mut out: Vec<(usize, f64, f64)> = Vec::with_capacity(trail.len());
        for &(i, _, _) in &trail {
            if !emitted.contains(&i) {
                emitted.push(i);
                out.push((i, lb[i], ub[i]));
            }
        }
        Some(out)
    };

    for &(i, l, u) in trail.iter().rev() {
        lb[i] = l;
        ub[i] = u;
    }
    result
}

/// Probes free binaries; fixes variables whose branches collapse and
/// harvests bounds implied by both branches. Returns `true` if the model
/// was proven infeasible (both branches of some binary die).
fn probe_binaries(
    model: &Model,
    lb: &mut [f64],
    ub: &mut [f64],
    redundant: &[bool],
    budget: &Budget,
    changed: &mut bool,
) -> bool {
    let n = model.num_vars();
    let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (ci, c) in model.constraints.iter().enumerate() {
        if redundant[ci] {
            continue;
        }
        for (v, _) in c.expr.iter() {
            rows_of[v.index()].push(ci as u32);
        }
    }
    let candidates: Vec<usize> = (0..n)
        .filter(|&i| model.vars[i].kind != VarKind::Continuous && lb[i] == 0.0 && ub[i] == 1.0)
        .take(PROBE_MAX_VARS)
        .collect();

    let mut work = 0u64;
    for &i in &candidates {
        if work > PROBE_WORK_CAP || budget.exhausted() {
            break;
        }
        if lb[i] != 0.0 || ub[i] != 1.0 {
            continue; // fixed by an earlier probe
        }
        let down = probe_one(model, lb, ub, redundant, &rows_of, i, 0.0, &mut work);
        let up = probe_one(model, lb, ub, redundant, &rows_of, i, 1.0, &mut work);
        match (down, up) {
            (None, None) => return true,
            (None, Some(_)) => {
                lb[i] = 1.0;
                *changed = true;
            }
            (Some(_), None) => {
                ub[i] = 0.0;
                *changed = true;
            }
            (Some(d0), Some(d1)) => {
                // A bound holds globally only if *both* branches imply it;
                // variables untouched by a branch keep their global bound
                // there, so only the intersection of the changed sets can
                // tighten.
                for &(j, l0, u0) in &d0 {
                    let Some(&(_, l1, u1)) = d1.iter().find(|&&(k, _, _)| k == j) else {
                        continue;
                    };
                    let nl = l0.min(l1);
                    let nu = u0.max(u1);
                    if nl > lb[j] + 1e-9 {
                        lb[j] = nl;
                        *changed = true;
                    }
                    if nu < ub[j] - 1e-9 {
                        ub[j] = nu;
                        *changed = true;
                    }
                    if lb[j] > ub[j] + FEAS_TOL {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Strengthens integer coefficients on non-redundant `≤` rows.
///
/// For a row `Σ aⱼxⱼ ≤ b` with integer `x_k`, `a_k > 0`, finite `u_k` and
/// finite maximum activity `M` of the other terms, let
/// `d = min(b − M − a_k·(u_k − 1), a_k)`. When `d > 0` the row can only be
/// binding if `x_k = u_k`, and `(a_k − d)·x_k + Σ_{j≠k} aⱼxⱼ ≤ b − d·u_k`
/// is valid for every integer point and implies the original row whenever
/// `x_k ≤ u_k`.
fn strengthen_le_rows(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    redundant: &[bool],
) -> Vec<StrengthenedRow> {
    let mut out = Vec::new();
    for (ci, c) in model.constraints.iter().enumerate() {
        if c.cmp != Cmp::Le || redundant[ci] {
            continue;
        }
        let mut terms: Vec<(Var, f64)> = c.expr.iter().collect();
        let mut rhs = c.rhs;
        let mut any = false;
        for k in 0..terms.len() {
            let (vk, ak) = terms[k];
            let i = vk.index();
            if ak <= 0.0
                || model.vars[i].kind == VarKind::Continuous
                || !ub[i].is_finite()
                || ub[i] - lb[i] <= FEAS_TOL
            {
                continue;
            }
            let mut max_others = 0.0f64;
            for (j, &(vj, aj)) in terms.iter().enumerate() {
                if j == k {
                    continue;
                }
                let (l, u) = (lb[vj.index()], ub[vj.index()]);
                max_others += if aj > 0.0 { aj * u } else { aj * l };
            }
            if !max_others.is_finite() {
                continue;
            }
            let d = (rhs - max_others - ak * (ub[i] - 1.0)).min(ak);
            if d > FEAS_TOL {
                terms[k].1 = ak - d;
                rhs -= d * ub[i];
                any = true;
            }
        }
        if any {
            terms.retain(|&(_, a)| a != 0.0);
            out.push((ci, terms, rhs));
        }
    }
    out
}

/// Full presolve with explicit reduction switches: the activity fixpoint,
/// then (optionally) binary probing with a re-run of the fixpoint when it
/// tightened anything, then (optionally) coefficient strengthening.
pub fn presolve_with_opts(model: &Model, budget: &Budget, opts: &PresolveOpts) -> Presolved {
    let n = model.num_vars();
    let mut lb: Vec<f64> = (0..n).map(|i| model.vars[i].lb).collect();
    let mut ub: Vec<f64> = (0..n).map(|i| model.vars[i].ub).collect();

    // Integer bounds start rounded inward.
    for (i, v) in model.vars.iter().enumerate() {
        if v.kind != VarKind::Continuous {
            lb[i] = (lb[i] - FEAS_TOL).ceil();
            ub[i] = (ub[i] + FEAS_TOL).floor();
        }
    }

    let mut redundant = vec![false; model.num_constraints()];
    let mut infeasible = fixpoint(model, &mut lb, &mut ub, &mut redundant, budget, 20);

    if !infeasible && opts.probing && !budget.exhausted() {
        let mut changed = false;
        infeasible = probe_binaries(model, &mut lb, &mut ub, &redundant, budget, &mut changed);
        if !infeasible && changed {
            infeasible = fixpoint(model, &mut lb, &mut ub, &mut redundant, budget, 20);
        }
    }

    let strengthened = if !infeasible && opts.strengthen {
        strengthen_le_rows(model, &lb, &ub, &redundant)
    } else {
        Vec::new()
    };

    let fixed = (0..n)
        .filter(|&i| (ub[i] - lb[i]).abs() <= FEAS_TOL && lb[i].is_finite())
        .count();
    Presolved {
        lb,
        ub,
        redundant,
        infeasible,
        fixed,
        strengthened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Model};

    #[test]
    fn tightens_upper_bound_from_le_row() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 100.0);
        let y = m.add_continuous("y", 2.0, 100.0);
        m.add_constraint("c", x + y, Cmp::Le, 10.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert_eq!(p.ub[x.index()], 8.0);
        assert_eq!(p.ub[y.index()], 10.0);
    }

    #[test]
    fn rounds_integer_bounds_inward() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Le, 7.0);
        let p = presolve(&m);
        assert_eq!(p.ub[x.index()], 3.0);
    }

    #[test]
    fn detects_infeasible_activity() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x), Cmp::Ge, 2.0);
        let p = presolve(&m);
        assert!(p.infeasible);
    }

    #[test]
    fn fixes_binary_through_chained_rows() {
        // b1 >= 1 forces b1 = 1; b1 + b2 <= 1 then forces b2 = 0.
        let mut m = Model::new("t");
        let b1 = m.add_binary("b1");
        let b2 = m.add_binary("b2");
        m.add_constraint("f", LinExpr::from(b1), Cmp::Ge, 1.0);
        m.add_constraint("x", b1 + b2, Cmp::Le, 1.0);
        let p = presolve(&m);
        assert_eq!((p.lb[b1.index()], p.ub[b1.index()]), (1.0, 1.0));
        assert_eq!((p.lb[b2.index()], p.ub[b2.index()]), (0.0, 0.0));
        assert_eq!(p.fixed, 2);
    }

    #[test]
    fn marks_redundant_rows() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x), Cmp::Le, 5.0);
        let p = presolve(&m);
        assert!(p.redundant[0]);
    }

    #[test]
    fn equality_propagates_both_directions() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 100.0);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.add_constraint("c", x + y, Cmp::Eq, 5.0);
        let p = presolve(&m);
        // x = 5 − y ∈ [2, 5].
        assert_eq!(p.lb[x.index()], 2.0);
        assert_eq!(p.ub[x.index()], 5.0);
    }

    #[test]
    fn probing_fixes_binary_whose_branch_is_infeasible() {
        // With b = 0 the equality x + 2b = 2 forces x = 2 > ub(x) = 1, so
        // probing must fix b = 1 (plain activity propagation cannot: both
        // branch values keep the activity range overlapping the rhs).
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        m.add_constraint("c", x + 2.0 * b, Cmp::Eq, 2.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert_eq!((p.lb[b.index()], p.ub[b.index()]), (1.0, 1.0));
    }

    #[test]
    fn probing_detects_infeasibility_when_both_branches_die() {
        // b = 0 forces x = 3 (impossible, ub = 1); b = 1 forces x = -1
        // (impossible, lb = 0).
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        m.add_constraint("c", x + 4.0 * b, Cmp::Eq, 3.0);
        let p = presolve(&m);
        assert!(p.infeasible);
    }

    #[test]
    fn probing_harvests_bounds_implied_by_both_branches() {
        // y − b ≥ 2 and y + b ≥ 3: branch b=0 gives y ≥ 3, branch b=1
        // gives y ≥ 3, so y ≥ 3 globally even though each row alone only
        // proves y ≥ 2.
        let mut m = Model::new("t");
        let y = m.add_continuous("y", 0.0, 10.0);
        let b = m.add_binary("b");
        m.add_constraint("c1", y - b, Cmp::Ge, 2.0);
        m.add_constraint("c2", y + b, Cmp::Ge, 3.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert!(p.lb[y.index()] >= 3.0 - 1e-9, "lb = {}", p.lb[y.index()]);
        let off = presolve_with_opts(
            &m,
            &Budget::unlimited(),
            &PresolveOpts {
                probing: false,
                strengthen: false,
            },
        );
        assert!(off.lb[y.index()] < 3.0, "control: probing did the work");
    }

    #[test]
    fn dead_budget_keeps_original_bounds_and_stays_valid() {
        // With an exhausted budget neither the fixpoint loop nor probing
        // runs; the result must still be valid (no false infeasibility,
        // no bogus tightening beyond integer rounding).
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Le, 7.0);
        let b = Budget::with_limit(std::time::Duration::ZERO);
        let p = presolve_with_budget(&m, &b);
        assert!(!p.infeasible);
        assert_eq!(p.ub[x.index()], 10.0, "no passes ran under a dead budget");
    }

    #[test]
    fn dead_budget_never_claims_infeasibility() {
        // This model IS infeasible, but only probing can prove it (see
        // `probing_detects_infeasibility_when_both_branches_die`). With a
        // dead budget no pass runs, so presolve must stay conservative and
        // leave detection to the solver — a false `infeasible` under
        // budget pressure would wrongly prune a live subtree.
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        m.add_constraint("c", x + 4.0 * b, Cmp::Eq, 3.0);
        let dead = Budget::with_limit(std::time::Duration::ZERO);
        let p = presolve_with_budget(&m, &dead);
        assert!(!p.infeasible, "dead budget must not guess infeasibility");
        let live = presolve(&m);
        assert!(live.infeasible, "control: a live budget does prove it");
    }

    #[test]
    fn dead_budget_marks_no_rows_redundant() {
        // Redundancy marks let the solver drop rows, so they are only safe
        // when the activity pass actually ran.
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x), Cmp::Le, 5.0);
        let dead = Budget::with_limit(std::time::Duration::ZERO);
        let p = presolve_with_budget(&m, &dead);
        assert!(!p.redundant[0]);
        assert!(presolve(&m).redundant[0], "control: live budget marks it");
    }

    #[test]
    fn binding_rows_are_never_marked_redundant() {
        // x + y <= 10 with x, y in [0, 8]: max activity 16 > 10, so the
        // row constrains the feasible set and must survive presolve.
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 8.0);
        let y = m.add_continuous("y", 0.0, 8.0);
        m.add_constraint("c", x + y, Cmp::Le, 10.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert!(!p.redundant[0]);
    }

    #[test]
    fn strengthens_integer_coefficient_on_le_row() {
        // 3x + y <= 10 with x int in [0,3], y in [0,2]: max_others = 2, so
        // d = 10 - 2 - 3·2 = 2 > 0 ⇒ x's coefficient tightens to 1 and the
        // rhs to 10 - 2·3 = 4 (row becomes x + y <= 4).
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_constraint("c", 3.0 * x + y, Cmp::Le, 10.0);
        let p = presolve(&m);
        assert_eq!(p.strengthened.len(), 1);
        let (row, terms, rhs) = &p.strengthened[0];
        assert_eq!(*row, 0);
        assert_eq!(*rhs, 4.0);
        let ax = terms.iter().find(|(v, _)| *v == x).unwrap().1;
        let ay = terms.iter().find(|(v, _)| *v == y).unwrap().1;
        assert_eq!((ax, ay), (1.0, 1.0));
        // The strengthened row keeps exactly the original integer points.
        for xi in 0..=3i32 {
            for yi in [0.0, 1.0, 2.0] {
                let orig = 3.0 * f64::from(xi) + yi <= 10.0 + 1e-9;
                let tight = f64::from(xi) + yi <= 4.0 + 1e-9;
                assert_eq!(orig, tight, "x={xi} y={yi}");
            }
        }
    }

    #[test]
    fn strengthening_leaves_tight_rows_alone() {
        // x + y <= 2 with both in [0,2]: d = 2 - 2 - 1·(2-1) = -1 ⇒ no-op.
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 2.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_constraint("c", x + y, Cmp::Le, 2.0);
        let p = presolve(&m);
        assert!(p.strengthened.is_empty());
    }
}
