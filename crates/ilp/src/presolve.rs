//! Bound-tightening presolve.
//!
//! Before branch and bound, the solver propagates constraint activity
//! bounds to tighten variable bounds, rounds integer bounds inward, and
//! detects trivially infeasible or redundant rows. On the GOMIL models this
//! fixes a large fraction of variables outright (e.g. compressor counts in
//! columns whose bit count is too small for any compressor), which directly
//! shrinks the standardized LP: fixed columns are compressed out before the
//! sparse column store is built, so they cost nothing in pricing or FTRAN.
//!
//! Two MIP-grade reductions run on top of the activity fixpoint:
//!
//! * **Binary probing** tentatively fixes a 0/1 variable to each of its two
//!   values and propagates. If one branch is infeasible the variable is
//!   fixed to the other value; if both survive, bounds implied by *both*
//!   branches become global bounds. Probing is capped by a work budget so
//!   it stays cheap on wide models.
//! * **Coefficient strengthening** tightens the coefficient of an integer
//!   variable on a `≤` row when the row cannot be binding unless the
//!   variable sits at its upper bound. The strengthened row is valid for
//!   every integer point of the original model and implies the original
//!   row within the variable bounds, so certification against the original
//!   model is unaffected while the LP relaxation gets strictly tighter.

use crate::expr::{LinExpr, Var};
use crate::model::{Cmp, Model, VarKind};
use crate::simplex::{Basis, ColStatus, LpProblem, FEAS_TOL};
use gomil_budget::Budget;
use std::collections::VecDeque;

/// Maximum number of binary variables probed per presolve call.
const PROBE_MAX_VARS: usize = 256;
/// Total row-term visits allowed across all probes (keeps probing bounded
/// on wide models where a single propagation can cascade).
const PROBE_WORK_CAP: u64 = 5_000_000;

/// Switches for the optional presolve reductions. The defaults enable
/// everything; the branch-and-bound numerical retry and A/B benchmarks
/// turn individual reductions off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresolveOpts {
    /// Probe binary variables (tentative fix + propagate) to harvest
    /// fixings and implied bounds.
    pub probing: bool,
    /// Strengthen integer coefficients on `≤` rows.
    pub strengthen: bool,
}

impl Default for PresolveOpts {
    fn default() -> Self {
        PresolveOpts {
            probing: true,
            strengthen: true,
        }
    }
}

/// Result of presolving a model.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// Tightened lower bounds, indexed by variable index.
    pub lb: Vec<f64>,
    /// Tightened upper bounds, indexed by variable index.
    pub ub: Vec<f64>,
    /// Rows proven redundant under the tightened bounds (always satisfied).
    pub redundant: Vec<bool>,
    /// Whether the model was proven infeasible.
    pub infeasible: bool,
    /// Number of variables fixed (`lb == ub`) after tightening.
    pub fixed: usize,
    /// Rows whose coefficients were strengthened; the replacement is a `≤`
    /// row that is valid for every integer point and implies the original
    /// row within the variable bounds. Sorted by row index.
    pub strengthened: Vec<StrengthenedRow>,
}

/// One coefficient-strengthened row: `(row index, replacement terms,
/// replacement rhs)`.
pub type StrengthenedRow = (usize, Vec<(Var, f64)>, f64);

/// Runs activity-based bound tightening to a fixpoint (bounded passes).
pub fn presolve(model: &Model) -> Presolved {
    presolve_with_budget(model, &Budget::unlimited())
}

/// Like [`presolve`], but stops tightening early (keeping whatever bounds
/// it has derived so far, which are always valid) once `budget` expires.
pub fn presolve_with_budget(model: &Model, budget: &Budget) -> Presolved {
    presolve_with_opts(model, budget, &PresolveOpts::default())
}

/// What happened when one row was propagated against the current bounds.
enum RowProp {
    /// The row's minimum activity exceeds its rhs: no assignment exists.
    Infeasible,
    /// The row's maximum activity is within its rhs: always satisfied.
    Redundant,
    /// Normal propagation; the flag says whether any bound moved.
    Done(bool),
}

/// Propagates a single `sign·expr ≤ sign·rhs` form, tightening `lb`/`ub`
/// in place. `on_change(i, old_lb, old_ub)` fires before each mutation so
/// probing can record an undo trail.
#[allow(clippy::too_many_arguments)]
fn tighten_form(
    model: &Model,
    expr: &LinExpr,
    sign: f64,
    rhs: f64,
    is_eq: bool,
    lb: &mut [f64],
    ub: &mut [f64],
    mut on_change: impl FnMut(usize, f64, f64),
) -> RowProp {
    let rhs = sign * rhs;
    let mut min_act = 0.0f64;
    let mut max_act = 0.0f64;
    for (v, coef) in expr.iter() {
        let a = sign * coef;
        let (l, u) = (lb[v.index()], ub[v.index()]);
        if a > 0.0 {
            min_act += a * l;
            max_act += a * u;
        } else {
            min_act += a * u;
            max_act += a * l;
        }
    }
    if min_act > rhs + FEAS_TOL {
        return RowProp::Infeasible;
    }
    if !is_eq && max_act <= rhs + FEAS_TOL && max_act.is_finite() {
        return RowProp::Redundant;
    }
    if !min_act.is_finite() {
        return RowProp::Done(false); // cannot propagate through infinite activity
    }
    let mut changed = false;
    // Tighten each variable: a·x ≤ rhs − (min_act − its own minimal
    // contribution).
    for (v, coef) in expr.iter() {
        let a = sign * coef;
        let i = v.index();
        let (l, u) = (lb[i], ub[i]);
        let own_min = if a > 0.0 { a * l } else { a * u };
        let slack = rhs - (min_act - own_min);
        let is_int = model.vars[i].kind != VarKind::Continuous;
        if a > 0.0 {
            let mut new_ub = slack / a;
            if is_int {
                new_ub = (new_ub + FEAS_TOL).floor();
            }
            if new_ub < u - 1e-9 {
                on_change(i, lb[i], ub[i]);
                ub[i] = new_ub;
                changed = true;
            }
        } else {
            let mut new_lb = slack / a;
            if is_int {
                new_lb = (new_lb - FEAS_TOL).ceil();
            }
            if new_lb > l + 1e-9 {
                on_change(i, lb[i], ub[i]);
                lb[i] = new_lb;
                changed = true;
            }
        }
        if lb[i] > ub[i] + FEAS_TOL {
            return RowProp::Infeasible;
        }
    }
    RowProp::Done(changed)
}

/// The `(sign, is_eq)` forms a row decomposes into for propagation.
fn forms_of(cmp: Cmp) -> &'static [(f64, bool)] {
    match cmp {
        Cmp::Le => &[(1.0, false)],
        Cmp::Ge => &[(-1.0, false)],
        Cmp::Eq => &[(1.0, true), (-1.0, true)],
    }
}

/// Runs the activity fixpoint over all rows. Returns `true` if the model
/// was proven infeasible.
fn fixpoint(
    model: &Model,
    lb: &mut [f64],
    ub: &mut [f64],
    redundant: &mut [bool],
    budget: &Budget,
    passes: usize,
) -> bool {
    for _pass in 0..passes {
        if budget.exhausted() {
            break;
        }
        let mut changed = false;
        for (ci, c) in model.constraints.iter().enumerate() {
            if redundant[ci] {
                continue;
            }
            for &(sign, is_eq) in forms_of(c.cmp) {
                match tighten_form(model, &c.expr, sign, c.rhs, is_eq, lb, ub, |_, _, _| {}) {
                    RowProp::Infeasible => return true,
                    RowProp::Redundant => {
                        redundant[ci] = true;
                        break;
                    }
                    RowProp::Done(c) => changed |= c,
                }
            }
        }
        if !changed {
            break;
        }
    }
    false
}

/// Tentatively fixes variable `probe` to `val`, propagates through the
/// rows touching each changed variable, and returns the bounds implied for
/// every variable the propagation moved (`None` when the branch is
/// infeasible). Bounds are restored before returning either way.
#[allow(clippy::too_many_arguments)]
fn probe_one(
    model: &Model,
    lb: &mut [f64],
    ub: &mut [f64],
    redundant: &[bool],
    rows_of: &[Vec<u32>],
    probe: usize,
    val: f64,
    work: &mut u64,
) -> Option<Vec<(usize, f64, f64)>> {
    let mut trail: Vec<(usize, f64, f64)> = vec![(probe, lb[probe], ub[probe])];
    lb[probe] = val;
    ub[probe] = val;

    let mut queue: VecDeque<u32> = rows_of[probe].iter().copied().collect();
    let mut in_queue = vec![false; model.num_constraints()];
    for &r in &queue {
        in_queue[r as usize] = true;
    }
    let mut infeasible = false;
    while let Some(ci) = queue.pop_front() {
        in_queue[ci as usize] = false;
        if *work > PROBE_WORK_CAP {
            break; // partial propagation still yields valid implications
        }
        let c = &model.constraints[ci as usize];
        let mut touched: Vec<usize> = Vec::new();
        for &(sign, is_eq) in forms_of(c.cmp) {
            *work += c.expr.iter().count() as u64;
            match tighten_form(model, &c.expr, sign, c.rhs, is_eq, lb, ub, |i, l, u| {
                trail.push((i, l, u));
                touched.push(i);
            }) {
                RowProp::Infeasible => infeasible = true,
                RowProp::Redundant => break,
                RowProp::Done(_) => {}
            }
            if infeasible {
                break;
            }
        }
        if infeasible {
            break;
        }
        for i in touched {
            for &r in &rows_of[i] {
                if !in_queue[r as usize] && !redundant[r as usize] && r != ci {
                    in_queue[r as usize] = true;
                    queue.push_back(r);
                }
            }
        }
    }

    let result = if infeasible {
        None
    } else {
        // First-occurrence dedup of the trail gives the changed set; the
        // current bounds hold this branch's implications.
        let mut emitted: Vec<usize> = Vec::with_capacity(trail.len());
        let mut out: Vec<(usize, f64, f64)> = Vec::with_capacity(trail.len());
        for &(i, _, _) in &trail {
            if !emitted.contains(&i) {
                emitted.push(i);
                out.push((i, lb[i], ub[i]));
            }
        }
        Some(out)
    };

    for &(i, l, u) in trail.iter().rev() {
        lb[i] = l;
        ub[i] = u;
    }
    result
}

/// Probes free binaries; fixes variables whose branches collapse and
/// harvests bounds implied by both branches. Returns `true` if the model
/// was proven infeasible (both branches of some binary die).
fn probe_binaries(
    model: &Model,
    lb: &mut [f64],
    ub: &mut [f64],
    redundant: &[bool],
    budget: &Budget,
    changed: &mut bool,
) -> bool {
    let n = model.num_vars();
    let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (ci, c) in model.constraints.iter().enumerate() {
        if redundant[ci] {
            continue;
        }
        for (v, _) in c.expr.iter() {
            rows_of[v.index()].push(ci as u32);
        }
    }
    let candidates: Vec<usize> = (0..n)
        .filter(|&i| model.vars[i].kind != VarKind::Continuous && lb[i] == 0.0 && ub[i] == 1.0)
        .take(PROBE_MAX_VARS)
        .collect();

    let mut work = 0u64;
    for &i in &candidates {
        if work > PROBE_WORK_CAP || budget.exhausted() {
            break;
        }
        if lb[i] != 0.0 || ub[i] != 1.0 {
            continue; // fixed by an earlier probe
        }
        let down = probe_one(model, lb, ub, redundant, &rows_of, i, 0.0, &mut work);
        let up = probe_one(model, lb, ub, redundant, &rows_of, i, 1.0, &mut work);
        match (down, up) {
            (None, None) => return true,
            (None, Some(_)) => {
                lb[i] = 1.0;
                *changed = true;
            }
            (Some(_), None) => {
                ub[i] = 0.0;
                *changed = true;
            }
            (Some(d0), Some(d1)) => {
                // A bound holds globally only if *both* branches imply it;
                // variables untouched by a branch keep their global bound
                // there, so only the intersection of the changed sets can
                // tighten.
                for &(j, l0, u0) in &d0 {
                    let Some(&(_, l1, u1)) = d1.iter().find(|&&(k, _, _)| k == j) else {
                        continue;
                    };
                    let nl = l0.min(l1);
                    let nu = u0.max(u1);
                    if nl > lb[j] + 1e-9 {
                        lb[j] = nl;
                        *changed = true;
                    }
                    if nu < ub[j] - 1e-9 {
                        ub[j] = nu;
                        *changed = true;
                    }
                    if lb[j] > ub[j] + FEAS_TOL {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Strengthens integer coefficients on non-redundant `≤` rows.
///
/// For a row `Σ aⱼxⱼ ≤ b` with integer `x_k`, `a_k > 0`, finite `u_k` and
/// finite maximum activity `M` of the other terms, let
/// `d = min(b − M − a_k·(u_k − 1), a_k)`. When `d > 0` the row can only be
/// binding if `x_k = u_k`, and `(a_k − d)·x_k + Σ_{j≠k} aⱼxⱼ ≤ b − d·u_k`
/// is valid for every integer point and implies the original row whenever
/// `x_k ≤ u_k`.
fn strengthen_le_rows(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    redundant: &[bool],
) -> Vec<StrengthenedRow> {
    let mut out = Vec::new();
    for (ci, c) in model.constraints.iter().enumerate() {
        if c.cmp != Cmp::Le || redundant[ci] {
            continue;
        }
        let mut terms: Vec<(Var, f64)> = c.expr.iter().collect();
        let mut rhs = c.rhs;
        let mut any = false;
        for k in 0..terms.len() {
            let (vk, ak) = terms[k];
            let i = vk.index();
            if ak <= 0.0
                || model.vars[i].kind == VarKind::Continuous
                || !ub[i].is_finite()
                || ub[i] - lb[i] <= FEAS_TOL
            {
                continue;
            }
            let mut max_others = 0.0f64;
            for (j, &(vj, aj)) in terms.iter().enumerate() {
                if j == k {
                    continue;
                }
                let (l, u) = (lb[vj.index()], ub[vj.index()]);
                max_others += if aj > 0.0 { aj * u } else { aj * l };
            }
            if !max_others.is_finite() {
                continue;
            }
            let d = (rhs - max_others - ak * (ub[i] - 1.0)).min(ak);
            if d > FEAS_TOL {
                terms[k].1 = ak - d;
                rhs -= d * ub[i];
                any = true;
            }
        }
        if any {
            terms.retain(|&(_, a)| a != 0.0);
            out.push((ci, terms, rhs));
        }
    }
    out
}

/// Full presolve with explicit reduction switches: the activity fixpoint,
/// then (optionally) binary probing with a re-run of the fixpoint when it
/// tightened anything, then (optionally) coefficient strengthening.
pub fn presolve_with_opts(model: &Model, budget: &Budget, opts: &PresolveOpts) -> Presolved {
    let n = model.num_vars();
    let mut lb: Vec<f64> = (0..n).map(|i| model.vars[i].lb).collect();
    let mut ub: Vec<f64> = (0..n).map(|i| model.vars[i].ub).collect();

    // Integer bounds start rounded inward.
    for (i, v) in model.vars.iter().enumerate() {
        if v.kind != VarKind::Continuous {
            lb[i] = (lb[i] - FEAS_TOL).ceil();
            ub[i] = (ub[i] + FEAS_TOL).floor();
        }
    }

    let mut redundant = vec![false; model.num_constraints()];
    let mut infeasible = fixpoint(model, &mut lb, &mut ub, &mut redundant, budget, 20);

    if !infeasible && opts.probing && !budget.exhausted() {
        let mut changed = false;
        infeasible = probe_binaries(model, &mut lb, &mut ub, &redundant, budget, &mut changed);
        if !infeasible && changed {
            infeasible = fixpoint(model, &mut lb, &mut ub, &mut redundant, budget, 20);
        }
    }

    let strengthened = if !infeasible && opts.strengthen {
        strengthen_le_rows(model, &lb, &ub, &redundant)
    } else {
        Vec::new()
    };

    let fixed = (0..n)
        .filter(|&i| (ub[i] - lb[i]).abs() <= FEAS_TOL && lb[i].is_finite())
        .count();
    Presolved {
        lb,
        ub,
        redundant,
        infeasible,
        fixed,
        strengthened,
    }
}

// ===================== LP reduction presolve =====================
//
// A second presolve layer that operates on the *standardized LP* (not the
// model): it shrinks the problem the simplex actually factorizes, then
// reconstructs the full-space primal solution AND basis afterwards so
// `certify`, warm restarts (`resolve_lp`) and cut separation keep working
// against the original rows. Every reduction is an exact reformulation of
// the LP relaxation — the reduced optimum equals the original optimum
// (after adding `obj_offset`), never a tighter relaxation.

/// How many reduce passes to run: substitution creates new singleton and
/// empty rows, which a later pass harvests; four passes catch everything
/// the GOMIL models produce without risking pathological looping.
const REDUCE_PASSES: usize = 4;

/// Bound-equality slop when deciding whether a reduced nonbasic column
/// sits at a *node* bound (no basis fixup needed) or at a bound the
/// reduction synthesized (promotion into the generating row required).
const REDUCE_BOUND_TOL: f64 = 1e-9;

/// Counters from one [`reduce_lp`] call, broken down by rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Total rows removed from the LP.
    pub rows_dropped: u64,
    /// Total structural columns removed from the LP.
    pub cols_dropped: u64,
    /// Rows with no live structural entry (feasibility-checked, dropped).
    pub empty_rows: u64,
    /// Rows always satisfiable within their slack bounds.
    pub redundant_rows: u64,
    /// Rows with one live structural entry, folded into column bounds.
    pub singleton_rows: u64,
    /// Rows dropped because an identical-pattern row dominates them.
    pub duplicate_rows: u64,
    /// Columns fixed by the node bounds, substituted into the rhs.
    pub fixed_cols: u64,
    /// Columns no live row touches, pinned to their cheapest bound.
    pub empty_cols: u64,
}

/// Outcome of [`reduce_lp`].
pub(crate) enum LpReduction {
    /// The reduced problem plus everything postsolve needs.
    Reduced(Box<ReducedLp>),
    /// Reduction proved the node infeasible outright (an empty row with an
    /// unsatisfiable rhs, a singleton row whose implied interval misses
    /// the column box, or duplicate rows with disjoint intervals).
    Infeasible,
}

/// A reduced LP plus the postsolve recipe back to the original space.
pub(crate) struct ReducedLp {
    /// The reduced problem; `slack_col(r') = num_structural' + r'` holds.
    pub lp: LpProblem,
    /// Column bounds for the reduced problem (tightened structural bounds
    /// from singleton-row folding, original slack bounds).
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    /// `c·v` contribution of the substituted-out columns; add to the
    /// reduced objective to recover the original objective.
    pub obj_offset: f64,
    pub stats: ReductionStats,
    orig_ns: usize,
    orig_rows: usize,
    /// Original structural column → reduced structural column.
    col_map: Vec<Option<u32>>,
    /// Original row → reduced row.
    row_map: Vec<Option<u32>>,
    /// Value of each dropped structural column (where `col_map` is None).
    dropped_val: Vec<f64>,
    /// Nonbasic side for each dropped structural column.
    dropped_status: Vec<ColStatus>,
    /// For a column whose reduced *lower* bound was synthesized by a
    /// singleton row: the generating row and the slack side that row's
    /// slack pins to when the column sits at that bound.
    red_lb_src: Vec<Option<(u32, ColStatus)>>,
    /// Same for synthesized upper bounds.
    red_ub_src: Vec<Option<(u32, ColStatus)>>,
}

impl ReducedLp {
    /// True when reduction removed nothing; callers should solve the
    /// original problem directly and skip the postsolve copy.
    pub(crate) fn is_noop(&self) -> bool {
        self.stats.rows_dropped == 0 && self.stats.cols_dropped == 0
    }

    /// Maps a reduced optimal solution (and basis) back to the original
    /// space. `node_lb`/`node_ub` are the bounds `reduce_lp` was called
    /// with. Returns the full structural solution and, when the reduced
    /// basis could be lifted, a full-space [`Basis`] that `resolve_lp`
    /// accepts: dropped rows get their slack basic, and columns pinned to
    /// a *synthesized* bound are promoted basic into the singleton row
    /// that generated the bound (block-triangular, hence nonsingular).
    pub(crate) fn postsolve(
        &self,
        node_lb: &[f64],
        node_ub: &[f64],
        x_red: &[f64],
        basis_red: Option<&Basis>,
    ) -> (Vec<f64>, Option<Basis>) {
        let ns = self.orig_ns;
        let m = self.orig_rows;
        let ns_red = self.lp.num_structural;

        let mut x = vec![0.0; ns];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = match self.col_map[j] {
                Some(j2) => x_red[j2 as usize],
                None => self.dropped_val[j],
            };
        }

        let Some(rb) = basis_red else {
            return (x, None);
        };
        if rb.cols.len() != self.lp.rows.len() || rb.status.len() != self.lp.num_cols {
            return (x, None);
        }

        // Inverse maps: reduced index → original index.
        let mut inv_col = vec![0u32; ns_red];
        for (j, cm) in self.col_map.iter().enumerate() {
            if let Some(j2) = cm {
                inv_col[*j2 as usize] = j as u32;
            }
        }
        let mut inv_row = vec![0u32; self.lp.rows.len()];
        for (r, rm) in self.row_map.iter().enumerate() {
            if let Some(r2) = rm {
                inv_row[*r2 as usize] = r as u32;
            }
        }

        let mut status = vec![ColStatus::AtLower; ns + m];
        let mut cols = vec![u32::MAX; m];

        for (j, st) in status.iter_mut().take(ns).enumerate() {
            *st = match self.col_map[j] {
                Some(j2) => rb.status[j2 as usize],
                None => self.dropped_status[j],
            };
        }
        for r in 0..m {
            match self.row_map[r] {
                Some(r2) => {
                    status[ns + r] = rb.status[ns_red + r2 as usize];
                    let bc = rb.cols[r2 as usize] as usize;
                    cols[r] = if bc < ns_red {
                        inv_col[bc]
                    } else {
                        ns as u32 + inv_row[bc - ns_red]
                    };
                }
                None => {
                    // Dropped row: its slack absorbs the residual, which the
                    // reduction rules guarantee lies within the slack bounds.
                    status[ns + r] = ColStatus::Basic;
                    cols[r] = (ns + r) as u32;
                }
            }
        }

        // Promotion fixups: a nonbasic column resting on a bound that the
        // reduction synthesized has no full-space bound to rest on, so it
        // goes basic in the singleton row that produced the bound (whose
        // slack then pins to the opposite, finite side). The dropped row
        // has no other basis column with an entry in it, so the lifted
        // basis matrix stays block triangular and nonsingular.
        for j in 0..ns {
            if status[j] == ColStatus::Basic {
                continue;
            }
            let v = x[j];
            let (src, at_node_bound) = match status[j] {
                ColStatus::AtLower => (self.red_lb_src[j], (v - node_lb[j]).abs() <= REDUCE_BOUND_TOL),
                ColStatus::AtUpper => (self.red_ub_src[j], (v - node_ub[j]).abs() <= REDUCE_BOUND_TOL),
                ColStatus::Basic => unreachable!(),
            };
            if at_node_bound {
                continue;
            }
            let Some((r, slack_side)) = src else {
                return (x, None); // synthesized bound with no recorded source
            };
            let r = r as usize;
            if self.row_map[r].is_some() || cols[r] != (ns + r) as u32 {
                return (x, None); // source row unexpectedly live or taken
            }
            let sidx = ns + r;
            let side_finite = match slack_side {
                ColStatus::AtLower => node_lb[sidx].is_finite(),
                ColStatus::AtUpper => node_ub[sidx].is_finite(),
                ColStatus::Basic => false,
            };
            if !side_finite {
                return (x, None);
            }
            cols[r] = j as u32;
            status[j] = ColStatus::Basic;
            status[sidx] = slack_side;
        }

        // `resolve_lp` rejects AtUpper on an unbounded column outright;
        // catch that here so the caller falls back cleanly.
        for (j, st) in status.iter().enumerate() {
            if *st == ColStatus::AtUpper && !node_ub[j].is_finite() {
                return (x, None);
            }
        }
        (x, Some(Basis { cols, status }))
    }
}

/// Runs empty/redundant/singleton/duplicate row elimination and
/// fixed/empty column substitution on the standardized LP `p` under node
/// bounds `lb`/`ub` (full space, structural then slacks). The returned
/// [`ReducedLp`] preserves the one-slack-per-row invariant, so
/// `solve_lp_from` accepts it unchanged.
pub(crate) fn reduce_lp(p: &LpProblem, lb: &[f64], ub: &[f64]) -> LpReduction {
    let ns = p.num_structural;
    let m = p.rows.len();
    debug_assert_eq!(p.num_cols, ns + m);
    debug_assert_eq!(lb.len(), p.num_cols);
    debug_assert_eq!(ub.len(), p.num_cols);

    let mut wlb = lb[..ns].to_vec();
    let mut wub = ub[..ns].to_vec();
    let mut work_rhs = p.rhs.clone();
    let mut row_alive = vec![true; m];
    let mut col_alive = vec![true; ns];
    let mut dropped_val = vec![0.0; ns];
    let mut dropped_status = vec![ColStatus::AtLower; ns];
    let mut red_lb_src: Vec<Option<(u32, ColStatus)>> = vec![None; ns];
    let mut red_ub_src: Vec<Option<(u32, ColStatus)>> = vec![None; ns];
    let mut obj_offset = 0.0f64;
    let mut stats = ReductionStats::default();

    // The activity interval a row's structural part must land in:
    // Σ a·x = rhs − s with s ∈ [slo, shi] ⇒ Σ a·x ∈ [rhs − shi, rhs − slo].
    let act_interval = |rhs: f64, slo: f64, shi: f64| (rhs - shi, rhs - slo);

    for _pass in 0..REDUCE_PASSES {
        let mut changed = false;

        // --- Row rules: empty, redundant, singleton.
        for r in 0..m {
            if !row_alive[r] {
                continue;
            }
            let slack = (ns + r) as u32;
            let (alo, ahi) = act_interval(work_rhs[r], lb[ns + r], ub[ns + r]);
            let mut cnt = 0usize;
            let mut single = (0u32, 0.0f64);
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            for &(c, a) in &p.rows[r] {
                if c == slack || a == 0.0 || !col_alive[c as usize] {
                    continue;
                }
                let j = c as usize;
                cnt += 1;
                single = (c, a);
                if a > 0.0 {
                    min_act += a * wlb[j];
                    max_act += a * wub[j];
                } else {
                    min_act += a * wub[j];
                    max_act += a * wlb[j];
                }
            }
            if cnt == 0 {
                if alo > FEAS_TOL || ahi < -FEAS_TOL {
                    return LpReduction::Infeasible;
                }
                row_alive[r] = false;
                stats.empty_rows += 1;
                stats.rows_dropped += 1;
                changed = true;
                continue;
            }
            if min_act >= alo - FEAS_TOL && max_act <= ahi + FEAS_TOL {
                row_alive[r] = false;
                stats.redundant_rows += 1;
                stats.rows_dropped += 1;
                changed = true;
                continue;
            }
            if cnt == 1 {
                let (c, a) = single;
                let j = c as usize;
                // Fold the row into bounds on x_j. When x_j rests on the
                // implied lower bound the slack sits at the bound that
                // produced it (shi for a > 0, slo for a < 0) — recorded so
                // postsolve can rebuild the basis.
                let (ilo, ihi, lo_side, hi_side) = if a > 0.0 {
                    (alo / a, ahi / a, ColStatus::AtUpper, ColStatus::AtLower)
                } else {
                    (ahi / a, alo / a, ColStatus::AtLower, ColStatus::AtUpper)
                };
                if ilo > wub[j] + FEAS_TOL || ihi < wlb[j] - FEAS_TOL {
                    return LpReduction::Infeasible;
                }
                if ilo > wlb[j] + REDUCE_BOUND_TOL {
                    wlb[j] = ilo.min(wub[j]);
                    red_lb_src[j] = Some((r as u32, lo_side));
                }
                if ihi < wub[j] - REDUCE_BOUND_TOL {
                    wub[j] = ihi.max(wlb[j]);
                    red_ub_src[j] = Some((r as u32, hi_side));
                }
                row_alive[r] = false;
                stats.singleton_rows += 1;
                stats.rows_dropped += 1;
                changed = true;
            }
        }

        // --- Duplicate rows: identical live structural patterns. Only the
        // dominated row (whose activity interval contains the other's) may
        // drop — its slack stays free to absorb the residual. Partially
        // overlapping intervals (a ≤/≥ pair forming a range) keep both.
        {
            let mut sigs: Vec<(Vec<(u32, f64)>, usize)> = Vec::new();
            for r in 0..m {
                if !row_alive[r] {
                    continue;
                }
                let slack = (ns + r) as u32;
                let mut sig: Vec<(u32, f64)> = p.rows[r]
                    .iter()
                    .copied()
                    .filter(|&(c, a)| c != slack && a != 0.0 && col_alive[c as usize])
                    .collect();
                sig.sort_unstable_by_key(|&(c, _)| c);
                sigs.push((sig, r));
            }
            sigs.sort_unstable_by(|a, b| {
                a.0.len().cmp(&b.0.len()).then_with(|| {
                    for (&(c1, v1), &(c2, v2)) in a.0.iter().zip(b.0.iter()) {
                        let o = c1.cmp(&c2).then(v1.total_cmp(&v2));
                        if o != std::cmp::Ordering::Equal {
                            return o;
                        }
                    }
                    std::cmp::Ordering::Equal
                })
            });
            let mut g = 0;
            while g < sigs.len() {
                let mut h = g + 1;
                while h < sigs.len() && sigs[h].0 == sigs[g].0 {
                    h += 1;
                }
                if h - g > 1 {
                    // Pairwise dominance within the equal-pattern group.
                    let mut kept: Vec<usize> = Vec::new();
                    for &(_, r) in &sigs[g..h] {
                        let (alo, ahi) = act_interval(work_rhs[r], lb[ns + r], ub[ns + r]);
                        let mut keep = true;
                        for &kr in &kept {
                            let (klo, khi) = act_interval(work_rhs[kr], lb[ns + kr], ub[ns + kr]);
                            if alo > khi + FEAS_TOL || ahi < klo - FEAS_TOL {
                                return LpReduction::Infeasible;
                            }
                            if klo >= alo - FEAS_TOL && khi <= ahi + FEAS_TOL {
                                // Kept row implies this one: drop it.
                                keep = false;
                                break;
                            }
                        }
                        if keep {
                            kept.push(r);
                        } else {
                            row_alive[r] = false;
                            stats.duplicate_rows += 1;
                            stats.rows_dropped += 1;
                            changed = true;
                        }
                    }
                }
                g = h;
            }
        }

        // --- Column rules: node-fixed substitution, empty-column pinning.
        // Columns whose bounds the *reduction* collapsed stay live — their
        // values must remain explicit for basis promotion to work.
        let mut occ = vec![0u32; ns];
        for r in 0..m {
            if !row_alive[r] {
                continue;
            }
            let slack = (ns + r) as u32;
            for &(c, a) in &p.rows[r] {
                if c != slack && a != 0.0 && col_alive[c as usize] {
                    occ[c as usize] += 1;
                }
            }
        }
        let mut newly_fixed = vec![false; ns];
        let mut any_fixed = false;
        for j in 0..ns {
            if !col_alive[j] {
                continue;
            }
            if lb[j].is_finite() && ub[j] - lb[j] <= 0.0 {
                col_alive[j] = false;
                dropped_val[j] = lb[j];
                dropped_status[j] = ColStatus::AtLower;
                obj_offset += p.costs[j] * lb[j];
                newly_fixed[j] = true;
                any_fixed = true;
                stats.fixed_cols += 1;
                stats.cols_dropped += 1;
                changed = true;
            } else if occ[j] == 0 {
                // No live row constrains x_j: pin to the cheapest bound.
                // Skip (leave live) when that bound is infinite — the
                // simplex detects genuine unboundedness itself, and an
                // eager claim here could mask infeasibility elsewhere.
                let c = p.costs[j];
                let (v, st) = if c > 0.0 || (c == 0.0 && wlb[j].is_finite()) {
                    (wlb[j], ColStatus::AtLower)
                } else {
                    (wub[j], ColStatus::AtUpper)
                };
                if v.is_finite() {
                    col_alive[j] = false;
                    dropped_val[j] = v;
                    dropped_status[j] = st;
                    obj_offset += c * v;
                    newly_fixed[j] = true;
                    any_fixed = true;
                    stats.empty_cols += 1;
                    stats.cols_dropped += 1;
                    changed = true;
                }
            }
        }
        if any_fixed {
            // One sweep folds every just-dropped column into the rhs.
            for r in 0..m {
                if !row_alive[r] {
                    continue;
                }
                let slack = (ns + r) as u32;
                for &(c, a) in &p.rows[r] {
                    if c != slack && newly_fixed[c as usize] {
                        work_rhs[r] -= a * dropped_val[c as usize];
                    }
                }
            }
        }

        if !changed {
            break;
        }
    }

    // --- Assemble the reduced problem with compacted numbering.
    let mut col_map: Vec<Option<u32>> = vec![None; ns];
    let mut ns_red = 0usize;
    for (j, cm) in col_map.iter_mut().enumerate() {
        if col_alive[j] {
            *cm = Some(ns_red as u32);
            ns_red += 1;
        }
    }
    let mut row_map: Vec<Option<u32>> = vec![None; m];
    let mut m_red = 0usize;
    for (r, rm) in row_map.iter_mut().enumerate() {
        if row_alive[r] {
            *rm = Some(m_red as u32);
            m_red += 1;
        }
    }

    let num_cols_red = ns_red + m_red;
    let mut costs = Vec::with_capacity(num_cols_red);
    let mut rlb = Vec::with_capacity(num_cols_red);
    let mut rub = Vec::with_capacity(num_cols_red);
    for j in 0..ns {
        if col_alive[j] {
            costs.push(p.costs[j]);
            rlb.push(wlb[j]);
            rub.push(wub[j]);
        }
    }
    costs.resize(num_cols_red, 0.0);
    let mut rows = Vec::with_capacity(m_red);
    let mut rhs = Vec::with_capacity(m_red);
    for r in 0..m {
        if !row_alive[r] {
            continue;
        }
        let slack = (ns + r) as u32;
        let mut row: Vec<(u32, f64)> = p.rows[r]
            .iter()
            .filter(|&&(c, a)| c != slack && a != 0.0 && col_alive[c as usize])
            .map(|&(c, a)| (col_map[c as usize].unwrap(), a))
            .collect();
        row.push(((ns_red + rows.len()) as u32, 1.0));
        rows.push(row);
        rhs.push(work_rhs[r]);
        rlb.push(lb[ns + r]);
        rub.push(ub[ns + r]);
    }

    let lp = LpProblem::new(ns_red, costs, rlb.clone(), rub.clone(), rows, rhs);

    LpReduction::Reduced(Box::new(ReducedLp {
        lp,
        lb: rlb,
        ub: rub,
        obj_offset,
        stats,
        orig_ns: ns,
        orig_rows: m,
        col_map,
        row_map,
        dropped_val,
        dropped_status,
        red_lb_src,
        red_ub_src,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::certify_lp_rows;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Model};
    use crate::simplex::{resolve_lp, solve_lp_from, LpOutcome, SimplexOpts};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// A random standardized LP salted with exactly the structures
    /// `reduce_lp` targets: empty rows, singleton rows, duplicated
    /// structural patterns, fixed columns, and columns no row touches.
    fn random_standardized_lp(seed: u64) -> LpProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let ns = rng.gen_range(3..9);
        let m = rng.gen_range(1..7);
        let num_cols = ns + m;
        let mut costs = vec![0.0; num_cols];
        let mut lb = vec![0.0; num_cols];
        let mut ub = vec![f64::INFINITY; num_cols];
        for j in 0..ns {
            costs[j] = rng.gen_range(-5..6) as f64;
            match rng.gen_range(0..10) {
                0 => {
                    let v = rng.gen_range(0..4) as f64;
                    lb[j] = v;
                    ub[j] = v;
                }
                1 => {
                    lb[j] = f64::NEG_INFINITY;
                    ub[j] = rng.gen_range(0..8) as f64;
                }
                _ => {
                    ub[j] = rng.gen_range(1..9) as f64;
                }
            }
        }
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();
        for r in 0..m {
            let slack = (ns + r) as usize;
            match rng.gen_range(0..3) {
                0 => {} // ≤ row: slack [0, ∞), the default
                1 => {
                    // ≥ row: slack (-∞, 0].
                    lb[slack] = f64::NEG_INFINITY;
                    ub[slack] = 0.0;
                }
                _ => {
                    // = row: slack [0, 0].
                    ub[slack] = 0.0;
                }
            }
            let mut row: Vec<(u32, f64)> = Vec::new();
            let kind = rng.gen_range(0..10);
            if kind == 0 {
                // Empty row.
            } else if kind <= 2 {
                let j = rng.gen_range(0..ns) as u32;
                let a = rng.gen_range(1..4) as f64 * if rng.gen_range(0..2) == 0 { 1.0 } else { -1.0 };
                row.push((j, a));
            } else if kind == 3 && r > 0 {
                // Duplicate the previous row's structural pattern.
                row = rows[r - 1]
                    .iter()
                    .filter(|&&(c, _)| (c as usize) < ns)
                    .cloned()
                    .collect();
            } else {
                let k = rng.gen_range(1..ns.min(4));
                let mut picked = vec![false; ns];
                for _ in 0..k {
                    let j = rng.gen_range(0..ns);
                    if !picked[j] {
                        picked[j] = true;
                        let a = rng.gen_range(1..5) as f64
                            * if rng.gen_range(0..2) == 0 { 1.0 } else { -1.0 };
                        row.push((j as u32, a));
                    }
                }
                row.sort_by_key(|&(c, _)| c);
            }
            row.push((slack as u32, 1.0));
            rows.push(row);
            rhs.push(rng.gen_range(-6..10) as f64);
        }
        LpProblem::new(ns, costs, lb, ub, rows, rhs)
    }

    /// The reduction must be outcome- and objective-preserving, its
    /// postsolved solutions must certify against the *original* rows,
    /// and a warm restart of the original problem from the postsolved
    /// basis must reproduce the from-scratch objective.
    #[test]
    fn reduce_solve_postsolve_round_trips_on_random_lps() {
        let opts = SimplexOpts::default();
        let mut reduced_cases = 0u32;
        let mut bases_lifted = 0u32;
        for seed in 0..400u64 {
            let p = random_standardized_lp(0xD1CE ^ (seed << 4));
            let lb = p.lb.clone();
            let ub = p.ub.clone();
            let direct = solve_lp_from(&p, &lb, &ub, &opts).expect("direct solve");
            let red = match reduce_lp(&p, &lb, &ub) {
                LpReduction::Infeasible => {
                    assert!(
                        matches!(direct.outcome, LpOutcome::Infeasible),
                        "seed {seed}: reduction claims infeasible, direct solve disagrees"
                    );
                    continue;
                }
                LpReduction::Reduced(r) => r,
            };
            if !red.is_noop() {
                reduced_cases += 1;
            }
            let res = solve_lp_from(&red.lp, &red.lb, &red.ub, &opts).expect("reduced solve");
            match (&direct.outcome, &res.outcome) {
                (LpOutcome::Optimal { obj, .. }, LpOutcome::Optimal { x: xr, obj: or }) => {
                    let lifted_obj = or + red.obj_offset;
                    assert!(
                        (lifted_obj - obj).abs() <= 1e-6 * obj.abs().max(1.0),
                        "seed {seed}: reduced objective {lifted_obj} vs direct {obj}"
                    );
                    let (x, basis) = red.postsolve(&lb, &ub, xr, res.basis.as_ref());
                    certify_lp_rows(&p, &lb, &ub, &x, 1e-6)
                        .unwrap_or_else(|e| panic!("seed {seed}: postsolve fails certify: {e}"));
                    if let Some(basis) = basis {
                        bases_lifted += 1;
                        let warm = resolve_lp(&p, &lb, &ub, &basis, &opts)
                            .expect("warm restart from postsolved basis");
                        if let Some(warm) = warm {
                            match warm.outcome {
                                LpOutcome::Optimal { obj: wo, .. } => assert!(
                                    (wo - obj).abs() <= 1e-6 * obj.abs().max(1.0),
                                    "seed {seed}: warm objective {wo} vs direct {obj}"
                                ),
                                ref other => panic!("seed {seed}: warm restart gave {other:?}"),
                            }
                        }
                    }
                }
                (LpOutcome::Infeasible, LpOutcome::Infeasible)
                | (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
                (a, b) => panic!("seed {seed}: direct {a:?} vs reduced {b:?}"),
            }
        }
        // The generator must actually exercise the machinery: most salted
        // instances reduce, and postsolved bases come back regularly
        // (many instances reduce to zero rows, where there is no basis
        // to lift — the ones that keep rows are the interesting cases).
        assert!(reduced_cases >= 100, "only {reduced_cases} instances reduced");
        assert!(bases_lifted >= 25, "only {bases_lifted} bases postsolved");
    }

    #[test]
    fn reduce_drops_empty_and_singleton_rows() {
        // Row 0 is empty (0 ≤ 5 slack-feasible), row 1 pins x0 ≤ 3.
        let ns = 2;
        let p = LpProblem::new(
            ns,
            vec![-1.0, -1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![10.0, 10.0, f64::INFINITY, f64::INFINITY],
            vec![vec![(2, 1.0)], vec![(0, 1.0), (3, 1.0)]],
            vec![5.0, 3.0],
        );
        let red = match reduce_lp(&p, &p.lb.clone(), &p.ub.clone()) {
            LpReduction::Reduced(r) => r,
            LpReduction::Infeasible => panic!("feasible instance"),
        };
        assert_eq!(red.stats.empty_rows, 1);
        assert_eq!(red.stats.singleton_rows, 1);
        assert_eq!(red.lp.rows.len(), 0);
        // With both rows gone the now-unreferenced columns pin to their
        // cheapest bounds (cost -1 → upper): x0 at the folded bound 3,
        // x1 at its own bound 10.
        assert_eq!(red.stats.cols_dropped, 2);
        let (x, _) = red.postsolve(&p.lb, &p.ub, &[], None);
        assert_eq!(x, vec![3.0, 10.0]);
    }

    #[test]
    fn reduce_detects_conflicting_duplicate_rows() {
        // x0 + x1 = 5 and x0 + x1 = 7 cannot both hold.
        let ns = 2;
        let p = LpProblem::new(
            ns,
            vec![1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![10.0, 10.0, 0.0, 0.0],
            vec![
                vec![(0, 1.0), (1, 1.0), (2, 1.0)],
                vec![(0, 1.0), (1, 1.0), (3, 1.0)],
            ],
            vec![5.0, 7.0],
        );
        assert!(matches!(
            reduce_lp(&p, &p.lb.clone(), &p.ub.clone()),
            LpReduction::Infeasible
        ));
    }

    #[test]
    fn reduce_substitutes_fixed_columns_into_offset() {
        // x0 fixed at 2 with cost 3 → offset 6, and its row contribution
        // moves into the rhs.
        let ns = 2;
        let p = LpProblem::new(
            ns,
            vec![3.0, 1.0, 0.0],
            vec![2.0, 0.0, 0.0],
            vec![2.0, 10.0, f64::INFINITY],
            vec![vec![(0, 1.0), (1, 1.0), (2, 1.0)]],
            vec![8.0],
        );
        let red = match reduce_lp(&p, &p.lb.clone(), &p.ub.clone()) {
            LpReduction::Reduced(r) => r,
            LpReduction::Infeasible => panic!("feasible instance"),
        };
        assert_eq!(red.stats.fixed_cols, 1);
        assert_eq!(red.obj_offset, 6.0);
        // The substitution leaves `x1 + s = 6`, a singleton row that
        // folds away in turn; x1 then pins to its cheap bound 0.
        assert_eq!(red.stats.singleton_rows, 1);
        assert_eq!(red.lp.rows.len(), 0);
        let (x, _) = red.postsolve(&p.lb, &p.ub, &[], None);
        assert_eq!(x, vec![2.0, 0.0]);
    }

    #[test]
    fn tightens_upper_bound_from_le_row() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 100.0);
        let y = m.add_continuous("y", 2.0, 100.0);
        m.add_constraint("c", x + y, Cmp::Le, 10.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert_eq!(p.ub[x.index()], 8.0);
        assert_eq!(p.ub[y.index()], 10.0);
    }

    #[test]
    fn rounds_integer_bounds_inward() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Le, 7.0);
        let p = presolve(&m);
        assert_eq!(p.ub[x.index()], 3.0);
    }

    #[test]
    fn detects_infeasible_activity() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x), Cmp::Ge, 2.0);
        let p = presolve(&m);
        assert!(p.infeasible);
    }

    #[test]
    fn fixes_binary_through_chained_rows() {
        // b1 >= 1 forces b1 = 1; b1 + b2 <= 1 then forces b2 = 0.
        let mut m = Model::new("t");
        let b1 = m.add_binary("b1");
        let b2 = m.add_binary("b2");
        m.add_constraint("f", LinExpr::from(b1), Cmp::Ge, 1.0);
        m.add_constraint("x", b1 + b2, Cmp::Le, 1.0);
        let p = presolve(&m);
        assert_eq!((p.lb[b1.index()], p.ub[b1.index()]), (1.0, 1.0));
        assert_eq!((p.lb[b2.index()], p.ub[b2.index()]), (0.0, 0.0));
        assert_eq!(p.fixed, 2);
    }

    #[test]
    fn marks_redundant_rows() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x), Cmp::Le, 5.0);
        let p = presolve(&m);
        assert!(p.redundant[0]);
    }

    #[test]
    fn equality_propagates_both_directions() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 100.0);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.add_constraint("c", x + y, Cmp::Eq, 5.0);
        let p = presolve(&m);
        // x = 5 − y ∈ [2, 5].
        assert_eq!(p.lb[x.index()], 2.0);
        assert_eq!(p.ub[x.index()], 5.0);
    }

    #[test]
    fn probing_fixes_binary_whose_branch_is_infeasible() {
        // With b = 0 the equality x + 2b = 2 forces x = 2 > ub(x) = 1, so
        // probing must fix b = 1 (plain activity propagation cannot: both
        // branch values keep the activity range overlapping the rhs).
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        m.add_constraint("c", x + 2.0 * b, Cmp::Eq, 2.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert_eq!((p.lb[b.index()], p.ub[b.index()]), (1.0, 1.0));
    }

    #[test]
    fn probing_detects_infeasibility_when_both_branches_die() {
        // b = 0 forces x = 3 (impossible, ub = 1); b = 1 forces x = -1
        // (impossible, lb = 0).
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        m.add_constraint("c", x + 4.0 * b, Cmp::Eq, 3.0);
        let p = presolve(&m);
        assert!(p.infeasible);
    }

    #[test]
    fn probing_harvests_bounds_implied_by_both_branches() {
        // y − b ≥ 2 and y + b ≥ 3: branch b=0 gives y ≥ 3, branch b=1
        // gives y ≥ 3, so y ≥ 3 globally even though each row alone only
        // proves y ≥ 2.
        let mut m = Model::new("t");
        let y = m.add_continuous("y", 0.0, 10.0);
        let b = m.add_binary("b");
        m.add_constraint("c1", y - b, Cmp::Ge, 2.0);
        m.add_constraint("c2", y + b, Cmp::Ge, 3.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert!(p.lb[y.index()] >= 3.0 - 1e-9, "lb = {}", p.lb[y.index()]);
        let off = presolve_with_opts(
            &m,
            &Budget::unlimited(),
            &PresolveOpts {
                probing: false,
                strengthen: false,
            },
        );
        assert!(off.lb[y.index()] < 3.0, "control: probing did the work");
    }

    #[test]
    fn dead_budget_keeps_original_bounds_and_stays_valid() {
        // With an exhausted budget neither the fixpoint loop nor probing
        // runs; the result must still be valid (no false infeasibility,
        // no bogus tightening beyond integer rounding).
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Le, 7.0);
        let b = Budget::with_limit(std::time::Duration::ZERO);
        let p = presolve_with_budget(&m, &b);
        assert!(!p.infeasible);
        assert_eq!(p.ub[x.index()], 10.0, "no passes ran under a dead budget");
    }

    #[test]
    fn dead_budget_never_claims_infeasibility() {
        // This model IS infeasible, but only probing can prove it (see
        // `probing_detects_infeasibility_when_both_branches_die`). With a
        // dead budget no pass runs, so presolve must stay conservative and
        // leave detection to the solver — a false `infeasible` under
        // budget pressure would wrongly prune a live subtree.
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        m.add_constraint("c", x + 4.0 * b, Cmp::Eq, 3.0);
        let dead = Budget::with_limit(std::time::Duration::ZERO);
        let p = presolve_with_budget(&m, &dead);
        assert!(!p.infeasible, "dead budget must not guess infeasibility");
        let live = presolve(&m);
        assert!(live.infeasible, "control: a live budget does prove it");
    }

    #[test]
    fn dead_budget_marks_no_rows_redundant() {
        // Redundancy marks let the solver drop rows, so they are only safe
        // when the activity pass actually ran.
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x), Cmp::Le, 5.0);
        let dead = Budget::with_limit(std::time::Duration::ZERO);
        let p = presolve_with_budget(&m, &dead);
        assert!(!p.redundant[0]);
        assert!(presolve(&m).redundant[0], "control: live budget marks it");
    }

    #[test]
    fn binding_rows_are_never_marked_redundant() {
        // x + y <= 10 with x, y in [0, 8]: max activity 16 > 10, so the
        // row constrains the feasible set and must survive presolve.
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 8.0);
        let y = m.add_continuous("y", 0.0, 8.0);
        m.add_constraint("c", x + y, Cmp::Le, 10.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert!(!p.redundant[0]);
    }

    #[test]
    fn strengthens_integer_coefficient_on_le_row() {
        // 3x + y <= 10 with x int in [0,3], y in [0,2]: max_others = 2, so
        // d = 10 - 2 - 3·2 = 2 > 0 ⇒ x's coefficient tightens to 1 and the
        // rhs to 10 - 2·3 = 4 (row becomes x + y <= 4).
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_constraint("c", 3.0 * x + y, Cmp::Le, 10.0);
        let p = presolve(&m);
        assert_eq!(p.strengthened.len(), 1);
        let (row, terms, rhs) = &p.strengthened[0];
        assert_eq!(*row, 0);
        assert_eq!(*rhs, 4.0);
        let ax = terms.iter().find(|(v, _)| *v == x).unwrap().1;
        let ay = terms.iter().find(|(v, _)| *v == y).unwrap().1;
        assert_eq!((ax, ay), (1.0, 1.0));
        // The strengthened row keeps exactly the original integer points.
        for xi in 0..=3i32 {
            for yi in [0.0, 1.0, 2.0] {
                let orig = 3.0 * f64::from(xi) + yi <= 10.0 + 1e-9;
                let tight = f64::from(xi) + yi <= 4.0 + 1e-9;
                assert_eq!(orig, tight, "x={xi} y={yi}");
            }
        }
    }

    #[test]
    fn strengthening_leaves_tight_rows_alone() {
        // x + y <= 2 with both in [0,2]: d = 2 - 2 - 1·(2-1) = -1 ⇒ no-op.
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 2.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_constraint("c", x + y, Cmp::Le, 2.0);
        let p = presolve(&m);
        assert!(p.strengthened.is_empty());
    }
}
