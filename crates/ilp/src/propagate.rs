//! Per-node bound propagation on the standardized (slack-equality) form.
//!
//! Branch-and-bound nodes tighten a single variable bound; activity
//! propagation pushes that change through the equality rows before the LP
//! runs, often fixing whole chains of variables (the CT ILP's conservation
//! rows are exactly this shape) or proving the node empty without a
//! simplex call.

use crate::simplex::{LpProblem, FEAS_TOL};

/// Tightens `lb`/`ub` in place by activity propagation over `lp`'s rows.
/// `is_int[c]` marks integer-constrained structural columns (slacks are
/// continuous). Returns `false` if some bound pair crosses (node is
/// infeasible).
pub(crate) fn propagate_bounds(
    lp: &LpProblem,
    lb: &mut [f64],
    ub: &mut [f64],
    is_int: &[bool],
    passes: usize,
) -> bool {
    for _ in 0..passes {
        let mut changed = false;
        for (row, &b) in lp.rows.iter().zip(&lp.rhs) {
            // Row reads Σ a_c·x_c = b (slack included).
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            for &(c, a) in row {
                let c = c as usize;
                if a > 0.0 {
                    min_act += a * lb[c];
                    max_act += a * ub[c];
                } else {
                    min_act += a * ub[c];
                    max_act += a * lb[c];
                }
            }
            if min_act > b + FEAS_TOL || max_act < b - FEAS_TOL {
                return false;
            }
            if !min_act.is_finite() && !max_act.is_finite() {
                continue;
            }
            for &(c, a) in row {
                let c = c as usize;
                let (own_min, own_max) = if a > 0.0 {
                    (a * lb[c], a * ub[c])
                } else {
                    (a * ub[c], a * lb[c])
                };
                // Residual bounds of the rest of the row; each side of
                // `a·x ∈ [b − rest_max, b − rest_min]` is only usable when
                // the corresponding residual is finite.
                let rest_min = min_act - own_min;
                let rest_max = max_act - own_max;
                let int_col = c < lp.num_structural && is_int[c];
                let apply = |which_lb: Option<f64>,
                             which_ub: Option<f64>,
                             lb: &mut [f64],
                             ub: &mut [f64],
                             changed: &mut bool| {
                    if let Some(mut v) = which_lb {
                        if int_col {
                            v = (v - FEAS_TOL).ceil();
                        }
                        if v > lb[c] + 1e-9 {
                            lb[c] = v;
                            *changed = true;
                        }
                    }
                    if let Some(mut v) = which_ub {
                        if int_col {
                            v = (v + FEAS_TOL).floor();
                        }
                        if v < ub[c] - 1e-9 {
                            ub[c] = v;
                            *changed = true;
                        }
                    }
                };
                let (new_lb, new_ub) = if a > 0.0 {
                    (
                        rest_max.is_finite().then(|| (b - rest_max) / a),
                        rest_min.is_finite().then(|| (b - rest_min) / a),
                    )
                } else {
                    (
                        rest_min.is_finite().then(|| (b - rest_min) / a),
                        rest_max.is_finite().then(|| (b - rest_max) / a),
                    )
                };
                apply(new_lb, new_ub, lb, ub, &mut changed);
                if lb[c] > ub[c] + FEAS_TOL {
                    return false;
                }
            }
        }
        if !changed {
            break;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One equality row: x + y + s = 5 with s ∈ [0,0] (an Eq constraint),
    /// x,y integer in [0,10]. Fixing x ≥ 4 must force y ≤ 1.
    #[test]
    fn equality_chain_tightens() {
        let lp = LpProblem::new(
            2,
            vec![0.0; 3],
            vec![0.0, 0.0, 0.0],
            vec![10.0, 10.0, 0.0],
            vec![vec![(0, 1.0), (1, 1.0), (2, 1.0)]],
            vec![5.0],
        );
        let mut lb = lp.lb.clone();
        let mut ub = lp.ub.clone();
        lb[0] = 4.0; // branch decision
        assert!(propagate_bounds(&lp, &mut lb, &mut ub, &[true, true], 4));
        assert_eq!(ub[1], 1.0);
    }

    #[test]
    fn crossing_bounds_detected() {
        let lp = LpProblem::new(
            1,
            vec![0.0; 2],
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![vec![(0, 1.0), (1, 1.0)]],
            vec![3.0], // x = 3 impossible with x ≤ 1
        );
        let mut lb = lp.lb.clone();
        let mut ub = lp.ub.clone();
        assert!(!propagate_bounds(&lp, &mut lb, &mut ub, &[true], 4));
    }

    #[test]
    fn le_row_with_free_slack_does_not_overtighten() {
        // x + s = 4 with s ∈ [0, ∞): i.e. x ≤ 4; x ∈ [0, 10] integer.
        let lp = LpProblem::new(
            1,
            vec![0.0; 2],
            vec![0.0, 0.0],
            vec![10.0, f64::INFINITY],
            vec![vec![(0, 1.0), (1, 1.0)]],
            vec![4.0],
        );
        let mut lb = lp.lb.clone();
        let mut ub = lp.ub.clone();
        assert!(propagate_bounds(&lp, &mut lb, &mut ub, &[true], 4));
        assert_eq!(ub[0], 4.0);
        assert_eq!(lb[0], 0.0);
    }
}
