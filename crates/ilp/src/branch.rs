//! Branch-and-bound driver for mixed-integer models.
//!
//! Strategy:
//!
//! * presolve (bound tightening) once up front;
//! * standardize to a slack-equality LP form, *compressing
//!   out* variables fixed by presolve so the dense tableau stays small;
//! * best-bound node selection with a last-in dive bias, deltas stored in a
//!   parent-pointer arena;
//! * branching on the most fractional integer variable;
//! * incumbents from (a) a caller-supplied warm start, (b) LP solutions that
//!   happen to be integral, and (c) a round-and-repair heuristic that fixes
//!   the integers to rounded values and re-solves the LP for the continuous
//!   variables.
//!
//! The search honours wall-clock and node limits and reports the best proven
//! bound, mirroring how the paper runs Gurobi under a runtime cap.
//!
//! With [`BranchConfig::jobs`] > 1 the node loop is handed to the
//! [parallel engine](crate::parallel): a fixed worker pool drains the same
//! best-first queue under a mutex, sharing one atomic incumbent so any
//! worker's improvement immediately tightens pruning everywhere. `jobs = 1`
//! (the default) runs the sequential loop below, byte-for-byte the legacy
//! behavior.
//!
//! Node bounds are NaN-checked on admission ([`checked_bound`]): the node
//! comparator uses [`f64::total_cmp`], which is a total order even over NaN,
//! but a NaN bound would still make best-first selection meaningless, so it
//! is reported as a numerical failure instead of being enqueued.

use crate::certify::certify_values;
use crate::expr::Var;
use crate::model::{Cmp, Model, Sense, VarKind};
use crate::presolve::{
    presolve_with_opts, reduce_lp, LpReduction, PresolveOpts, ReductionStats, StrengthenedRow,
};
use crate::propagate::propagate_bounds;
use crate::simplex::{
    cover_cuts, gomory_cuts, resolve_lp, solve_lp_from, with_cut_rows, Basis, KernelStats, LpError,
    LpOutcome, LpProblem, LpResult, Pricing, SimplexOpts, FEAS_TOL,
};
use crate::solution::{
    IncumbentEvent, IncumbentSource, RootProfile, Solution, SolveError, SolveStatus,
    WarmStartStatus,
};
use gomil_budget::Budget;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where cutting planes are separated during the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CutMode {
    /// No cut separation; the relaxation is tightened only by branching.
    Off,
    /// Separate Gomory mixed-integer and knapsack-cover cuts at the root
    /// node (bounded rounds), so the relaxation prunes instead of
    /// branching. Cuts are derived under the root's globally valid bounds
    /// and therefore hold tree-wide.
    #[default]
    Root,
}

impl CutMode {
    /// Parses a CLI-style name (`"off"` / `"root"`).
    pub fn from_name(name: &str) -> Option<CutMode> {
        match name {
            "off" => Some(CutMode::Off),
            "root" => Some(CutMode::Root),
            _ => None,
        }
    }

    /// The CLI-style name of this mode.
    pub fn name(self) -> &'static str {
        match self {
            CutMode::Off => "off",
            CutMode::Root => "root",
        }
    }
}

/// Configuration for [`Model::solve_with`].
#[derive(Debug, Clone)]
pub struct BranchConfig {
    /// Wall-clock limit for the whole search. Combined with
    /// [`budget`](Self::budget): whichever deadline is earlier wins.
    pub time_limit: Option<Duration>,
    /// Maximum number of branch-and-bound nodes.
    pub node_limit: u64,
    /// Stop when `(incumbent − bound)/max(1,|incumbent|)` falls below this.
    pub gap_tol: f64,
    /// Optional warm-start assignment (full values, indexed by variable
    /// index). Validated up front; the outcome (including the violated
    /// constraint on rejection) is reported in
    /// [`Solution::warm_start`](crate::Solution::warm_start).
    pub initial: Option<Vec<f64>>,
    /// Incumbent hand-off: additional candidate assignments beyond
    /// [`initial`](Self::initial) — e.g. a neighboring solve's incumbent
    /// adapted to this model. Each candidate is validated by the same
    /// independent certifier as the warm start; feasible candidates
    /// compete on objective, so a bad hand-off can never worsen the
    /// result, only fail to help.
    pub extra_starts: Vec<Vec<f64>>,
    /// Simplex iteration budget per LP solve.
    pub max_lp_iters: u64,
    /// Run the round-and-repair heuristic every this many nodes (0 = off).
    pub heuristic_period: u64,
    /// Shared wall-clock budget / cancellation token. Checked between nodes
    /// and inside the simplex pivot loop, so one pipeline-level budget
    /// bounds the whole search. Defaults to unlimited.
    pub budget: Budget,
    /// Use Bland's anti-cycling rule from the first pivot of every LP.
    /// Slow but cycle-proof; set by the numerical-retry path.
    pub force_bland: bool,
    /// Multiplier on the simplex optimality tolerance (values > 1 relax
    /// it). Set to 10 by the numerical-retry path.
    pub tol_scale: f64,
    /// When `true`, [`Model::solve_with`](crate::Model::solve_with) retries
    /// a [`SolveError::Numerical`] failure once with `force_bland` and a
    /// relaxed `tol_scale` before giving up.
    pub numerical_retry: bool,
    /// Worker threads exploring the branch-and-bound tree. `0` and `1`
    /// both mean sequential search (the legacy single-threaded loop);
    /// larger values run the [parallel engine](crate::parallel). Parallel
    /// search proves the same optima but may return a *different* optimal
    /// assignment when several exist, and node/iteration counts become
    /// timing-dependent.
    pub jobs: usize,
    /// Carry the parent's optimal simplex basis into each child node and
    /// reoptimize with the dual simplex instead of solving from scratch
    /// (the sparse-LP warm-restart path). Stale or dual-infeasible bases
    /// fall back to the two-phase primal automatically, so this is purely
    /// a performance knob; the numerical-retry path disables it for
    /// maximum-robustness re-solves.
    pub reuse_basis: bool,
    /// Simplex pricing rule. Devex (the default) spends a little more per
    /// pivot to pick much better pivots; Dantzig remains available for A/B
    /// comparisons and is forced by the numerical-retry path.
    pub pricing: Pricing,
    /// Cutting-plane separation mode (see [`CutMode`]). The numerical-retry
    /// path forces [`CutMode::Off`].
    pub cuts: CutMode,
    /// Run the MIP presolve reductions (binary probing + coefficient
    /// strengthening) on top of the activity-bound fixpoint. Off on the
    /// numerical-retry path.
    pub probing: bool,
    /// Geometric-mean row equilibration of the standardized LP (exact
    /// power-of-two factors, no unscaling needed). Off on the
    /// numerical-retry path so retries see the untouched coefficients.
    pub scaling: bool,
    /// LP reduction presolve (empty/singleton/redundant/duplicate row and
    /// fixed/empty column elimination with full basis postsolve) before
    /// every from-scratch LP solve. Off on the numerical-retry path.
    pub reduce: bool,
}

impl Default for BranchConfig {
    fn default() -> BranchConfig {
        BranchConfig {
            time_limit: Some(Duration::from_secs(60)),
            node_limit: 200_000,
            gap_tol: 1e-6,
            initial: None,
            extra_starts: Vec::new(),
            max_lp_iters: 2_000_000,
            heuristic_period: 20,
            budget: Budget::unlimited(),
            force_bland: false,
            tol_scale: 1.0,
            numerical_retry: true,
            jobs: 1,
            reuse_basis: true,
            pricing: Pricing::default(),
            cuts: CutMode::default(),
            probing: true,
            scaling: true,
            reduce: true,
        }
    }
}

impl BranchConfig {
    /// A config with the given time limit and otherwise default settings.
    pub fn with_time_limit(limit: Duration) -> BranchConfig {
        BranchConfig {
            time_limit: Some(limit),
            ..BranchConfig::default()
        }
    }

    /// The effective budget for one solve: the configured budget narrowed
    /// by [`time_limit`](Self::time_limit), sharing its cancel flag.
    pub(crate) fn effective_budget(&self) -> Budget {
        match self.time_limit {
            Some(tl) => self.budget.child_with_limit(tl),
            None => self.budget.clone(),
        }
    }
}

/// Mapping from model variables to compressed LP columns.
pub(crate) struct Standardized {
    pub(crate) lp: LpProblem,
    /// Fixed value per model variable (meaningful when `col_of_var` is None).
    pub(crate) fixed_val: Vec<f64>,
    /// Model variable index per LP structural column.
    pub(crate) var_of_col: Vec<u32>,
    /// Model objective constant (plus contribution of fixed variables).
    pub(crate) obj_offset: f64,
    /// Whether each surviving column is integer-constrained.
    pub(crate) col_is_int: Vec<bool>,
}

/// Builds the slack-augmented LP, dropping presolve-fixed columns and
/// redundant rows. `strengthened` (sorted by row index, from
/// [`Presolved::strengthened`](crate::presolve::Presolved::strengthened))
/// substitutes coefficient-strengthened replacements for the rows it names.
fn standardize(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    redundant: &[bool],
    minimize_costs: &[f64],
    strengthened: &[StrengthenedRow],
) -> Standardized {
    let n = model.num_vars();
    let mut col_of_var: Vec<Option<u32>> = vec![None; n]; // local compression map
    let mut fixed_val = vec![0.0; n];
    let mut var_of_col = Vec::new();
    let mut obj_offset = model.objective.constant();
    let mut costs = Vec::new();
    let mut clb = Vec::new();
    let mut cub = Vec::new();
    let mut col_is_int = Vec::new();

    for i in 0..n {
        if (ub[i] - lb[i]).abs() <= FEAS_TOL && lb[i].is_finite() {
            fixed_val[i] = lb[i];
            obj_offset += minimize_costs[i] * lb[i];
        } else {
            col_of_var[i] = Some(var_of_col.len() as u32);
            var_of_col.push(i as u32);
            costs.push(minimize_costs[i]);
            clb.push(lb[i]);
            cub.push(ub[i]);
            col_is_int.push(model.vars[i].kind != VarKind::Continuous);
        }
    }
    let ns = var_of_col.len();

    let mut rows = Vec::new();
    let mut rhs = Vec::new();
    let mut si = 0usize;
    for (ci, c) in model.constraints.iter().enumerate() {
        let strong = if si < strengthened.len() && strengthened[si].0 == ci {
            si += 1;
            Some(&strengthened[si - 1])
        } else {
            None
        };
        if redundant[ci] {
            continue;
        }
        let mut row: Vec<(u32, f64)> = Vec::with_capacity(c.expr.len() + 1);
        let mut b = match strong {
            Some((_, _, srhs)) => *srhs,
            None => c.rhs,
        };
        let add = |row: &mut Vec<(u32, f64)>, b: &mut f64, v: Var, coef: f64| match col_of_var
            [v.index()]
        {
            Some(col) => row.push((col, coef)),
            None => *b -= coef * fixed_val[v.index()],
        };
        match strong {
            Some((_, terms, _)) => {
                for &(v, coef) in terms {
                    add(&mut row, &mut b, v, coef);
                }
            }
            None => {
                for (v, coef) in c.expr.iter() {
                    add(&mut row, &mut b, v, coef);
                }
            }
        }
        if row.is_empty() {
            continue; // fully fixed row; presolve guarantees it is satisfied
        }
        let slack_col = (ns + rows.len()) as u32;
        row.push((slack_col, 1.0));
        match c.cmp {
            Cmp::Le => {
                clb.push(0.0);
                cub.push(f64::INFINITY);
            }
            Cmp::Ge => {
                clb.push(f64::NEG_INFINITY);
                cub.push(0.0);
            }
            Cmp::Eq => {
                clb.push(0.0);
                cub.push(0.0);
            }
        }
        costs.push(0.0);
        rows.push(row);
        rhs.push(b);
    }

    Standardized {
        lp: LpProblem::new(ns, costs, clb, cub, rows, rhs),
        fixed_val,
        var_of_col,
        obj_offset,
        col_is_int,
    }
}

/// A branch decision: tighten one column's bound.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BoundDelta {
    pub(crate) col: u32,
    /// True: set lower bound; false: set upper bound.
    pub(crate) is_lower: bool,
    pub(crate) value: f64,
}

impl BoundDelta {
    /// Tightens `lb`/`ub` by this delta (never loosens).
    pub(crate) fn tighten(&self, lb: &mut [f64], ub: &mut [f64]) {
        let c = self.col as usize;
        if self.is_lower {
            if self.value > lb[c] {
                lb[c] = self.value;
            }
        } else if self.value < ub[c] {
            ub[c] = self.value;
        }
    }
}

struct NodeArena {
    /// (parent index or usize::MAX, delta)
    nodes: Vec<(usize, BoundDelta)>,
}

impl NodeArena {
    fn apply(&self, mut idx: usize, lb: &mut [f64], ub: &mut [f64]) {
        while idx != usize::MAX {
            let (parent, d) = self.nodes[idx];
            d.tighten(lb, ub);
            idx = parent;
        }
    }
}

/// Rejects a NaN node bound before it can reach the open-node heap.
///
/// `OpenNode`'s comparator is [`f64::total_cmp`], so a NaN no longer
/// *corrupts* heap order — but a node whose LP relaxation evaluated to NaN
/// has no meaningful place in a best-first search either, so the solve is
/// aborted as a numerical failure (which the
/// [`numerical_retry`](BranchConfig::numerical_retry) path then retries
/// with Bland's rule).
pub(crate) fn checked_bound(bound: f64) -> Result<f64, SolveError> {
    if bound.is_nan() {
        return Err(SolveError::Numerical(
            "LP relaxation produced a NaN node bound; refusing to enqueue it".into(),
        ));
    }
    Ok(bound)
}

struct OpenNode {
    bound: f64,
    depth: u32,
    arena_idx: usize,
    /// The branching that created this node, for pseudocost updates:
    /// `(column, went_up, parent LP objective, fractional distance)`.
    branch: Option<(usize, bool, f64, f64)>,
    /// The parent's optimal basis, shared by both children: the dual
    /// simplex warm-restarts from it instead of re-solving from scratch.
    basis: Option<Arc<Basis>>,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for OpenNode {}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound first, with a
        // preference for deeper nodes (diving) on ties. `total_cmp` keeps
        // this a lawful total order even for NaN bounds (which
        // `checked_bound` rejects upstream anyway): NaN sorts after every
        // real bound instead of silently comparing "equal" to everything
        // and corrupting the heap invariant.
        other
            .bound
            .total_cmp(&self.bound)
            .then(self.depth.cmp(&other.depth))
    }
}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Expands a compressed LP solution back to full model-variable space.
pub(crate) fn expand(std: &Standardized, x: &[f64]) -> Vec<f64> {
    let mut out = std.fixed_val.clone();
    for (col, &v) in x.iter().enumerate() {
        out[std.var_of_col[col] as usize] = v;
    }
    out
}

/// Pseudocost tables: average objective degradation per unit of fractional
/// distance, per column and branching direction.
pub(crate) struct PcTables {
    up: Vec<(f64, u32)>,
    down: Vec<(f64, u32)>,
}

impl PcTables {
    pub(crate) fn new(num_structural: usize) -> PcTables {
        PcTables {
            up: vec![(0.0, 0); num_structural],
            down: vec![(0.0, 0); num_structural],
        }
    }

    /// Records the observed degradation of one branching: child LP bound
    /// `lp_obj` against its parent's `parent_obj` over distance `dist`.
    pub(crate) fn observe(
        &mut self,
        col: usize,
        up: bool,
        parent_obj: f64,
        dist: f64,
        lp_obj: f64,
    ) {
        let gain = ((lp_obj - parent_obj) / dist.max(1e-6)).max(0.0);
        let slot = if up {
            &mut self.up[col]
        } else {
            &mut self.down[col]
        };
        slot.0 += gain;
        slot.1 += 1;
    }

    /// Branching column for the fractional LP point `x`: pseudocost product
    /// score, falling back to the global average while a column is
    /// unobserved. `None` means `x` is integral.
    pub(crate) fn pick_branch(&self, x: &[f64], col_is_int: &[bool]) -> Option<(usize, f64)> {
        let avg = |table: &[(f64, u32)]| -> f64 {
            let (s, n) = table
                .iter()
                .fold((0.0, 0u32), |(s, n), &(ts, tn)| (s + ts, n + tn));
            if n > 0 {
                s / n as f64
            } else {
                1.0
            }
        };
        let global_up = avg(&self.up);
        let global_down = avg(&self.down);
        let mut frac_col: Option<(usize, f64)> = None;
        let mut best_score = -1.0f64;
        for (c, &xi) in x.iter().enumerate() {
            if col_is_int[c] {
                let f = (xi - xi.round()).abs();
                if f > FEAS_TOL {
                    let d_up = xi.ceil() - xi;
                    let d_down = xi - xi.floor();
                    let e_up = if self.up[c].1 > 0 {
                        self.up[c].0 / self.up[c].1 as f64
                    } else {
                        global_up
                    };
                    let e_down = if self.down[c].1 > 0 {
                        self.down[c].0 / self.down[c].1 as f64
                    } else {
                        global_down
                    };
                    let score = (e_up * d_up).max(1e-8) * (e_down * d_down).max(1e-8);
                    if score > best_score {
                        best_score = score;
                        frac_col = Some((c, f));
                    }
                }
            }
        }
        frac_col
    }
}

/// An incumbent in minimize space: full model values, minimize-space
/// objective, and provenance.
pub(crate) type Incumbent = (Vec<f64>, f64, IncumbentSource);

/// Everything both search engines need, immutable for the whole solve.
pub(crate) struct SearchCtx<'a> {
    pub(crate) model: &'a Model,
    pub(crate) config: &'a BranchConfig,
    pub(crate) maximize: bool,
    pub(crate) budget: Budget,
    pub(crate) lp_opts: SimplexOpts,
    /// Per-variable objective costs in minimize space.
    pub(crate) costs: Vec<f64>,
    pub(crate) std: Standardized,
    /// Added to raw LP objectives to express them in (minimize-space)
    /// model objective terms.
    pub(crate) obj_offset: f64,
    pub(crate) start: Instant,
    /// Optimal basis of the (cut-augmented) root LP, solved once during
    /// [`prepare`]; both engines seed their root node with it so the first
    /// node is a near-free dual warm restart instead of a from-scratch
    /// solve.
    pub(crate) root_basis: Option<Arc<Basis>>,
    /// Per-phase breakdown of the work done in [`prepare`].
    pub(crate) root_profile: RootProfile,
    /// Kernel hypersparsity counters of the root stage (the engines add
    /// their own node-loop counters on top in [`finish`]).
    pub(crate) root_kernel: KernelStats,
}

impl SearchCtx<'_> {
    /// Minimize-space objective of a full model assignment.
    pub(crate) fn eval_obj(&self, vals: &[f64]) -> f64 {
        vals.iter()
            .enumerate()
            .map(|(i, v)| self.costs[i] * v)
            .sum::<f64>()
            + if self.maximize {
                -self.model.objective.constant()
            } else {
                self.model.objective.constant()
            }
    }

    /// Admits `vals` as the incumbent if it strictly improves the current
    /// one, recording a timeline event.
    pub(crate) fn admit(
        &self,
        vals: Vec<f64>,
        source: IncumbentSource,
        inc: &mut Option<Incumbent>,
        timeline: &mut Vec<IncumbentEvent>,
    ) {
        let obj = self.eval_obj(&vals);
        if inc.as_ref().is_none_or(|(_, best, _)| obj < best - 1e-9) {
            timeline.push(IncumbentEvent {
                at: self.start.elapsed(),
                objective: obj,
                source,
            });
            *inc = Some((vals, obj, source));
        }
    }
}

/// Search telemetry counters, shared by both engines.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SearchCounters {
    /// Nodes popped and processed (LP relaxation attempted).
    pub(crate) explored: u64,
    /// Nodes discarded without children (bound cutoff, empty box,
    /// propagation/LP infeasibility, non-root unboundedness).
    pub(crate) pruned: u64,
    /// Nodes split into two children.
    pub(crate) branched: u64,
    /// Simplex iterations across all LP solves.
    pub(crate) lp_iters: u64,
    /// Nodes that arrived with a cached parent basis and tried the dual
    /// warm restart.
    pub(crate) warm_attempts: u64,
    /// Warm-restart attempts that reoptimized without falling back to the
    /// from-scratch primal.
    pub(crate) warm_hits: u64,
    /// Basis re-inversions (eta-file rebuilds) across all LP solves.
    pub(crate) refactors: u64,
    /// FTRAN/BTRAN hypersparsity counters across all LP solves.
    pub(crate) kernel: KernelStats,
}

/// What a search engine hands back for final assembly.
pub(crate) struct SearchOutcome {
    pub(crate) incumbent: Option<Incumbent>,
    /// Minimize-space timeline; flipped to caller space by [`finish`].
    pub(crate) timeline: Vec<IncumbentEvent>,
    pub(crate) counters: SearchCounters,
    pub(crate) limit_hit: Option<String>,
    pub(crate) best_open_bound: f64,
    pub(crate) saw_unbounded_root: bool,
}

/// The model/config digest both engines start from.
pub(crate) struct Prepared<'a> {
    pub(crate) ctx: SearchCtx<'a>,
    pub(crate) incumbent: Option<Incumbent>,
    pub(crate) timeline: Vec<IncumbentEvent>,
    pub(crate) warm_start: WarmStartStatus,
}

/// Presolves, standardizes and validates warm starts — everything up to
/// (but not including) the node loop.
fn prepare<'a>(model: &'a Model, config: &'a BranchConfig) -> Result<Prepared<'a>, SolveError> {
    let start = Instant::now();
    let maximize = model.sense == Sense::Maximize;
    let budget = config.effective_budget();
    let lp_opts = SimplexOpts {
        max_iters: config.max_lp_iters,
        force_bland: config.force_bland,
        tol_scale: config.tol_scale,
        budget: budget.clone(),
        pricing: config.pricing,
    };

    // Internal costs are always "minimize".
    let mut costs = vec![0.0; model.num_vars()];
    for (v, c) in model.objective.iter() {
        costs[v.index()] = if maximize { -c } else { c };
    }

    let mut profile = RootProfile::default();
    let t_pre = Instant::now();
    let popts = PresolveOpts {
        probing: config.probing,
        strengthen: config.probing,
    };
    let pre = presolve_with_opts(model, &budget, &popts);
    if pre.infeasible {
        return Err(SolveError::Infeasible);
    }
    let mut std = standardize(
        model,
        &pre.lb,
        &pre.ub,
        &pre.redundant,
        &costs,
        &pre.strengthened,
    );
    if config.scaling {
        let ss = std.lp.equilibrate();
        profile.scale_rows = ss.rows_scaled;
        profile.scale_range_before = ss.range_before;
        profile.scale_range_after = ss.range_after;
    }
    profile.presolve_us = t_pre.elapsed().as_micros() as u64;
    // `std.obj_offset` holds the raw model constant plus fixed-variable cost
    // contributions (the latter already in minimize space). In maximize mode
    // the constant must enter minimize space negated.
    let signed_const = if maximize {
        -model.objective.constant()
    } else {
        model.objective.constant()
    };
    let obj_offset = std.obj_offset - model.objective.constant() + signed_const;

    // Solve the root LP once, run the cut loop on it, and hand the final
    // basis to the engines so their root node is a near-free warm restart.
    let mut root_kernel = KernelStats::default();
    let root_basis = root_stage(
        &mut std,
        &lp_opts,
        config.cuts,
        config.reduce,
        &mut profile,
        &mut root_kernel,
    )?;

    let ctx = SearchCtx {
        model,
        config,
        maximize,
        budget,
        lp_opts,
        costs,
        std,
        obj_offset,
        start,
        root_basis,
        root_profile: profile,
        root_kernel,
    };

    let mut incumbent: Option<Incumbent> = None;
    let mut timeline = Vec::new();

    // Validate any warm start up front; the outcome (with the exact
    // violation on rejection) is surfaced on the returned Solution instead
    // of being dropped silently.
    let mut warm_start = WarmStartStatus::NotProvided;
    if let Some(init) = &config.initial {
        match certify_values(model, init, FEAS_TOL * 10.0) {
            Ok(_) => {
                warm_start = WarmStartStatus::Accepted;
                ctx.admit(
                    init.clone(),
                    IncumbentSource::WarmStart,
                    &mut incumbent,
                    &mut timeline,
                );
            }
            Err(why) => warm_start = WarmStartStatus::Rejected(why),
        }
    }

    // Handed-off incumbents: validated exactly like the warm start and
    // admitted through `admit`, which keeps whichever candidate has the
    // best objective. An infeasible hand-off is simply ignored (the donor
    // solved a *neighboring* model, so mismatches are expected).
    for cand in &config.extra_starts {
        if certify_values(model, cand, FEAS_TOL * 10.0).is_ok() {
            if warm_start == WarmStartStatus::NotProvided {
                warm_start = WarmStartStatus::Accepted;
            }
            ctx.admit(
                cand.clone(),
                IncumbentSource::WarmStart,
                &mut incumbent,
                &mut timeline,
            );
        }
    }

    Ok(Prepared {
        ctx,
        incumbent,
        timeline,
        warm_start,
    })
}

/// `solve_lp_from` behind the LP reduction presolve: shrink the problem
/// (empty/redundant/singleton/duplicate rows, fixed/empty columns), solve
/// the reduction, then lift the solution *and basis* back to the full
/// space so certification, warm restarts and cut separation all keep
/// operating on the original rows. With `reduce` off — or when reduction
/// removes nothing — this is exactly `solve_lp_from`. `stats_out`, when
/// given, receives the reduction counters of this call.
pub(crate) fn solve_lp_reduced(
    p: &LpProblem,
    lb: &[f64],
    ub: &[f64],
    opts: &SimplexOpts,
    reduce: bool,
    stats_out: Option<&mut ReductionStats>,
) -> Result<LpResult, LpError> {
    if !reduce {
        return solve_lp_from(p, lb, ub, opts);
    }
    let red = match reduce_lp(p, lb, ub) {
        LpReduction::Infeasible => {
            return Ok(LpResult {
                outcome: LpOutcome::Infeasible,
                iterations: 0,
                refactors: 0,
                first_factor_us: 0,
                kernel: KernelStats::default(),
                basis: None,
            })
        }
        LpReduction::Reduced(r) => r,
    };
    if let Some(s) = stats_out {
        *s = red.stats;
    }
    if red.is_noop() {
        return solve_lp_from(p, lb, ub, opts);
    }
    let mut res = solve_lp_from(&red.lp, &red.lb, &red.ub, opts)?;
    res.outcome = match res.outcome {
        LpOutcome::Optimal { x, obj } => {
            let (xf, bf) = red.postsolve(lb, ub, &x, res.basis.as_ref());
            res.basis = bf;
            LpOutcome::Optimal {
                x: xf,
                obj: obj + red.obj_offset,
            }
        }
        other => {
            // Infeasible/unbounded transfer verbatim (the reduction is an
            // exact reformulation), but a reduced-space basis is useless.
            res.basis = None;
            other
        }
    };
    Ok(res)
}

/// Bounded number of root cut-separation rounds.
const MAX_CUT_ROUNDS: usize = 8;
/// Cuts of each family separated per round.
const MAX_CUTS_PER_ROUND: usize = 16;

/// Solves the root LP and, when enabled, runs the root cut loop: separate
/// Gomory + cover cuts from the optimal basis, append them (each with its
/// own slack column), and reoptimize with the dual simplex from the
/// extended basis. Mutates `std.lp` — the engines then search the
/// cut-augmented LP — and returns the final root basis.
///
/// Root conditions the engines already handle (budget exhausted,
/// infeasible or unbounded relaxation) return `Ok(None)` so the node loop
/// rediscovers them through its normal reporting paths; only numerical
/// breakdown is an error here.
fn root_stage(
    std: &mut Standardized,
    lp_opts: &SimplexOpts,
    cuts: CutMode,
    reduce: bool,
    profile: &mut RootProfile,
    kernel: &mut KernelStats,
) -> Result<Option<Arc<Basis>>, SolveError> {
    let t0 = Instant::now();
    let result = root_stage_inner(std, lp_opts, cuts, reduce, profile, kernel);
    profile.root_lp_us = (t0.elapsed().as_micros() as u64).saturating_sub(profile.cut_us);
    result
}

fn root_stage_inner(
    std: &mut Standardized,
    lp_opts: &SimplexOpts,
    cuts: CutMode,
    reduce: bool,
    profile: &mut RootProfile,
    kernel: &mut KernelStats,
) -> Result<Option<Arc<Basis>>, SolveError> {
    let mut red_stats = ReductionStats::default();
    let res = match solve_lp_reduced(
        &std.lp,
        &std.lp.lb,
        &std.lp.ub,
        lp_opts,
        reduce,
        Some(&mut red_stats),
    ) {
        Ok(r) => r,
        Err(LpError::Budget { iterations, .. }) => {
            profile.root_lp_iters += iterations;
            return Ok(None);
        }
        Err(LpError::Numerical(msg)) => return Err(SolveError::Numerical(msg)),
    };
    profile.reduce_rows = red_stats.rows_dropped;
    profile.reduce_cols = red_stats.cols_dropped;
    profile.root_lp_iters += res.iterations;
    profile.first_factor_us = res.first_factor_us;
    kernel.absorb(&res.kernel);
    let (mut x, mut obj) = match res.outcome {
        LpOutcome::Optimal { x, obj } => (x, obj),
        // Infeasible / unbounded root: let the engines rediscover it.
        _ => return Ok(None),
    };
    let mut basis = match res.basis {
        Some(b) => b,
        None => return Ok(None),
    };

    if cuts != CutMode::Root {
        return Ok(Some(Arc::new(basis)));
    }

    let mut stall = 0u32;
    for _round in 0..MAX_CUT_ROUNDS {
        if lp_opts.budget.exhausted() {
            break;
        }
        // Nothing to cut once the relaxation is integral.
        let fractional = x
            .iter()
            .zip(std.col_is_int.iter())
            .any(|(xi, &int)| int && (xi - xi.round()).abs() > FEAS_TOL);
        if !fractional {
            break;
        }
        let t_cut = Instant::now();
        let mut new_cuts = gomory_cuts(
            &std.lp,
            &std.lp.lb,
            &std.lp.ub,
            &basis,
            &std.col_is_int,
            MAX_CUTS_PER_ROUND,
        );
        new_cuts.extend(cover_cuts(
            &std.lp,
            &std.lp.lb,
            &std.lp.ub,
            &x,
            &std.col_is_int,
            MAX_CUTS_PER_ROUND,
        ));
        profile.cut_us += t_cut.elapsed().as_micros() as u64;
        if new_cuts.is_empty() {
            break;
        }
        let first_new_col = std.lp.num_cols;
        std.lp = with_cut_rows(&std.lp, &new_cuts);
        basis = basis.extended_with_cut_slacks(first_new_col, new_cuts.len());
        profile.cut_rounds += 1;
        profile.cuts_added += new_cuts.len() as u64;

        // Reoptimize from the extended basis (dual simplex), falling back
        // to a from-scratch solve when the restart goes stale.
        let resolved = match resolve_lp(&std.lp, &std.lp.lb, &std.lp.ub, &basis, lp_opts) {
            Ok(Some(r)) => r,
            Ok(None) => {
                match solve_lp_reduced(&std.lp, &std.lp.lb, &std.lp.ub, lp_opts, reduce, None) {
                    Ok(r) => r,
                    Err(LpError::Budget { iterations, .. }) => {
                        profile.root_lp_iters += iterations;
                        break;
                    }
                    Err(LpError::Numerical(msg)) => return Err(SolveError::Numerical(msg)),
                }
            }
            Err(LpError::Budget { iterations, .. }) => {
                profile.root_lp_iters += iterations;
                break;
            }
            Err(LpError::Numerical(msg)) => return Err(SolveError::Numerical(msg)),
        };
        profile.root_lp_iters += resolved.iterations;
        kernel.absorb(&resolved.kernel);
        let (nx, nobj) = match resolved.outcome {
            LpOutcome::Optimal { x, obj } => (x, obj),
            // Cuts hold for every integer point, so a cut-infeasible
            // relaxation means the integer problem is infeasible; hand the
            // augmented LP back basis-less and let the engines report it.
            LpOutcome::Infeasible | LpOutcome::Unbounded => return Ok(None),
        };
        let Some(nb) = resolved.basis else { break };
        // Minimize space: cuts can only raise the root bound. Stop after
        // two rounds without measurable progress.
        if nobj <= obj + 1e-7 * obj.abs().max(1.0) {
            stall += 1;
        } else {
            stall = 0;
        }
        x = nx;
        obj = nobj;
        basis = nb;
        if stall >= 2 {
            break;
        }
    }
    Ok(Some(Arc::new(basis)))
}

/// Assembles the final [`Solution`] (or error) from a finished search.
pub(crate) fn finish(
    ctx: &SearchCtx<'_>,
    warm_start: WarmStartStatus,
    out: SearchOutcome,
) -> Result<Solution, SolveError> {
    if out.saw_unbounded_root {
        return Err(SolveError::Unbounded);
    }
    let flip = |v: f64| if ctx.maximize { -v } else { v };
    let timeline: Vec<IncumbentEvent> = out
        .timeline
        .into_iter()
        .map(|e| IncumbentEvent {
            objective: flip(e.objective),
            ..e
        })
        .collect();
    let jobs = ctx.config.jobs.max(1);
    // Root-stage LP iterations happened before the engines took over, so
    // the node-loop counters do not include them.
    let lp_iterations = out.counters.lp_iters + ctx.root_profile.root_lp_iters;
    let mut kernel = ctx.root_kernel;
    kernel.absorb(&out.counters.kernel);
    match (out.incumbent, out.limit_hit) {
        (Some((vals, obj, source)), None) => Ok(Solution {
            values: vals,
            objective: flip(obj),
            best_bound: flip(obj),
            status: SolveStatus::Optimal,
            nodes: out.counters.explored,
            nodes_pruned: out.counters.pruned,
            nodes_branched: out.counters.branched,
            lp_iterations,
            lp_warm_attempts: out.counters.warm_attempts,
            lp_warm_hits: out.counters.warm_hits,
            lp_refactors: out.counters.refactors,
            lp_ftran: kernel.ftran,
            lp_ftran_hyper: kernel.ftran_hyper,
            lp_btran: kernel.btran,
            lp_btran_hyper: kernel.btran_hyper,
            wall_time: ctx.start.elapsed(),
            incumbent_source: source,
            warm_start,
            certificate: None,
            timeline,
            jobs,
            root_profile: ctx.root_profile,
        }),
        (Some((vals, obj, source)), Some(_)) => {
            let bound = out.best_open_bound.min(obj);
            Ok(Solution {
                values: vals,
                objective: flip(obj),
                best_bound: flip(bound),
                status: SolveStatus::Feasible,
                nodes: out.counters.explored,
                nodes_pruned: out.counters.pruned,
                nodes_branched: out.counters.branched,
                lp_iterations,
                lp_warm_attempts: out.counters.warm_attempts,
                lp_warm_hits: out.counters.warm_hits,
                lp_refactors: out.counters.refactors,
                lp_ftran: kernel.ftran,
                lp_ftran_hyper: kernel.ftran_hyper,
                lp_btran: kernel.btran,
                lp_btran_hyper: kernel.btran_hyper,
                wall_time: ctx.start.elapsed(),
                incumbent_source: source,
                warm_start,
                certificate: None,
                timeline,
                jobs,
                root_profile: ctx.root_profile,
            })
        }
        (None, None) => Err(SolveError::Infeasible),
        (None, Some(l)) => Err(SolveError::Limit(l)),
    }
}

/// Solves `model` by branch and bound.
///
/// # Errors
///
/// * [`SolveError::Infeasible`] / [`SolveError::Unbounded`] for models with
///   no optimum.
/// * [`SolveError::Limit`] when a limit fires before any feasible point.
/// * [`SolveError::Numerical`] on simplex breakdown.
pub fn solve(model: &Model, config: &BranchConfig) -> Result<Solution, SolveError> {
    let prep = prepare(model, config)?;
    let Prepared {
        ctx,
        incumbent,
        timeline,
        warm_start,
    } = prep;
    let out = if config.jobs > 1 {
        crate::parallel::search(&ctx, incumbent, timeline)?
    } else {
        sequential(&ctx, incumbent, timeline)?
    };
    finish(&ctx, warm_start, out)
}

/// The legacy single-threaded best-first loop.
fn sequential(
    ctx: &SearchCtx<'_>,
    mut incumbent: Option<Incumbent>,
    mut timeline: Vec<IncumbentEvent>,
) -> Result<SearchOutcome, SolveError> {
    let config = ctx.config;
    let std = &ctx.std;
    let mut counters = SearchCounters::default();

    // Root node.
    let arena = &mut NodeArena { nodes: Vec::new() };
    let mut heap = BinaryHeap::new();
    heap.push(OpenNode {
        bound: f64::NEG_INFINITY,
        depth: 0,
        arena_idx: usize::MAX,
        branch: None,
        // The root LP was already solved (and cut) in `prepare`; restarting
        // from its basis makes the first node a handful of dual pivots.
        basis: ctx.root_basis.clone(),
    });
    let mut pc = PcTables::new(std.lp.num_structural);

    let mut best_open_bound = f64::NEG_INFINITY;
    let mut limit_hit: Option<String> = None;
    let mut saw_unbounded_root = false;

    let mut lb_buf = vec![0.0; std.lp.num_cols];
    let mut ub_buf = vec![0.0; std.lp.num_cols];

    while let Some(node) = heap.pop() {
        // Prune against incumbent.
        if let Some((_, best, _)) = &incumbent {
            if node.bound >= best - config.gap_tol * best.abs().max(1.0) {
                counters.pruned += 1;
                continue;
            }
        }
        if let Err(reason) = ctx.budget.check() {
            limit_hit = Some(reason.to_string());
            best_open_bound = node.bound;
            break;
        }
        if counters.explored >= config.node_limit {
            limit_hit = Some(format!("node limit {}", config.node_limit));
            best_open_bound = node.bound;
            break;
        }
        counters.explored += 1;

        // Materialize bounds for this node, then propagate them through
        // the rows (often fixes chains or proves the node empty cheaply).
        lb_buf.copy_from_slice(&std.lp.lb);
        ub_buf.copy_from_slice(&std.lp.ub);
        arena.apply(node.arena_idx, &mut lb_buf, &mut ub_buf);
        if lb_buf
            .iter()
            .zip(ub_buf.iter())
            .any(|(l, u)| *l > u + FEAS_TOL)
        {
            counters.pruned += 1;
            continue; // branching made it empty
        }
        if !propagate_bounds(&std.lp, &mut lb_buf, &mut ub_buf, &std.col_is_int, 3) {
            counters.pruned += 1;
            continue; // propagation proved infeasibility
        }

        // Warm restart from the parent's basis when the node carries one,
        // falling back to the from-scratch two-phase primal on a miss.
        let mut res: Option<LpResult> = None;
        if ctx.config.reuse_basis {
            if let Some(basis) = node.basis.as_deref() {
                counters.warm_attempts += 1;
                match resolve_lp(&std.lp, &lb_buf, &ub_buf, basis, &ctx.lp_opts) {
                    Ok(Some(r)) => {
                        counters.warm_hits += 1;
                        res = Some(r);
                    }
                    Ok(None) => {} // stale basis: primal fallback below
                    Err(LpError::Budget { reason, iterations }) => {
                        counters.lp_iters += iterations;
                        limit_hit = Some(reason.to_string());
                        best_open_bound = node.bound;
                        break;
                    }
                    Err(LpError::Numerical(msg)) => return Err(SolveError::Numerical(msg)),
                }
            }
        }
        let res = match res {
            Some(r) => r,
            None => match solve_lp_reduced(
                &std.lp,
                &lb_buf,
                &ub_buf,
                &ctx.lp_opts,
                ctx.config.reduce,
                None,
            ) {
                Ok(r) => r,
                Err(LpError::Budget { reason, iterations }) => {
                    // Budget ran out inside the pivot loop: stop gracefully
                    // with the incumbent found so far, like any other limit.
                    counters.lp_iters += iterations;
                    limit_hit = Some(reason.to_string());
                    best_open_bound = node.bound;
                    break;
                }
                Err(LpError::Numerical(msg)) => return Err(SolveError::Numerical(msg)),
            },
        };
        counters.lp_iters += res.iterations;
        counters.refactors += res.refactors;
        counters.kernel.absorb(&res.kernel);
        let child_basis = res.basis.map(Arc::new);
        let (x, lp_obj) = match res.outcome {
            LpOutcome::Infeasible => {
                counters.pruned += 1;
                continue;
            }
            LpOutcome::Unbounded => {
                if node.depth == 0 && incumbent.is_none() {
                    saw_unbounded_root = true;
                    break;
                }
                counters.pruned += 1;
                continue;
            }
            LpOutcome::Optimal { x, obj } => (x, checked_bound(obj + ctx.obj_offset)?),
        };

        // Pseudocost update from the branching that created this node.
        if let Some((col, up, parent_obj, dist)) = node.branch {
            pc.observe(col, up, parent_obj, dist, lp_obj);
        }

        if let Some((_, best, _)) = &incumbent {
            if lp_obj >= best - config.gap_tol * best.abs().max(1.0) {
                counters.pruned += 1;
                continue;
            }
        }

        match pc.pick_branch(&x, &std.col_is_int) {
            None => {
                // Integral LP optimum: new incumbent.
                let mut vals = expand(std, &x);
                for (i, v) in vals.iter_mut().enumerate() {
                    if ctx.model.vars[i].kind != VarKind::Continuous {
                        *v = v.round();
                    }
                }
                ctx.admit(
                    vals,
                    IncumbentSource::LpIntegral,
                    &mut incumbent,
                    &mut timeline,
                );
            }
            Some((c, _)) => {
                // Heuristic: round and repair occasionally.
                if config.heuristic_period > 0 && counters.explored % config.heuristic_period == 1 {
                    if let Some(vals) = crate::heur::round_and_repair(
                        &std.lp,
                        &lb_buf,
                        &ub_buf,
                        &std.col_is_int,
                        &x,
                        &ctx.lp_opts,
                    ) {
                        let full = expand(std, &vals);
                        if ctx.model.is_feasible(&full, FEAS_TOL * 10.0) {
                            ctx.admit(
                                full,
                                IncumbentSource::Heuristic,
                                &mut incumbent,
                                &mut timeline,
                            );
                        }
                    }
                }
                counters.branched += 1;
                let xi = x[c];
                let down = xi.floor();
                let up = xi.ceil();
                let depth = node.depth + 1;
                debug_assert!(
                    lp_obj.is_finite(),
                    "child node bound must be finite, got {lp_obj}"
                );
                for (is_lower, value, dist) in [(false, down, xi - down), (true, up, up - xi)] {
                    arena.nodes.push((
                        node.arena_idx,
                        BoundDelta {
                            col: c as u32,
                            is_lower,
                            value,
                        },
                    ));
                    heap.push(OpenNode {
                        bound: lp_obj,
                        depth,
                        arena_idx: arena.nodes.len() - 1,
                        branch: Some((c, is_lower, lp_obj, dist)),
                        basis: child_basis.clone(),
                    });
                }
            }
        }
    }

    Ok(SearchOutcome {
        incumbent,
        timeline,
        counters,
        limit_hit,
        best_open_bound,
        saw_unbounded_root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("c1", x + y, Cmp::Le, 4.0);
        m.set_objective(3.0 * x + 2.0 * y, Sense::Maximize);
        let s = m.solve().unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_small() {
        // Classic 0/1 knapsack: weights 2,3,4,5 values 3,4,5,6 cap 5 -> best 7 (items 1+2).
        let mut m = Model::new("knap");
        let items: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        let w = [2.0, 3.0, 4.0, 5.0];
        let v = [3.0, 4.0, 5.0, 6.0];
        let weight: crate::LinExpr = items.iter().zip(w.iter()).map(|(&x, &wi)| wi * x).sum();
        let value: crate::LinExpr = items.iter().zip(v.iter()).map(|(&x, &vi)| vi * x).sum();
        m.add_constraint("cap", weight, Cmp::Le, 5.0);
        m.set_objective(value, Sense::Maximize);
        let s = m.solve().unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() - 7.0).abs() < 1e-6);
        assert_eq!(s.int_value(items[0]), 1);
        assert_eq!(s.int_value(items[1]), 1);
    }

    #[test]
    fn integer_rounding_gap() {
        // min x s.t. 2x >= 5, x integer -> x = 3 (LP gives 2.5).
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Ge, 5.0);
        m.set_objective(crate::LinExpr::from(x), Sense::Minimize);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 3);
        assert!(s.is_optimal());
    }

    #[test]
    fn infeasible_integer_model() {
        // 0 <= x <= 1 integer, 2x = 1 -> infeasible.
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 1.0);
        m.add_constraint("c", 2.0 * x, Cmp::Eq, 1.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn warm_start_is_used() {
        let mut m = Model::new("t");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", x + y, Cmp::Le, 1.0);
        m.set_objective(x + y, Sense::Maximize);
        let cfg = BranchConfig {
            initial: Some(vec![1.0, 0.0]),
            ..BranchConfig::default()
        };
        let s = m.solve_with(&cfg).unwrap();
        assert!((s.objective() - 1.0).abs() < 1e-6);
        assert_eq!(*s.warm_start(), WarmStartStatus::Accepted);
    }

    #[test]
    fn infeasible_warm_start_is_rejected_with_reason() {
        let mut m = Model::new("t");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("cap", x + y, Cmp::Le, 1.0);
        m.set_objective(x + y, Sense::Maximize);
        let cfg = BranchConfig {
            initial: Some(vec![1.0, 1.0]), // violates "cap"
            ..BranchConfig::default()
        };
        let s = m.solve_with(&cfg).unwrap();
        assert!((s.objective() - 1.0).abs() < 1e-6);
        match s.warm_start() {
            WarmStartStatus::Rejected(crate::CertifyError::ConstraintViolation {
                constraint,
                ..
            }) => assert_eq!(constraint, "cap"),
            other => panic!("expected rejection naming the constraint, got {other:?}"),
        }
    }

    #[test]
    fn handed_off_incumbents_compete_on_objective() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Ge, 5.0);
        m.set_objective(crate::LinExpr::from(x), Sense::Minimize);
        // No `initial`; two hand-offs — one infeasible (ignored), one
        // feasible. Under a dead budget the best feasible hand-off is
        // exactly what comes back.
        let cfg = BranchConfig {
            budget: Budget::with_limit(Duration::ZERO),
            time_limit: None,
            extra_starts: vec![vec![1.0], vec![4.0]], // 1.0 violates "c"
            ..BranchConfig::default()
        };
        let s = m.solve_with(&cfg).unwrap();
        assert_eq!(s.status(), SolveStatus::Feasible);
        assert_eq!(s.int_value(x), 4);
        assert_eq!(*s.warm_start(), WarmStartStatus::Accepted);
        assert_eq!(s.incumbent_source(), IncumbentSource::WarmStart);
    }

    #[test]
    fn exhausted_budget_returns_warm_start_incumbent() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Ge, 5.0);
        m.set_objective(crate::LinExpr::from(x), Sense::Minimize);
        let cfg = BranchConfig {
            budget: Budget::with_limit(Duration::ZERO),
            time_limit: None,
            initial: Some(vec![4.0]),
            ..BranchConfig::default()
        };
        let s = m.solve_with(&cfg).unwrap();
        assert_eq!(s.status(), SolveStatus::Feasible);
        assert_eq!(s.int_value(x), 4);
        assert_eq!(s.incumbent_source(), IncumbentSource::WarmStart);
        assert!(s.certificate().is_some());
    }

    #[test]
    fn exhausted_budget_without_incumbent_is_a_limit_error() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Ge, 5.0);
        m.set_objective(crate::LinExpr::from(x), Sense::Minimize);
        let cfg = BranchConfig {
            budget: Budget::with_limit(Duration::ZERO),
            time_limit: None,
            ..BranchConfig::default()
        };
        assert!(matches!(
            m.solve_with(&cfg).unwrap_err(),
            SolveError::Limit(_)
        ));
    }

    #[test]
    fn cancellation_stops_the_search() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x, Cmp::Ge, 5.0);
        m.set_objective(crate::LinExpr::from(x), Sense::Minimize);
        let budget = Budget::unlimited();
        budget.cancel();
        let cfg = BranchConfig {
            budget,
            time_limit: None,
            ..BranchConfig::default()
        };
        match m.solve_with(&cfg).unwrap_err() {
            SolveError::Limit(msg) => assert!(msg.contains("cancelled"), "{msg}"),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn objective_constant_is_reported() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 5.0);
        m.set_objective(x + 10.0, Sense::Minimize);
        let s = m.solve().unwrap();
        assert!((s.objective() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn maximize_with_constant() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 5.0);
        m.set_objective(x + 10.0, Sense::Maximize);
        let s = m.solve().unwrap();
        assert!((s.objective() - 15.0).abs() < 1e-6, "got {}", s.objective());
    }

    #[test]
    fn equality_constrained_integers() {
        // x + y = 7, x - y = 1, integers: x=4, y=3.
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_constraint("s", x + y, Cmp::Eq, 7.0);
        m.add_constraint("d", x - y, Cmp::Eq, 1.0);
        m.set_objective(crate::LinExpr::new(), Sense::Minimize);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 4);
        assert_eq!(s.int_value(y), 3);
    }

    #[test]
    fn nan_bound_is_rejected_not_enqueued() {
        // Regression for the NaN-unsafe heap ordering: a NaN node bound is
        // refused at admission (numerical failure) instead of entering the
        // heap where it used to compare "equal" to everything.
        assert!(matches!(
            checked_bound(f64::NAN),
            Err(SolveError::Numerical(_))
        ));
        assert_eq!(checked_bound(2.5).unwrap(), 2.5);
        // Infinities are lawful bounds (root sentinel / empty relaxations).
        assert!(checked_bound(f64::NEG_INFINITY).is_ok());
        assert!(checked_bound(f64::INFINITY).is_ok());
    }

    #[test]
    fn open_node_order_is_total_even_with_nan_bounds() {
        let node = |bound: f64| OpenNode {
            bound,
            depth: 0,
            arena_idx: usize::MAX,
            branch: None,
            basis: None,
        };
        // Antisymmetry must hold where partial_cmp().unwrap_or(Equal) broke
        // it: NaN vs real compared Equal both ways before, now the order is
        // consistent and reversible.
        let (a, b) = (node(f64::NAN), node(1.0));
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Pop order stays best-first (smallest bound first) with NaN last.
        let mut heap = BinaryHeap::new();
        for bound in [f64::NAN, 1.0, f64::NEG_INFINITY, -3.0] {
            heap.push(node(bound));
        }
        let popped: Vec<f64> = std::iter::from_fn(|| heap.pop().map(|n| n.bound)).collect();
        assert_eq!(popped[0], f64::NEG_INFINITY);
        assert_eq!(popped[1], -3.0);
        assert_eq!(popped[2], 1.0);
        assert!(popped[3].is_nan());
    }

    #[test]
    fn nan_objective_is_a_numerical_error() {
        let mut m = Model::new("t");
        let x = m.add_integer("x", 0.0, 5.0);
        m.set_objective(f64::NAN * x, Sense::Minimize);
        assert!(matches!(m.solve().unwrap_err(), SolveError::Numerical(_)));
    }

    #[test]
    fn telemetry_counters_are_reported() {
        // The knapsack forces real branching, so explored/branched/pruned
        // and the incumbent timeline must all be non-trivial.
        let mut m = Model::new("knap");
        let items: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        let w = [2.0, 3.0, 4.0, 5.0, 7.0, 8.0];
        let v = [3.0, 4.0, 5.0, 6.0, 9.0, 10.0];
        let weight: crate::LinExpr = items.iter().zip(w.iter()).map(|(&x, &wi)| wi * x).sum();
        let value: crate::LinExpr = items.iter().zip(v.iter()).map(|(&x, &vi)| vi * x).sum();
        m.add_constraint("cap", weight, Cmp::Le, 11.0);
        m.set_objective(value, Sense::Maximize);
        // Root cuts can make this knapsack integral at the root; disable
        // them (and probing) so the search genuinely branches.
        let cfg = BranchConfig {
            cuts: CutMode::Off,
            probing: false,
            ..BranchConfig::default()
        };
        let s = m.solve_with(&cfg).unwrap();
        assert!(s.is_optimal());
        assert!(s.nodes() >= 1);
        assert!(s.nodes_branched() >= 1, "expected at least one branching");
        assert!(!s.incumbent_timeline().is_empty());
        // The timeline must strictly improve toward the final objective.
        let objs: Vec<f64> = s.incumbent_timeline().iter().map(|e| e.objective).collect();
        for pair in objs.windows(2) {
            assert!(
                pair[1] > pair[0],
                "maximize timeline not improving: {objs:?}"
            );
        }
        assert_eq!(*objs.last().unwrap(), s.objective());
        assert_eq!(s.jobs(), 1);
    }

    #[test]
    fn all_pricing_and_cut_configs_agree() {
        // The same knapsack solved under every pricing × cuts × probing
        // combination must prove the same optimum.
        let build = || {
            let mut m = Model::new("knap");
            let items: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
            let w = [2.0, 3.0, 4.0, 5.0, 7.0, 8.0];
            let v = [3.0, 4.0, 5.0, 6.0, 9.0, 10.0];
            let weight: crate::LinExpr = items.iter().zip(w.iter()).map(|(&x, &wi)| wi * x).sum();
            let value: crate::LinExpr = items.iter().zip(v.iter()).map(|(&x, &vi)| vi * x).sum();
            m.add_constraint("cap", weight, Cmp::Le, 11.0);
            m.set_objective(value, Sense::Maximize);
            m
        };
        for pricing in [Pricing::Dantzig, Pricing::Devex] {
            for cuts in [CutMode::Off, CutMode::Root] {
                for probing in [false, true] {
                    let cfg = BranchConfig {
                        pricing,
                        cuts,
                        probing,
                        ..BranchConfig::default()
                    };
                    let s = build().solve_with(&cfg).unwrap();
                    assert!(s.is_optimal(), "{pricing:?}/{cuts:?}/probing={probing}");
                    assert!(
                        (s.objective() - 14.0).abs() < 1e-6,
                        "{pricing:?}/{cuts:?}/probing={probing}: {}",
                        s.objective()
                    );
                }
            }
        }
    }

    #[test]
    fn root_profile_reports_root_lp_work() {
        let mut m = Model::new("knap");
        let items: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        let w = [2.0, 3.0, 4.0, 5.0, 7.0, 8.0];
        let v = [3.0, 4.0, 5.0, 6.0, 9.0, 10.0];
        let weight: crate::LinExpr = items.iter().zip(w.iter()).map(|(&x, &wi)| wi * x).sum();
        let value: crate::LinExpr = items.iter().zip(v.iter()).map(|(&x, &vi)| vi * x).sum();
        m.add_constraint("cap", weight, Cmp::Le, 11.0);
        m.set_objective(value, Sense::Maximize);
        let s = m.solve().unwrap();
        let p = s.root_profile();
        assert!(p.root_lp_iters > 0, "root LP must do work: {p:?}");
        assert!(
            s.lp_iterations() >= p.root_lp_iters,
            "totals include the root stage: {} < {}",
            s.lp_iterations(),
            p.root_lp_iters
        );
        // Cut telemetry is consistent: rounds imply cuts and vice versa.
        assert_eq!(p.cut_rounds == 0, p.cuts_added == 0, "{p:?}");
    }

    /// Brute-force cross-check on random small ILPs.
    #[test]
    fn random_ilps_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..40 {
            let nv = 4;
            let mut m = Model::new("r");
            let vars: Vec<_> = (0..nv)
                .map(|i| m.add_integer(format!("x{i}"), 0.0, 3.0))
                .collect();
            let mut cons = Vec::new();
            for ci in 0..3 {
                let a: Vec<f64> = (0..nv).map(|_| rng.gen_range(-2i64..=3) as f64).collect();
                let b = rng.gen_range(0i64..=10) as f64;
                let expr: crate::LinExpr = vars.iter().zip(a.iter()).map(|(&v, &c)| c * v).sum();
                m.add_constraint(format!("c{ci}"), expr, Cmp::Le, b);
                cons.push((a, b));
            }
            let c: Vec<f64> = (0..nv).map(|_| rng.gen_range(-3i64..=3) as f64).collect();
            let obj: crate::LinExpr = vars.iter().zip(c.iter()).map(|(&v, &co)| co * v).sum();
            m.set_objective(obj, Sense::Minimize);

            // Brute force over 4^4 = 256 points.
            let mut best = f64::INFINITY;
            for code in 0..256 {
                let xs: Vec<f64> = (0..nv).map(|i| ((code >> (2 * i)) & 3) as f64).collect();
                if cons.iter().all(|(a, b)| {
                    a.iter().zip(&xs).map(|(ai, xi)| ai * xi).sum::<f64>() <= *b + 1e-9
                }) {
                    best = best.min(c.iter().zip(&xs).map(|(ci, xi)| ci * xi).sum());
                }
            }
            match m.solve() {
                Ok(s) => {
                    assert!(s.is_optimal(), "trial {trial} not optimal");
                    assert!(
                        (s.objective() - best).abs() < 1e-5,
                        "trial {trial}: solver {} vs brute {best}",
                        s.objective()
                    );
                }
                Err(SolveError::Infeasible) => {
                    assert!(
                        best.is_infinite(),
                        "trial {trial}: solver infeasible, brute {best}"
                    );
                }
                Err(e) => panic!("trial {trial}: {e}"),
            }
        }
    }
}
