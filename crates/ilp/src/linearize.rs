//! Standard linearizations of non-linear constructs.
//!
//! The prefix-structure IP in the GOMIL paper (Eqs. 17–26) contains three
//! non-linear components — `max{x,y}`, `min{…}`, and products with binary
//! variables — which the paper notes "can all be transformed into linear
//! constraints". This module provides exactly those transformations as
//! methods on [`Model`].

use crate::expr::{LinExpr, Var};
use crate::model::{Cmp, Model};

impl Model {
    /// Adds `z = x ∧ y` for binaries `x`, `y`; returns the new binary `z`.
    ///
    /// Encoded as `z ≤ x`, `z ≤ y`, `z ≥ x + y − 1`.
    pub fn and_binary(&mut self, name: impl Into<String>, x: Var, y: Var) -> Var {
        let name = name.into();
        let z = self.add_binary(&name);
        self.add_constraint(format!("{name}_le_x"), z - x, Cmp::Le, 0.0);
        self.add_constraint(format!("{name}_le_y"), z - y, Cmp::Le, 0.0);
        self.add_constraint(format!("{name}_ge"), x + y - z, Cmp::Le, 1.0);
        z
    }

    /// Adds `z = x ∨ y` for binaries `x`, `y`; returns the new binary `z`.
    ///
    /// Note `x + y − x·y` (Eq. 11 of the paper) is exactly boolean OR.
    pub fn or_binary(&mut self, name: impl Into<String>, x: Var, y: Var) -> Var {
        let name = name.into();
        let z = self.add_binary(&name);
        self.add_constraint(format!("{name}_ge_x"), x - z, Cmp::Le, 0.0);
        self.add_constraint(format!("{name}_ge_y"), y - z, Cmp::Le, 0.0);
        self.add_constraint(format!("{name}_le"), z - x - y, Cmp::Le, 0.0);
        z
    }

    /// Adds `z = x₁ ∨ x₂ ∨ …` for a non-empty slice of binaries.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn or_of(&mut self, name: impl Into<String>, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "or_of requires at least one variable");
        let name = name.into();
        let z = self.add_binary(&name);
        let mut sum = LinExpr::new();
        for (k, &x) in xs.iter().enumerate() {
            self.add_constraint(format!("{name}_ge{k}"), x - z, Cmp::Le, 0.0);
            sum += LinExpr::from(x);
        }
        self.add_constraint(format!("{name}_le"), z - sum, Cmp::Le, 0.0);
        z
    }

    /// Adds `z = b · x` where `b` is binary and `x` is any variable with
    /// finite bounds `[xlb, xub]`; returns continuous `z`.
    ///
    /// Standard McCormick-style encoding:
    /// `z ≤ xub·b`, `z ≥ xlb·b`, `z ≤ x − xlb·(1−b)`, `z ≥ x − xub·(1−b)`.
    ///
    /// # Panics
    ///
    /// Panics if `xlb > xub` or either bound is infinite.
    pub fn product_bin(
        &mut self,
        name: impl Into<String>,
        b: Var,
        x: Var,
        xlb: f64,
        xub: f64,
    ) -> Var {
        assert!(
            xlb.is_finite() && xub.is_finite() && xlb <= xub,
            "product_bin needs finite ordered bounds"
        );
        let name = name.into();
        let z = self.add_continuous(&name, xlb.min(0.0), xub.max(0.0));
        self.add_constraint(format!("{name}_ub"), z - xub * b, Cmp::Le, 0.0);
        self.add_constraint(format!("{name}_lb"), xlb * b - z, Cmp::Le, 0.0);
        // z ≤ x − xlb·(1−b)   ⇔   z − x − xlb·b ≤ −xlb
        self.add_constraint(format!("{name}_x_u"), z - x - xlb * b, Cmp::Le, -xlb);
        // z ≥ x − xub·(1−b)   ⇔   x − z + xub·b ≤ xub
        self.add_constraint(format!("{name}_x_l"), x - z + xub * b, Cmp::Le, xub);
        z
    }

    /// Adds the one-sided constraint `target ≥ expr − big_m·(1−b)`:
    /// when binary `b` is 1, forces `target ≥ expr`.
    ///
    /// This is the workhorse of the prefix IP: together with a minimizing
    /// objective that is monotone in `target`, it implements the selected-
    /// branch equalities of Eqs. (24)–(25) without auxiliary products.
    pub fn indicator_ge(
        &mut self,
        name: impl Into<String>,
        b: Var,
        target: impl Into<LinExpr>,
        expr: impl Into<LinExpr>,
        big_m: f64,
    ) {
        // target ≥ expr − M(1−b)  ⇔  expr − target − M·(1−b) ≤ 0
        //                         ⇔  expr − target + M·b ≤ M
        let e = expr.into() - target.into() + big_m * LinExpr::from(b);
        self.add_constraint(name, e, Cmp::Le, big_m);
    }

    /// Adds `target ≥ expr` unconditionally (lower-bound form of `max`).
    ///
    /// With a minimizing objective monotone in `target`, posting this for
    /// each operand makes `target = max{…}` at the optimum.
    pub fn max_lower_bound(
        &mut self,
        name: impl Into<String>,
        target: impl Into<LinExpr>,
        expr: impl Into<LinExpr>,
    ) {
        let e = expr.into() - target.into();
        self.add_constraint(name, e, Cmp::Le, 0.0);
    }

    /// Adds `z = max(xs)` exactly, using one selector binary per operand.
    ///
    /// `span` must bound `max(xs) − min(xs)` from above (a valid big-M).
    /// Returns the continuous `z` constrained to `[lb, ub]`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn exact_max(
        &mut self,
        name: impl Into<String>,
        xs: &[Var],
        lb: f64,
        ub: f64,
        span: f64,
    ) -> Var {
        assert!(!xs.is_empty(), "exact_max requires at least one variable");
        let name = name.into();
        let z = self.add_continuous(&name, lb, ub);
        let mut sel_sum = LinExpr::new();
        for (k, &x) in xs.iter().enumerate() {
            self.add_constraint(format!("{name}_ge{k}"), LinExpr::from(x) - z, Cmp::Le, 0.0);
            let y = self.add_binary(format!("{name}_sel{k}"));
            // z ≤ x + span·(1−y)
            self.add_constraint(
                format!("{name}_le{k}"),
                LinExpr::from(z) - x + span * LinExpr::from(y),
                Cmp::Le,
                span,
            );
            sel_sum += LinExpr::from(y);
        }
        self.add_constraint(format!("{name}_sel"), sel_sum, Cmp::Eq, 1.0);
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn and_binary_truth_table() {
        for (x0, y0, z0) in [
            (0.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (1.0, 0.0, 0.0),
            (1.0, 1.0, 1.0),
        ] {
            let mut m = Model::new("t");
            let x = m.add_binary("x");
            let y = m.add_binary("y");
            let z = m.and_binary("z", x, y);
            m.set_var_bounds(x, x0, x0);
            m.set_var_bounds(y, y0, y0);
            // Push z both ways to confirm it is forced.
            for sense in [Sense::Minimize, Sense::Maximize] {
                let mut mm = m.clone();
                mm.set_objective(LinExpr::from(z), sense);
                let s = mm.solve().unwrap();
                assert_eq!(s.int_value(z) as f64, z0, "x={x0} y={y0} sense={sense:?}");
            }
        }
    }

    #[test]
    fn or_binary_truth_table() {
        for (x0, y0, z0) in [
            (0.0, 0.0, 0.0),
            (0.0, 1.0, 1.0),
            (1.0, 0.0, 1.0),
            (1.0, 1.0, 1.0),
        ] {
            let mut m = Model::new("t");
            let x = m.add_binary("x");
            let y = m.add_binary("y");
            let z = m.or_binary("z", x, y);
            m.set_var_bounds(x, x0, x0);
            m.set_var_bounds(y, y0, y0);
            for sense in [Sense::Minimize, Sense::Maximize] {
                let mut mm = m.clone();
                mm.set_objective(LinExpr::from(z), sense);
                let s = mm.solve().unwrap();
                assert_eq!(s.int_value(z) as f64, z0);
            }
        }
    }

    #[test]
    fn or_of_many() {
        let mut m = Model::new("t");
        let xs: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        let z = m.or_of("z", &xs);
        for (i, &x) in xs.iter().enumerate() {
            let v = if i == 2 { 1.0 } else { 0.0 };
            m.set_var_bounds(x, v, v);
        }
        m.set_objective(LinExpr::from(z), Sense::Minimize);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(z), 1);
    }

    #[test]
    fn product_bin_matches_multiplication() {
        for b0 in [0.0, 1.0] {
            for x0 in [-2.0, 0.0, 3.5] {
                let mut m = Model::new("t");
                let b = m.add_binary("b");
                let x = m.add_continuous("x", -5.0, 5.0);
                let z = m.product_bin("z", b, x, -5.0, 5.0);
                m.set_var_bounds(b, b0, b0);
                m.set_var_bounds(x, x0, x0);
                m.set_objective(LinExpr::new(), Sense::Minimize);
                let s = m.solve().unwrap();
                assert!(
                    (s.value(z) - b0 * x0).abs() < 1e-6,
                    "b={b0} x={x0} z={}",
                    s.value(z)
                );
            }
        }
    }

    #[test]
    fn exact_max_selects_largest() {
        let mut m = Model::new("t");
        let a = m.add_continuous("a", 0.0, 10.0);
        let b = m.add_continuous("b", 0.0, 10.0);
        let z = m.exact_max("z", &[a, b], 0.0, 10.0, 10.0);
        m.set_var_bounds(a, 3.0, 3.0);
        m.set_var_bounds(b, 7.0, 7.0);
        // Even when minimized, z must stay at the max.
        m.set_objective(LinExpr::from(z), Sense::Minimize);
        let s = m.solve().unwrap();
        assert!((s.value(z) - 7.0).abs() < 1e-6);
        // And maximizing cannot push it above the max.
        let mut m2 = Model::new("t2");
        let a = m2.add_continuous("a", 4.0, 4.0);
        let b = m2.add_continuous("b", 1.0, 1.0);
        let z = m2.exact_max("z", &[a, b], 0.0, 10.0, 10.0);
        m2.set_objective(LinExpr::from(z), Sense::Maximize);
        let s = m2.solve().unwrap();
        assert!((s.value(z) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn indicator_ge_binds_only_when_active() {
        let mut m = Model::new("t");
        let b = m.add_binary("b");
        let t = m.add_continuous("t", 0.0, 100.0);
        m.indicator_ge("i", b, t, LinExpr::constant_expr(42.0), 1000.0);
        m.set_objective(LinExpr::from(t), Sense::Minimize);
        // b free: solver sets b = 0 and t = 0.
        let s = m.solve().unwrap();
        assert!(s.value(t).abs() < 1e-6);
        // Force b = 1: now t >= 42.
        m.set_var_bounds(b, 1.0, 1.0);
        let s = m.solve().unwrap();
        assert!((s.value(t) - 42.0).abs() < 1e-6);
    }
}
