//! Primal heuristics for branch and bound.

use crate::simplex::{solve_lp_from, LpOutcome, LpProblem, SimplexOpts, FEAS_TOL};

/// Round-and-repair heuristic.
///
/// Rounds every integer column of `x` to the nearest integer (within the
/// node bounds `lb`/`ub`), fixes those columns, and re-solves the LP over
/// the remaining continuous columns so that derived variables (e.g. big-M
/// linearization outputs) become consistent again. Returns the repaired
/// structural assignment if the fixed LP is feasible. A budget failure
/// inside the repair LP simply drops the heuristic result; the caller's
/// main loop notices the exhausted budget on its next check.
pub(crate) fn round_and_repair(
    lp: &LpProblem,
    lb: &[f64],
    ub: &[f64],
    col_is_int: &[bool],
    x: &[f64],
    opts: &SimplexOpts,
) -> Option<Vec<f64>> {
    let mut flb = lb.to_vec();
    let mut fub = ub.to_vec();
    let mut any_frac = false;
    for c in 0..lp.num_structural {
        if col_is_int[c] {
            let v = x[c].round().clamp(lb[c], ub[c]);
            if (v - x[c]).abs() > FEAS_TOL {
                any_frac = true;
            }
            flb[c] = v;
            fub[c] = v;
        }
    }
    if !any_frac {
        return Some(x[..lp.num_structural].to_vec());
    }
    match solve_lp_from(lp, &flb, &fub, opts) {
        Ok(res) => match res.outcome {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repair(lp: &LpProblem, col_is_int: &[bool], x: &[f64]) -> Option<Vec<f64>> {
        round_and_repair(
            lp,
            &lp.lb,
            &lp.ub,
            col_is_int,
            x,
            &SimplexOpts::with_max_iters(10_000),
        )
    }

    #[test]
    fn repair_recomputes_continuous_vars() {
        // Columns: b (int), y (cont), slack. Constraint: y - 2b + s = 0 with
        // s ∈ [0,0], i.e. y = 2b. Fractional b = 0.6 rounds to 1, repair
        // must set y = 2.
        let lp = LpProblem::new(
            2,
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0],
            vec![1.0, 10.0, 0.0],
            vec![vec![(0, -2.0), (1, 1.0), (2, 1.0)]],
            vec![0.0],
        );
        let out = repair(&lp, &[true, false], &[0.6, 1.2]).unwrap();
        assert_eq!(out[0], 1.0);
        assert!((out[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_rounding_returns_none() {
        // b rounds to 1 but constraint forces b <= 0.4: fixed LP infeasible.
        let lp = LpProblem::new(
            1,
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![1.0, f64::INFINITY],
            vec![vec![(0, 1.0), (1, 1.0)]],
            vec![0.4],
        );
        assert!(repair(&lp, &[true], &[0.6]).is_none());
    }
}
