//! Shared harness code for the figure/table regeneration binaries.
//!
//! Each experiment of the paper (see `DESIGN.md`, Section 6) has a binary
//! under `src/bin/`; this library holds the pieces they share: building
//! the full design roster at a word length, timing the optimizer, and
//! pretty-printing normalized tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gomil::{
    build_baseline, build_gomil, BaselineKind, DesignReport, GomilConfig, GomilError, PpgKind,
};
use std::time::{Duration, Instant};

/// The eight designs of the paper's Fig. 3, in plotting order.
pub const DESIGN_ORDER: [&str; 8] = [
    "B-Wal-RCA",
    "B-Wal-PPF",
    "Wal-RCA",
    "Wal-PPF",
    "apparch",
    "pparch",
    "GOMIL-AND",
    "GOMIL-MBE",
];

/// Builds and measures the whole Fig. 3 roster at word length `m`.
///
/// Returns reports in [`DESIGN_ORDER`].
///
/// # Errors
///
/// Propagates ILP solver failures from the GOMIL builds, and returns
/// [`GomilError::Verification`] if any constructed design fails functional
/// verification — a benchmark over an incorrect multiplier would be
/// meaningless, but one bad width should not abort a whole sweep.
pub fn build_roster(m: usize, cfg: &GomilConfig) -> Result<Vec<DesignReport>, GomilError> {
    fn measured(
        build: &gomil::MultiplierBuild,
        power_vectors: usize,
    ) -> Result<DesignReport, GomilError> {
        let r = DesignReport::measure(build, power_vectors);
        if !r.verified {
            return Err(GomilError::from(gomil::VerificationFailure::new(
                &r.name,
                "failed functional verification",
            )));
        }
        Ok(r)
    }
    let mut out = Vec::with_capacity(8);
    for kind in BaselineKind::all() {
        let b = build_baseline(kind, m, cfg);
        out.push(measured(&b, cfg.power_vectors)?);
    }
    for ppg in [PpgKind::And, PpgKind::Booth4] {
        let d = build_gomil(m, ppg, cfg)?;
        out.push(measured(&d.build, cfg.power_vectors)?);
    }
    Ok(out)
}

/// Wall-clock measurement of a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Parses word lengths from argv, defaulting to the paper's 8/16/32/64.
pub fn word_lengths_from_args() -> Vec<usize> {
    let ms: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    if ms.is_empty() {
        vec![8, 16, 32, 64]
    } else {
        ms
    }
}

/// Renders a set of measured rosters as a JSON document (hand-rolled —
/// flat structure, no extra dependencies) for downstream plotting.
pub fn rosters_to_json(per_m: &[(usize, Vec<DesignReport>)]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"rosters\": [\n");
    for (mi, (m, reports)) in per_m.iter().enumerate() {
        out.push_str(&format!("    {{\"m\": {m}, \"designs\": [\n"));
        for (ri, r) in reports.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"area\": {}, \"delay\": {}, \"power\": {}, \"pdp\": {}, \"gates\": {}, \"verified\": {}}}{}\n",
                esc(&r.name),
                r.metrics.area,
                r.metrics.delay,
                r.metrics.power,
                r.metrics.pdp(),
                r.gates,
                r.verified,
                if ri + 1 < reports.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if mi + 1 < per_m.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Formats one metric across designs (rows) and word lengths (columns),
/// normalized per-column to the first row, plus a trailing average column
/// — the exact layout of a Fig. 3 panel.
pub fn fig3_panel(metric_name: &str, designs: &[String], per_m: &[(usize, Vec<f64>)]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "--- {metric_name} (normalized to {}) ---\n",
        designs[0]
    ));
    s.push_str(&format!("{:<12}", "design"));
    for (m, _) in per_m {
        s.push_str(&format!(" {:>8}", format!("m={m}")));
    }
    s.push_str(&format!(" {:>8}\n", "avg"));
    for (di, name) in designs.iter().enumerate() {
        s.push_str(&format!("{name:<12}"));
        let mut acc = 0.0;
        for (_, vals) in per_m {
            let norm = vals[di] / vals[0];
            acc += norm;
            s.push_str(&format!(" {norm:>8.3}"));
        }
        s.push_str(&format!(" {:>8.3}\n", acc / per_m.len() as f64));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_builds_at_4_bits() {
        let cfg = GomilConfig::fast();
        let reports = build_roster(4, &cfg).unwrap();
        assert_eq!(reports.len(), 8);
        for (r, expect) in reports.iter().zip(DESIGN_ORDER) {
            assert!(r.name.starts_with(expect), "{} vs {expect}", r.name);
            assert!(r.verified);
        }
    }

    #[test]
    fn json_writer_produces_balanced_output() {
        let cfg = GomilConfig::fast();
        let reports = build_roster(4, &cfg).unwrap();
        let json = rosters_to_json(&[(4, reports)]);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"m\": 4"));
        assert!(json.contains("GOMIL-AND-4"));
        assert!(json.contains("\"verified\": true"));
    }

    #[test]
    fn panel_normalizes_to_first_row() {
        let designs = vec!["base".to_string(), "other".to_string()];
        let per_m = vec![(8usize, vec![2.0, 1.0]), (16usize, vec![4.0, 1.0])];
        let s = fig3_panel("delay", &designs, &per_m);
        assert!(s.contains("1.000")); // the base row
        assert!(s.contains("0.500")); // other at m=8
        assert!(s.contains("0.250")); // other at m=16
        assert!(s.contains("0.375")); // other's average
    }
}
