//! Experiment: closed-loop load generation against the `gomil-httpd`
//! HTTP front end — request latency percentiles and throughput under a
//! steady closed loop, then shed behaviour under a burst past the
//! admission bound. Merges an `http` section into `BENCH_serve.json`
//! (replacing any previous one; the rest of the file is untouched).
//!
//! Usage: `cargo run --release -p gomil-bench --bin serve_http --
//! [--clients N] [--requests N] [--burst N] [--json FILE]`

use gomil::{serve_service, GomilConfig, ServeConfig};
use gomil_httpd::{client, HttpdConfig, Server};
use std::sync::Arc;
use std::time::Instant;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let clients = flag(&args, "--clients", 8).max(1);
    let per_client = flag(&args, "--requests", 25).max(1);
    let burst = flag(&args, "--burst", 24).max(1);

    // `fast()` keeps individual solves small: the benchmark measures the
    // HTTP and admission path, not one giant branch and bound.
    let cfg = GomilConfig::fast();
    let svc = Arc::new(serve_service(&cfg, ServeConfig::default())?);
    let httpd = HttpdConfig {
        max_inflight: 4,
        max_queue: 16,
        ..HttpdConfig::default()
    };
    let (max_inflight, max_queue) = (httpd.max_inflight, httpd.max_queue);
    let server = Server::bind(Arc::clone(&svc), "127.0.0.1:0", httpd)?;
    let addr = server.local_addr()?.to_string();
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run());

    // Phase 1 — steady closed loop over four hot keys: after the four
    // cold solves everything is cache hits and dedup joins, so this is
    // the per-request overhead of the socket + parse + admission path.
    eprintln!("closed loop: {clients} clients × {per_client} requests …");
    let widths = [6usize, 8, 10, 12];
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut lat_ms = Vec::with_capacity(per_client);
                let mut errors = 0usize;
                for i in 0..per_client {
                    let m = widths[(c + i) % widths.len()];
                    let body = format!("{{\"m\": {m}, \"ppg\": \"and\"}}");
                    let t = Instant::now();
                    match client::post_json(&addr, "/solve", &body) {
                        Ok(resp) if resp.status == 200 => {
                            lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
                        }
                        _ => errors += 1,
                    }
                }
                (lat_ms, errors)
            })
        })
        .collect();
    let mut lat_ms = Vec::new();
    let mut errors = 0usize;
    for w in workers {
        let (l, e) = w.join().expect("client thread");
        lat_ms.extend(l);
        errors += e;
    }
    let elapsed = t0.elapsed();
    lat_ms.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&lat_ms, 0.50);
    let p99 = percentile(&lat_ms, 0.99);
    let throughput = lat_ms.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "  {} ok, {errors} errors in {elapsed:.1?}: p50 {p50:.2} ms, p99 {p99:.2} ms, {throughput:.1} req/s",
        lat_ms.len()
    );

    // Phase 2 — a burst of distinct keys past inflight + queue: the
    // overflow must shed with 429 while every admitted request still
    // answers within its deadline (degrading if the budget expires).
    eprintln!("burst: {burst} concurrent distinct solves, 400 ms deadlines …");
    let burst_workers: Vec<_> = (0..burst)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let body = format!("{{\"m\": {}, \"budget_ms\": 400}}", 13 + i);
                let t = Instant::now();
                let status = client::post_json(&addr, "/solve", &body)
                    .map(|r| r.status)
                    .unwrap_or(0);
                (status, t.elapsed().as_secs_f64() * 1e3)
            })
        })
        .collect();
    let outcomes: Vec<(u16, f64)> = burst_workers
        .into_iter()
        .map(|w| w.join().expect("burst thread"))
        .collect();
    let shed = outcomes.iter().filter(|(s, _)| *s == 429).count();
    let burst_ok = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let burst_worst_ms = outcomes
        .iter()
        .filter(|(s, _)| *s == 200)
        .map(|(_, ms)| *ms)
        .fold(0.0f64, f64::max);
    let shed_rate = shed as f64 / burst as f64;
    eprintln!(
        "  {burst_ok} served, {shed} shed ({:.0}%), worst admitted latency {burst_worst_ms:.0} ms",
        shed_rate * 100.0
    );

    // The server-side view must agree with the client-side one.
    let metrics = client::request(&addr, "GET", "/metrics", &[], b"")?;
    let server_shed: u64 = metrics
        .text()
        .lines()
        .find_map(|l| l.strip_prefix("gomil_shed_total ").map(str::to_string))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);

    handle.shutdown();
    run.join().expect("server thread")?;
    let report = svc.report();
    println!("{report}");

    let section = format!(
        "\"http\": {{\n    \"clients\": {clients},\n    \"requests_per_client\": {per_client},\n    \
         \"max_inflight\": {max_inflight},\n    \"max_queue\": {max_queue},\n    \
         \"ok\": {},\n    \"errors\": {errors},\n    \
         \"p50_ms\": {p50},\n    \"p99_ms\": {p99},\n    \
         \"throughput_rps\": {throughput},\n    \
         \"burst_clients\": {burst},\n    \"burst_served\": {burst_ok},\n    \
         \"burst_shed\": {shed},\n    \"burst_shed_rate\": {shed_rate},\n    \
         \"burst_worst_admitted_ms\": {burst_worst_ms},\n    \
         \"server_shed_total\": {server_shed}\n  }}",
        lat_ms.len()
    );
    let merged = match std::fs::read_to_string(&json_path) {
        Ok(existing) => splice_http_section(&existing, &section),
        Err(_) => format!("{{\n  {section}\n}}\n"),
    };
    gomil_httpd::parse_json(&merged).map_err(|e| format!("merged {json_path} is invalid: {e}"))?;
    std::fs::write(&json_path, merged)?;
    eprintln!("wrote http section into {json_path}");
    Ok(())
}

/// Replaces (or appends) the flat `"http"` object inside an existing
/// JSON document, leaving every other key byte-identical.
fn splice_http_section(existing: &str, section: &str) -> String {
    let mut doc = existing.trim_end().to_string();
    // Strip a previous run's section: from the comma before `"http"` to
    // the first closing brace after it (the section is flat by design).
    if let Some(start) = doc.find("\"http\":") {
        let lead = doc[..start].rfind(',').unwrap_or(start.saturating_sub(1));
        let end = doc[start..].find('}').map_or(doc.len(), |i| start + i + 1);
        doc.replace_range(lead..end, "");
    }
    match doc.rfind('}') {
        Some(close) => {
            let body = doc[..close].trim_end();
            let comma = if body.ends_with(['{', ',']) { "" } else { "," };
            format!("{body}{comma}\n  {section}\n}}\n")
        }
        None => format!("{{\n  {section}\n}}\n"),
    }
}
