//! Experiment: the precomputed design mart against the warm LRU cache.
//!
//! Builds a small mart over the hot lattice through the real pipeline
//! (timing the offline build), then measures the steady-state serving
//! throughput of (a) a service answering from its warm in-memory cache
//! and (b) a fresh service answering every request from the mart with
//! zero solver invocations. The acceptance bar is that the mart hit
//! path stays within 2x of the warm-cache path — both are hash lookups;
//! the mart adds only a binary-search over the sorted index.
//!
//! Splices a flat `"mart"` section into `BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p gomil-bench --bin mart_serve --
//! [m …] [--loops N] [--json FILE]`

use gomil::{
    serve_service, DesignStore, GomilConfig, PpgKind, ServeConfig, ServeOutcome, SolveRequest,
    SOLVER_VERSION,
};
use gomil_bench::timed;
use gomil_mart::{Mart, MartBuilder};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let loops: usize = args
        .iter()
        .position(|a| a == "--loops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let ms: Vec<usize> = {
        let named: Vec<usize> = args
            .iter()
            .filter(|s| !s.starts_with("--"))
            .filter_map(|s| s.parse().ok())
            .collect();
        if named.is_empty() {
            vec![4, 8, 12]
        } else {
            named
        }
    };

    // `fast()` keeps the offline build short; the measured paths below
    // never invoke the solver at all, so the config only shapes keys.
    let cfg = GomilConfig::fast();
    let requests: Vec<SolveRequest> = ms
        .iter()
        .flat_map(|&m| {
            PpgKind::all()
                .into_iter()
                .filter(move |&ppg| !(ppg == PpgKind::Booth4 && m % 2 != 0))
                .map(move |ppg| SolveRequest { m, ppg })
        })
        .collect();

    // Offline mart build through the real pipeline (the same sweep
    // `gomil mart build` runs), timed end to end including the write.
    let mart_path =
        std::env::temp_dir().join(format!("gomil-mart-bench-{}.mart", std::process::id()));
    eprintln!("mart build: {} designs …", requests.len());
    let builder_svc = serve_service(&cfg, ServeConfig::default())?;
    let (outcomes, build) = timed(
        || -> Result<Vec<ServeOutcome>, Box<dyn std::error::Error>> {
            let results = builder_svc.run_batch(&requests);
            let mut builder = MartBuilder::new(SOLVER_VERSION);
            let mut outcomes = Vec::with_capacity(requests.len());
            for (req, res) in requests.iter().zip(results) {
                let outcome = res?;
                builder.insert(&builder_svc.key_for(req), &outcome);
                outcomes.push(outcome);
            }
            builder.write(&mart_path)?;
            Ok(outcomes)
        },
    );
    let outcomes = outcomes?;
    eprintln!("  built {} entries in {build:.1?}", outcomes.len());

    // Warm-cache path: the builder service already holds every outcome
    // in its LRU cache, so each serve_one is a pure cache hit.
    let n = (loops * requests.len()) as f64;
    eprintln!(
        "warm-cache path: {loops} loops x {} requests …",
        requests.len()
    );
    let (_, warm) = timed(|| {
        for _ in 0..loops {
            for req in &requests {
                builder_svc.serve_one(req).expect("warm hit");
            }
        }
    });
    let warm_cache_rps = n / warm.as_secs_f64().max(1e-9);

    // Mart hit path: a fresh service (empty cache) backed by the mart
    // just written. Every request must resolve without a solve.
    let mart = Mart::load(&mart_path)?;
    assert_eq!(mart.skipped(), 0, "bench mart must load clean");
    let entries = mart.len();
    let mart_svc = serve_service(&cfg, ServeConfig::default())?.with_mart(Arc::new(mart));
    eprintln!(
        "mart-hit path: {loops} loops x {} requests …",
        requests.len()
    );
    let (_, hit) = timed(|| {
        for _ in 0..loops {
            for req in &requests {
                mart_svc.serve_one(req).expect("mart hit");
            }
        }
    });
    let mart_hit_rps = n / hit.as_secs_f64().max(1e-9);
    let report = mart_svc.report();
    assert_eq!(report.solves, 0, "mart path must never invoke the solver");
    assert_eq!(report.mart_hits, loops as u64 * requests.len() as u64);
    let _ = std::fs::remove_file(&mart_path);

    let ratio = warm_cache_rps / mart_hit_rps.max(1e-9);
    println!(
        "warm cache: {warm_cache_rps:.0} req/s   mart hit: {mart_hit_rps:.0} req/s   \
         warm/mart ratio: {ratio:.2}"
    );
    if ratio > 2.0 {
        eprintln!("warning: mart hit path slower than 2x the warm-cache path");
    }

    let section = format!(
        "\"mart\": {{\n    \"entries\": {},\n    \"build_seconds\": {},\n    \
         \"loops\": {},\n    \"warm_cache_requests_per_sec\": {},\n    \
         \"mart_hit_requests_per_sec\": {},\n    \"warm_over_mart_ratio\": {},\n    \
         \"mart_solves\": {},\n    \"mart_coverage\": {}\n  }}",
        entries,
        build.as_secs_f64(),
        loops,
        warm_cache_rps,
        mart_hit_rps,
        ratio,
        report.solves,
        report.mart_coverage(),
    );
    let merged = match std::fs::read_to_string(&json_path) {
        Ok(existing) => splice_mart_section(&existing, &section),
        Err(_) => format!("{{\n  {section}\n}}\n"),
    };
    gomil_httpd::parse_json(&merged).map_err(|e| format!("merged {json_path} is invalid: {e}"))?;
    std::fs::write(&json_path, merged)?;
    eprintln!("wrote mart section into {json_path}");
    Ok(())
}

/// Replaces (or appends) the `"mart"` object inside an existing JSON
/// document, leaving every other key byte-identical. The section spans
/// two brace levels (it is an object value), so the strip scans to the
/// matching close brace rather than the first one.
fn splice_mart_section(existing: &str, section: &str) -> String {
    let mut doc = existing.trim_end().to_string();
    if let Some(start) = doc.find("\"mart\":") {
        let lead = doc[..start].rfind(',').unwrap_or(start.saturating_sub(1));
        let mut depth = 0usize;
        let mut end = doc.len();
        for (i, c) in doc[start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = start + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        doc.replace_range(lead..end, "");
    }
    match doc.rfind('}') {
        Some(close) => {
            let body = doc[..close].trim_end();
            let comma = if body.ends_with(['{', ',']) { "" } else { "," };
            format!("{body}{comma}\n  {section}\n}}\n")
        }
        None => format!("{{\n  {section}\n}}\n"),
    }
}
