//! Experiments E4/E5/E6: regenerates all three panels of the paper's
//! Fig. 3 — delay, area and PDP (plus power, which the paper omits for
//! space) for the eight designs at m ∈ {8, 16, 32, 64}, each normalized to
//! `B-Wal-RCA`, with the per-design average over word lengths.
//!
//! Usage: `cargo run --release -p gomil-bench --bin fig3 -- [m …]`

use gomil::GomilConfig;
use gomil_bench::{build_roster, fig3_panel, rosters_to_json, timed, word_lengths_from_args};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let ms = word_lengths_from_args();
    let cfg = GomilConfig::default();
    let mut rosters: Vec<(usize, Vec<gomil::DesignReport>)> = Vec::new();

    let mut designs: Vec<String> = Vec::new();
    let mut delay = Vec::new();
    let mut area = Vec::new();
    let mut power = Vec::new();
    let mut pdp = Vec::new();

    for &m in &ms {
        eprintln!("building the 8-design roster at m = {m} …");
        let (reports, took) = timed(|| build_roster(m, &cfg));
        let reports = match reports {
            Ok(r) => r,
            Err(e) => {
                // One bad width must not abort the sweep; the panel is
                // simply missing that column.
                eprintln!("  skipping m = {m}: {e}");
                continue;
            }
        };
        eprintln!("  done in {took:.1?}");
        if designs.is_empty() {
            designs = reports
                .iter()
                .map(|r| {
                    r.name
                        .rsplit_once('-')
                        .map(|(n, _)| n.to_string())
                        .unwrap_or_else(|| r.name.clone())
                })
                .collect();
        }
        for r in &reports {
            eprintln!("    {r}");
        }
        delay.push((m, reports.iter().map(|r| r.metrics.delay).collect()));
        area.push((m, reports.iter().map(|r| r.metrics.area).collect()));
        power.push((m, reports.iter().map(|r| r.metrics.power).collect()));
        pdp.push((m, reports.iter().map(|r| r.metrics.pdp()).collect()));
        rosters.push((m, reports));
    }

    if rosters.is_empty() {
        return Err("every requested word length failed to build".into());
    }
    if let Some(path) = &json_path {
        std::fs::write(path, rosters_to_json(&rosters))?;
        eprintln!("wrote raw measurements to {path}");
    }

    println!("\n================ Fig. 3 reproduction ================\n");
    println!("{}", fig3_panel("delay  [Fig. 3(a)]", &designs, &delay));
    println!("{}", fig3_panel("area   [Fig. 3(b)]", &designs, &area));
    println!(
        "{}",
        fig3_panel("power  [omitted in paper]", &designs, &power)
    );
    println!("{}", fig3_panel("PDP    [Fig. 3(c)]", &designs, &pdp));

    // The headline claims, computed from the measured averages.
    let avg = |panel: &Vec<(usize, Vec<f64>)>, idx: usize| -> f64 {
        panel.iter().map(|(_, v)| v[idx] / v[0]).sum::<f64>() / panel.len() as f64
    };
    let idx = |name: &str| designs.iter().position(|d| d == name).expect("design");
    let (gand, appa, ppa) = (idx("GOMIL-AND"), idx("apparch"), idx("pparch"));
    println!("headline reductions (average over word lengths):");
    println!(
        "  GOMIL-AND PDP vs apparch: {:+.1}%   (paper: −70.99%)",
        100.0 * (avg(&pdp, gand) / avg(&pdp, appa) - 1.0)
    );
    println!(
        "  GOMIL-AND PDP vs pparch:  {:+.1}%   (paper: −62.74%)",
        100.0 * (avg(&pdp, gand) / avg(&pdp, ppa) - 1.0)
    );
    println!(
        "  GOMIL-AND delay vs B-Wal-RCA: {:+.1}%   (paper: −27.45%)",
        100.0 * (avg(&delay, gand) - 1.0)
    );
    println!(
        "  GOMIL-AND area vs B-Wal-RCA:  {:+.1}%   (paper: −33.36%)",
        100.0 * (avg(&area, gand) - 1.0)
    );
    Ok(())
}
