//! Experiment E9: CT ILP vs Wallace vs Dadda compressor counts — the
//! motivation of Section III-A (heuristic reduction schemes leave room on
//! the table).
//!
//! Usage: `cargo run --release -p gomil-bench --bin ct_compare -- [m …]`

use gomil::{Bcv, CtIlp, GomilConfig};
use gomil_arith::{dadda_schedule, wallace_schedule};
use gomil_bench::timed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms: Vec<usize> = {
        let v: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if v.is_empty() {
            (4..=16).collect()
        } else {
            v
        }
    };
    let cfg = GomilConfig {
        solver_budget: std::time::Duration::from_secs(15),
        ..GomilConfig::default()
    };

    println!(
        "{:<4} {:>14} {:>14} {:>14} {:>9} {:>10}",
        "m", "wallace (F,H)", "dadda (F,H)", "ilp (F,H)", "ilp cost", "runtime"
    );
    for &m in &ms {
        let v0 = Bcv::and_ppg(m);
        let w = wallace_schedule(&v0);
        let d = dadda_schedule(&v0);
        let ilp = CtIlp::build(&v0, &cfg);
        let (sol, took) = timed(|| ilp.solve(&cfg));
        let sol = sol?;
        let fmt = |f: u64, h: u64| format!("({f}, {h})");
        println!(
            "{:<4} {:>14} {:>14} {:>14} {:>9.0}{} {:>9.2?}",
            m,
            fmt(w.num_full(), w.num_half()),
            fmt(d.num_full(), d.num_half()),
            fmt(sol.schedule.num_full(), sol.schedule.num_half()),
            sol.objective,
            if sol.proven_optimal { "*" } else { " " },
            took
        );
    }
    println!("(* = optimality proven within the budget; costs are αF+βH with α=3, β=2)");
    Ok(())
}
