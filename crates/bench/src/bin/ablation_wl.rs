//! Experiment E8: the w / L parameter study behind the paper's choice of
//! `w = 8, L = 10` ("this combination gives a small area-delay product,
//! while ensuring an affordable runtime").
//!
//! Two sweeps at a fixed word length (default m = 8):
//!   * `w` — the delay weight of the prefix objective: realized netlist
//!     area/delay/ADP of the GOMIL-AND multiplier as w varies;
//!   * `L` — the joint-ILP truncation: objective and runtime as L varies.
//!
//! Usage: `cargo run --release -p gomil-bench --bin ablation_wl -- [m]`

use gomil::{build_gomil, joint_ilp, Bcv, GomilConfig, PpgKind};
use gomil_bench::timed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("== w sweep (m = {m}, realized GOMIL-AND netlists) ==");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10} {:>14}",
        "w", "area", "delay", "ADP", "PDP", "prefix (A,D)"
    );
    for w in [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let cfg = GomilConfig {
            w,
            ..GomilConfig::default()
        };
        let d = build_gomil(m, PpgKind::And, &cfg)?;
        d.build.verify().map_err(std::io::Error::other)?;
        let met = d.build.netlist.metrics(cfg.power_vectors);
        let b: Vec<bool> = d.solution.vs.iter().map(|c| c == 2).collect();
        let tc = d.solution.tree.cost(&b);
        println!(
            "{:<8} {:>10.1} {:>10.2} {:>12.1} {:>10.2} {:>14}",
            w,
            met.area,
            met.delay,
            met.adp(),
            met.pdp(),
            format!("({}, {})", tc.area, tc.delay)
        );
    }

    println!("\n== L sweep (m = {m}, joint ILP truncation; paper uses L = 10) ==");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12}",
        "L", "runtime", "objective", "ct cost", "prefix cost"
    );
    let v0 = Bcv::and_ppg(m);
    for l in [2usize, 4, 6, 8, 10, 14] {
        let cfg = GomilConfig {
            l,
            solver_budget: std::time::Duration::from_secs(5),
            ..GomilConfig::default()
        };
        let (sol, took) = timed(|| joint_ilp(&v0, &cfg));
        let sol = sol?;
        println!(
            "{:<8} {:>10.2?} {:>12.1} {:>12.1} {:>12.1}",
            l, took, sol.objective, sol.ct_cost, sol.prefix_cost
        );
    }
    Ok(())
}
