//! Experiment E3: the Fig. 2 / Example 1 prefix trees, plus the DP and IP
//! optimizers on the same BCV.
//!
//! Usage: `cargo run --release -p gomil-bench --bin fig2_prefix_trees`

use gomil::solve_fixed_prefix_ip;
use gomil_bench::timed;
use gomil_prefix::{leaf_types, optimize_prefix_tree, PrefixTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 1: input BCV [2,2,1,2,1,1] (paper order, MSB first).
    let b = leaf_types(&[1, 1, 2, 1, 2, 2]);

    println!("input BCV (MSB first): [2, 2, 1, 2, 1, 1]  — paper Example 1\n");

    // The two hand-drawn structures of Fig. 2.
    let t54 = PrefixTree::node(PrefixTree::leaf(5), PrefixTree::leaf(4));
    let t32 = PrefixTree::node(PrefixTree::leaf(3), PrefixTree::leaf(2));
    let fig2a = PrefixTree::node(
        PrefixTree::node(t54, t32),
        PrefixTree::node(PrefixTree::leaf(1), PrefixTree::leaf(0)),
    );
    let ca = fig2a.cost(&b);
    println!(
        "Fig. 2(a) tree {fig2a}: area {} delay {}   (paper: 16, 6)",
        ca.area, ca.delay
    );

    println!("\nDP optimum per delay weight:");
    println!("{:>6} {:>8} {:>8}  tree", "w", "area", "delay");
    for w in [0.0, 1.0, 8.0, 32.0] {
        let sol = optimize_prefix_tree(&b, w);
        println!("{:>6} {:>8} {:>8}  {}", w, sol.area, sol.delay, sol.tree);
    }

    let (res, took) = timed(|| solve_fixed_prefix_ip(&b, 8.0, std::time::Duration::from_secs(30)));
    let (tree, cost) = res?;
    let tc = tree.cost(&b);
    println!(
        "\nIP (Eqs. 17–26, w = 8) in {took:.2?}: cost {cost} → area {} delay {}  {tree}",
        tc.area, tc.delay
    );
    println!("(paper Fig. 2(b) achieves (16, 5); both optimizers must match or beat it)");
    Ok(())
}
