//! Extension experiment: sensitivity of the CT ILP to the stage count `s`.
//! The paper fixes `s` to the Wallace stage count "as this reduction
//! scheme provides the minimum stage number"; this sweep shows what extra
//! stages buy (or don't) in compressor cost.
//!
//! Usage: `cargo run --release -p gomil-bench --bin stage_sweep -- [m …]`

use gomil::{Bcv, CtIlp, GomilConfig};
use gomil_arith::required_stages;
use gomil_bench::timed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms: Vec<usize> = {
        let v: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if v.is_empty() {
            vec![4, 6, 8]
        } else {
            v
        }
    };
    let cfg = GomilConfig {
        solver_budget: std::time::Duration::from_secs(10),
        ..GomilConfig::default()
    };
    println!(
        "{:<4} {:<8} {:>12} {:>10} {:>10}",
        "m", "stages", "ilp (F,H)", "cost", "runtime"
    );
    for &m in &ms {
        let v0 = Bcv::and_ppg(m);
        let s_min = required_stages(&v0);
        for s in s_min..=s_min + 2 {
            let ilp = CtIlp::build_with_stages(&v0, s, &cfg);
            let (sol, took) = timed(|| ilp.solve(&cfg));
            let sol = sol?;
            println!(
                "{:<4} {:<8} {:>12} {:>10.0}{} {:>9.2?}",
                m,
                format!("{s}{}", if s == s_min { " (min)" } else { "" }),
                format!("({}, {})", sol.schedule.num_full(), sol.schedule.num_half()),
                sol.objective,
                if sol.proven_optimal { "*" } else { " " },
                took
            );
        }
    }
    println!("(* = proven optimal; extra stages relax Eq. 6 pressure but the");
    println!(" minimum-stage solution is already compressor-minimal for AND PPGs)");
    Ok(())
}
