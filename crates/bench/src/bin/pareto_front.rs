//! Extension experiment: exact area-delay Pareto fronts of prefix trees
//! (the paper's weighted objective only reaches the lower convex hull).
//!
//! Usage: `cargo run --release -p gomil-bench --bin pareto_front -- [m …]`

use gomil::{optimize_global, Bcv, GomilConfig};
use gomil_prefix::{leaf_types, pareto_prefix_front};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 1 first.
    println!("== Example 1 BCV [2,2,1,2,1,1]: complete trade-off curve ==");
    let leaf = leaf_types(&[1, 1, 2, 1, 2, 2]);
    for p in pareto_prefix_front(&leaf) {
        println!("  delay {:>3}  area {:>4}   {}", p.delay, p.area, p.tree);
    }

    let ms: Vec<usize> = {
        let v: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if v.is_empty() {
            vec![8, 16, 32]
        } else {
            v
        }
    };
    let cfg = GomilConfig::default();
    for m in ms {
        let v0 = Bcv::and_ppg(m);
        let sol = optimize_global(&v0, &cfg)?;
        let b = leaf_types(sol.vs.counts());
        println!("\n== m = {m}: front over GOMIL's V_s = {} ==", sol.vs);
        for p in pareto_prefix_front(&b) {
            println!("  delay {:>3}  area {:>4}", p.delay, p.area);
        }
    }
    Ok(())
}
