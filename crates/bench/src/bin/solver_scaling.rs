//! Experiment: parallel versus sequential branch and bound, warm-restart
//! basis reuse, and the root-node stage (pricing, presolve, cuts) on the
//! GOMIL ILPs. Writes `BENCH_ilp.json`.
//!
//! Five sections, honest about what each can show:
//!
//! * **basis reuse** — the headline of the sparse-core rework: every
//!   family (joint Eq. 27, compressor-tree, prefix IP) at m ∈ {16, 32,
//!   64} solved twice with identical node/time budgets, once from
//!   scratch per node (`reuse_basis: false`) and once with parent-basis
//!   dual-simplex restarts. Each entry records simplex iterations, the
//!   warm-restart hit rate, and refactorization counts. Two ratios are
//!   reported: `iteration_ratio_total` (raw iteration quotient, which is
//!   misleading when the two runs explored different node counts) and
//!   `iteration_ratio_per_node` (iterations-per-node quotient); entries
//!   with mismatched node counts carry `node_counts_match: false`.
//! * **root profile** — the per-phase breakdown (model build, presolve,
//!   first factorization, root LP, cut rounds) of the widest models,
//!   where the root node dominates the whole budget.
//! * **joint m=32** — the paper's Eq. 27 model at the acceptance width,
//!   sequential versus parallel job counts.
//! * **CT m=32** — the compressor-tree ILP, which is the model the
//!   degradation ladder actually solves at this width (the `truncated-ilp`
//!   rung). On a multi-core host `jobs=N` explores ~N× nodes per second;
//!   on a single-core host (see `host_cpus`) the parallel engine matches
//!   sequential within scheduling overhead.
//! * **equality roster** — randomized MILPs sized m ∈ {8, 16, 32, 64}:
//!   every job count and every pricing/cut configuration must prove the
//!   same objective and certify.
//!
//! `--quick` runs the CI gates and exits nonzero on regression: the
//! basis-reuse pivot-count gate (warm-restart pivots ≤ 3× from-scratch),
//! the root-LP pricing gate (devex root iterations ≤ 1.2× Dantzig on the
//! CT m=32 reference), the cut-safety gate (root cuts must not change
//! certified objectives anywhere on the proved roster), the hypersparse
//! gate (sparse FTRAN/BTRAN kernels must fire on the CT m=32 root and
//! its iterations/wall-clock must stay within fixed ratios of the
//! recorded baseline), and the reduction-safety gate (LP reduction
//! presolve and equilibration scaling must not change certified
//! objectives on the quick roster).
//!
//! Usage: `cargo run --release -p gomil-bench --bin solver_scaling --
//! [--quick] [--jobs N] [--ct-nodes N] [--joint-seconds S]
//! [--reuse-seconds S] [--root-seconds S] [--json FILE]`

use gomil::{add_prefix_constraints, build_joint_model, Bcv, CtIlp, GomilConfig, LeafB};
use gomil_arith::dadda_schedule;
use gomil_bench::timed;
use gomil_ilp::{
    BranchConfig, Cmp, CutMode, LinExpr, Model, Pricing, RootProfile, Sense, Solution,
};
use std::time::Duration;

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

/// One measured solve, flattened for the JSON report.
struct Run {
    jobs: usize,
    seconds: f64,
    nodes: u64,
    pruned: u64,
    branched: u64,
    lp_iterations: u64,
    warm_attempts: u64,
    warm_hits: u64,
    refactors: u64,
    ftran: u64,
    ftran_hyper: u64,
    btran: u64,
    btran_hyper: u64,
    hyper_rate: f64,
    objective: f64,
    gap: f64,
    proved_optimal: bool,
    certified: bool,
    root: RootProfile,
}

impl Run {
    fn measure(model: &Model, base: &BranchConfig, jobs: usize) -> Result<Run, String> {
        let cfg = BranchConfig {
            jobs,
            ..base.clone()
        };
        let (result, took) = timed(|| model.solve_with(&cfg));
        let sol: Solution = result.map_err(|e| e.to_string())?;
        Ok(Run {
            jobs,
            seconds: took.as_secs_f64(),
            nodes: sol.nodes(),
            pruned: sol.nodes_pruned(),
            branched: sol.nodes_branched(),
            lp_iterations: sol.lp_iterations(),
            warm_attempts: sol.lp_warm_attempts(),
            warm_hits: sol.lp_warm_hits(),
            refactors: sol.lp_refactors(),
            ftran: sol.lp_ftran(),
            ftran_hyper: sol.lp_ftran_hyper(),
            btran: sol.lp_btran(),
            btran_hyper: sol.lp_btran_hyper(),
            hyper_rate: sol.lp_hyper_rate(),
            objective: sol.objective(),
            gap: sol.gap(),
            proved_optimal: sol.is_optimal(),
            certified: sol.certificate().is_some(),
            root: sol.root_profile(),
        })
    }

    fn warm_hit_rate(&self) -> f64 {
        if self.warm_attempts == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.warm_attempts as f64
        }
    }

    fn to_json(&self) -> String {
        // A root-only solve has no dual bound yet, so its gap is infinite.
        // JSON has no literal for that; the earlier `null` was
        // indistinguishable from a missing field, so emit an explicit
        // string sentinel instead.
        let gap = if self.gap.is_finite() {
            self.gap.to_string()
        } else {
            "\"infinite\"".to_string()
        };
        format!(
            "{{\"jobs\": {}, \"seconds\": {}, \"nodes\": {}, \"pruned\": {}, \
             \"branched\": {}, \"lp_iterations\": {}, \"warm_attempts\": {}, \
             \"warm_hits\": {}, \"warm_hit_rate\": {:.4}, \"refactors\": {}, \
             \"ftran\": {}, \"ftran_hyper\": {}, \"btran\": {}, \
             \"btran_hyper\": {}, \"hyper_rate\": {:.4}, \
             \"objective\": {}, \"gap\": {gap}, \"proved_optimal\": {}, \
             \"certified\": {}, \"root_profile\": {}}}",
            self.jobs,
            self.seconds,
            self.nodes,
            self.pruned,
            self.branched,
            self.lp_iterations,
            self.warm_attempts,
            self.warm_hits,
            self.warm_hit_rate(),
            self.refactors,
            self.ftran,
            self.ftran_hyper,
            self.btran,
            self.btran_hyper,
            self.hyper_rate,
            self.objective,
            self.proved_optimal,
            self.certified,
            root_json(&self.root),
        )
    }
}

fn root_json(r: &RootProfile) -> String {
    format!(
        "{{\"build_us\": {}, \"presolve_us\": {}, \"first_factor_us\": {}, \
         \"root_lp_us\": {}, \"root_lp_iters\": {}, \"cut_rounds\": {}, \
         \"cuts_added\": {}, \"cut_us\": {}, \"reduce_rows\": {}, \
         \"reduce_cols\": {}, \"scale_rows\": {}, \"scale_range_before\": {}, \
         \"scale_range_after\": {}}}",
        r.build_us,
        r.presolve_us,
        r.first_factor_us,
        r.root_lp_us,
        r.root_lp_iters,
        r.cut_rounds,
        r.cuts_added,
        r.cut_us,
        r.reduce_rows,
        r.reduce_cols,
        r.scale_rows,
        r.scale_range_before,
        r.scale_range_after,
    )
}

fn runs_json(runs: &[Run]) -> String {
    runs.iter()
        .map(|r| format!("      {}", r.to_json()))
        .collect::<Vec<_>>()
        .join(",\n")
}

fn random_knapsack(n: usize, seed: u64) -> Model {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(format!("knap{n}"));
    let mut obj = LinExpr::default();
    let mut weight = LinExpr::default();
    for i in 0..n {
        let x = m.add_binary(format!("x{i}"));
        obj += rng.gen_range(1..20) as f64 * x;
        weight += rng.gen_range(1..12) as f64 * x;
    }
    m.add_constraint("cap", weight, Cmp::Le, (6 * n / 2) as f64);
    m.set_objective(obj, Sense::Maximize);
    m
}

/// A width-`m` fixed-leaf prefix IP (the paper's prefix formulation with
/// constant leaves, as `solve_fixed_prefix_ip` builds it), with the same
/// DP-derived warm start production uses so every budgeted run has an
/// incumbent from the first node. Returns the model, the warm start, and
/// the model-build wall-clock.
fn prefix_model(m: usize) -> (Model, Vec<f64>, Duration) {
    let ((model, init), build_time) = timed(|| {
        let mut model = Model::new(format!("prefix{m}"));
        let leaf_vals: Vec<bool> = (0..m).map(|i| i % 3 != 0).collect();
        let leaf: Vec<LeafB> = leaf_vals.iter().map(|&b| LeafB::Const(b)).collect();
        let vars = add_prefix_constraints(&mut model, &leaf, 4.0, m);
        model.set_objective(vars.root_cost.clone(), Sense::Minimize);
        let mut init = vec![0.0; model.num_vars()];
        vars.warm_start_into(&mut init, &leaf_vals);
        (model, init)
    });
    (model, init, build_time)
}

/// One before/after pair of a `basis_reuse` section entry: the same model
/// under the same budget, solved from scratch per node versus with
/// warm-restart basis reuse.
struct ReusePair {
    family: &'static str,
    m: usize,
    scratch: Run,
    warm: Run,
}

impl ReusePair {
    fn measure(
        family: &'static str,
        m: usize,
        model: &Model,
        base: &BranchConfig,
    ) -> Result<ReusePair, String> {
        let scratch_cfg = BranchConfig {
            reuse_basis: false,
            ..base.clone()
        };
        let warm_cfg = BranchConfig {
            reuse_basis: true,
            ..base.clone()
        };
        let scratch = Run::measure(model, &scratch_cfg, 1)?;
        let warm = Run::measure(model, &warm_cfg, 1)?;
        eprintln!(
            "  {family} m={m}: {} iters from scratch vs {} warm \
             ({:.0}% hit rate, {} refactors) over {} vs {} nodes",
            scratch.lp_iterations,
            warm.lp_iterations,
            100.0 * warm.warm_hit_rate(),
            warm.refactors,
            scratch.nodes,
            warm.nodes,
        );
        Ok(ReusePair {
            family,
            m,
            scratch,
            warm,
        })
    }

    /// From-scratch iterations per warm iteration (> 1 means reuse wins);
    /// `None` when the warm run spent no pivots. Misleading when the two
    /// runs explored different node counts — see
    /// [`iteration_ratio_per_node`](Self::iteration_ratio_per_node).
    fn iteration_ratio_total(&self) -> Option<f64> {
        if self.warm.lp_iterations == 0 {
            None
        } else {
            Some(self.scratch.lp_iterations as f64 / self.warm.lp_iterations as f64)
        }
    }

    /// From-scratch iterations *per node* over warm iterations per node:
    /// the per-node resolve cost quotient, which stays meaningful when the
    /// budget let one run explore more nodes than the other.
    fn iteration_ratio_per_node(&self) -> Option<f64> {
        if self.warm.lp_iterations == 0 || self.scratch.nodes == 0 || self.warm.nodes == 0 {
            return None;
        }
        let scratch_per_node = self.scratch.lp_iterations as f64 / self.scratch.nodes as f64;
        let warm_per_node = self.warm.lp_iterations as f64 / self.warm.nodes as f64;
        Some(scratch_per_node / warm_per_node)
    }

    fn node_counts_match(&self) -> bool {
        self.scratch.nodes == self.warm.nodes
    }

    fn to_json(&self) -> String {
        let opt = |r: Option<f64>| match r {
            Some(r) => format!("{r:.3}"),
            None => "null".to_string(),
        };
        format!(
            "      {{\"family\": \"{}\", \"m\": {}, \
             \"iteration_ratio_total\": {}, \"iteration_ratio_per_node\": {}, \
             \"node_counts_match\": {},\n       \
             \"from_scratch\": {},\n       \"warm_restart\": {}}}",
            self.family,
            self.m,
            opt(self.iteration_ratio_total()),
            opt(self.iteration_ratio_per_node()),
            self.node_counts_match(),
            self.scratch.to_json(),
            self.warm.to_json()
        )
    }
}

/// The basis-reuse half of the `--quick` CI gate: warm-restart solves must
/// not spend more than `3×` the from-scratch pivot count, and basis reuse
/// must actually be exercised. Returns the offending message on
/// regression.
fn quick_gate(pairs: &[ReusePair]) -> Result<(), String> {
    let scratch: u64 = pairs.iter().map(|p| p.scratch.lp_iterations).sum();
    let warm: u64 = pairs.iter().map(|p| p.warm.lp_iterations).sum();
    let attempts: u64 = pairs.iter().map(|p| p.warm.warm_attempts).sum();
    eprintln!("quick gate: {scratch} iters from scratch, {warm} warm, {attempts} restart attempts");
    if attempts == 0 {
        return Err("basis reuse was never attempted — warm-restart plumbing is broken".into());
    }
    if warm > scratch.saturating_mul(3) {
        return Err(format!(
            "pivot-count regression: warm-restart solves spent {warm} simplex iterations, \
             more than 3x the from-scratch {scratch}"
        ));
    }
    for p in pairs {
        if (p.scratch.objective - p.warm.objective).abs() > 1e-6 {
            return Err(format!(
                "objective mismatch on {} m={}: {} from scratch vs {} warm",
                p.family, p.m, p.scratch.objective, p.warm.objective
            ));
        }
    }
    Ok(())
}

/// The root-LP pricing half of the `--quick` gate: on the CT m=32
/// reference model, devex pricing must not need more than 1.2× the
/// Dantzig root-LP iteration count (it usually needs far fewer).
fn quick_root_lp_gate(cfg: &GomilConfig) -> Result<(), String> {
    let v32 = Bcv::and_ppg(32);
    let ct = CtIlp::build(&v32, cfg);
    let mut iters = Vec::new();
    for pricing in [Pricing::Dantzig, Pricing::Devex] {
        let base = BranchConfig {
            node_limit: 1,
            time_limit: Some(Duration::from_secs(120)),
            initial: ct.warm_start(&dadda_schedule(&v32)),
            pricing,
            cuts: CutMode::Off,
            ..BranchConfig::default()
        };
        let run = Run::measure(&ct.model, &base, 1)?;
        eprintln!(
            "  CT m=32 root LP [{}]: {} iterations in {}µs",
            pricing.name(),
            run.root.root_lp_iters,
            run.root.root_lp_us
        );
        iters.push(run.root.root_lp_iters);
    }
    let (dantzig, devex) = (iters[0], iters[1]);
    if devex as f64 > dantzig as f64 * 1.2 {
        return Err(format!(
            "root-LP pricing regression: devex took {devex} iterations on CT m=32, \
             more than 1.2x the Dantzig {dantzig}"
        ));
    }
    Ok(())
}

/// The cut-safety half of the `--quick` gate: on the proved roster, root
/// cuts (and either pricing rule) must not change the certified objective.
fn quick_cut_safety_gate() -> Result<(), String> {
    for n in [8usize, 16, 32, 64] {
        let model = random_knapsack(n, 0xC0FFEE ^ n as u64);
        let mut reference: Option<f64> = None;
        for pricing in [Pricing::Dantzig, Pricing::Devex] {
            for cuts in [CutMode::Off, CutMode::Root] {
                let base = BranchConfig {
                    pricing,
                    cuts,
                    ..BranchConfig::default()
                };
                let run = Run::measure(&model, &base, 1)?;
                if !run.proved_optimal || !run.certified {
                    return Err(format!(
                        "roster m={n} [{} / {}]: solve was not proved-and-certified",
                        pricing.name(),
                        cuts.name()
                    ));
                }
                match reference {
                    None => reference = Some(run.objective),
                    Some(obj) if (obj - run.objective).abs() > 1e-6 => {
                        return Err(format!(
                            "cut-safety regression on roster m={n}: objective {} under \
                             [{} / {}] vs reference {obj}",
                            run.objective,
                            pricing.name(),
                            cuts.name()
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        eprintln!(
            "  roster m={n}: all pricing/cut configs proved objective {}",
            reference.unwrap()
        );
    }
    Ok(())
}

/// The hypersparse-kernel half of the `--quick` gate: on the CT m=32
/// reference root solve, the sparse FTRAN/BTRAN kernels must actually
/// fire (a zero hyper counter means the sparse-rhs plumbing fell back to
/// dense everywhere) and the root must stay within fixed ratios of the
/// recorded baseline — root LP iterations ≤ `2×` the recorded 1.3k and
/// root wall-clock ≤ 30 s (the baseline root solves in well under 3 s;
/// the slack absorbs slow CI hosts without masking an order-of-magnitude
/// regression).
fn quick_hypersparse_gate(cfg: &GomilConfig) -> Result<(), String> {
    const BASELINE_ROOT_ITERS: u64 = 1_300;
    const ITER_RATIO: u64 = 2;
    const ROOT_WALL_SECS: f64 = 30.0;
    let v32 = Bcv::and_ppg(32);
    let ct = CtIlp::build(&v32, cfg);
    let base = BranchConfig {
        node_limit: 1,
        time_limit: Some(Duration::from_secs(120)),
        initial: ct.warm_start(&dadda_schedule(&v32)),
        cuts: CutMode::Off,
        ..BranchConfig::default()
    };
    let run = Run::measure(&ct.model, &base, 1)?;
    eprintln!(
        "  CT m=32 root: {} iters in {:.2}s, ftran {}/{} hyper, btran {}/{} hyper ({:.0}% rate)",
        run.root.root_lp_iters,
        run.seconds,
        run.ftran_hyper,
        run.ftran,
        run.btran_hyper,
        run.btran,
        100.0 * run.hyper_rate,
    );
    if run.ftran_hyper == 0 && run.btran_hyper == 0 {
        return Err(
            "hypersparse regression: no FTRAN/BTRAN took the sparse kernel path on CT m=32"
                .into(),
        );
    }
    if run.root.root_lp_iters > BASELINE_ROOT_ITERS * ITER_RATIO {
        return Err(format!(
            "hypersparse regression: CT m=32 root LP took {} iterations, more than {ITER_RATIO}x \
             the recorded baseline {BASELINE_ROOT_ITERS}",
            run.root.root_lp_iters
        ));
    }
    if run.seconds > ROOT_WALL_SECS {
        return Err(format!(
            "hypersparse regression: CT m=32 root solve took {:.1}s, budget {ROOT_WALL_SECS}s",
            run.seconds
        ));
    }
    Ok(())
}

/// The reduction-safety half of the `--quick` gate: LP reduction presolve
/// and equilibration scaling are exact reformulations, so switching them
/// on must never change a certified objective on the quick roster.
fn quick_reduction_safety_gate() -> Result<(), String> {
    for n in [8usize, 16, 32, 64] {
        let model = random_knapsack(n, 0xC0FFEE ^ n as u64);
        let mut reference: Option<f64> = None;
        for (reduce, scaling) in [(false, false), (true, false), (false, true), (true, true)] {
            let base = BranchConfig {
                reduce,
                scaling,
                ..BranchConfig::default()
            };
            let run = Run::measure(&model, &base, 1)?;
            if !run.proved_optimal || !run.certified {
                return Err(format!(
                    "roster m={n} [reduce={reduce} scaling={scaling}]: solve was not \
                     proved-and-certified"
                ));
            }
            match reference {
                None => reference = Some(run.objective),
                Some(obj) if (obj - run.objective).abs() > 1e-6 => {
                    return Err(format!(
                        "reduction-safety regression on roster m={n}: objective {} under \
                         [reduce={reduce} scaling={scaling}] vs reference {obj}",
                        run.objective
                    ));
                }
                Some(_) => {}
            }
        }
        eprintln!(
            "  roster m={n}: all reduce/scaling configs proved objective {}",
            reference.unwrap()
        );
    }
    Ok(())
}

/// One `root_profile` section entry: the widest models solved under a root
/// budget, with the per-phase breakdown attached.
struct RootEntry {
    family: &'static str,
    m: usize,
    budget_secs: u64,
    run: Run,
}

impl RootEntry {
    fn to_json(&self) -> String {
        format!(
            "      {{\"family\": \"{}\", \"m\": {}, \"budget_seconds\": {},\n       \"run\": {}}}",
            self.family,
            self.m,
            self.budget_secs,
            self.run.to_json()
        )
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ilp.json".to_string());
    let par_jobs = flag(&args, "--jobs").unwrap_or(2).max(2) as usize;
    let ct_nodes = flag(&args, "--ct-nodes").unwrap_or(60);
    let joint_secs = flag(&args, "--joint-seconds").unwrap_or(45);
    let reuse_secs = flag(&args, "--reuse-seconds").unwrap_or(20);
    let root_secs = flag(&args, "--root-seconds").unwrap_or(45);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cfg = GomilConfig::fast();

    if quick {
        // Small, fast gates: one real GOMIL family plus one random MILP
        // for basis reuse, then the root-LP pricing and cut-safety gates.
        eprintln!("quick basis-reuse gate …");
        let v16 = Bcv::and_ppg(16);
        let ct = CtIlp::build(&v16, &cfg);
        let ct_base = BranchConfig {
            node_limit: 40,
            time_limit: Some(Duration::from_secs(30)),
            initial: ct.warm_start(&dadda_schedule(&v16)),
            ..BranchConfig::default()
        };
        let knap = random_knapsack(32, 0xC0FFEE ^ 32);
        let knap_base = BranchConfig::default();
        let pairs = vec![
            ReusePair::measure("ct", 16, &ct.model, &ct_base).map_err(std::io::Error::other)?,
            ReusePair::measure("knapsack", 32, &knap, &knap_base).map_err(std::io::Error::other)?,
        ];
        quick_gate(&pairs)?;
        eprintln!("quick root-LP pricing gate …");
        quick_root_lp_gate(&cfg)?;
        eprintln!("quick cut-safety gate …");
        quick_cut_safety_gate()?;
        eprintln!("quick hypersparse gate …");
        quick_hypersparse_gate(&cfg)?;
        eprintln!("quick reduction-safety gate …");
        quick_reduction_safety_gate()?;
        eprintln!("quick gates passed");
        return Ok(());
    }

    let jobs_compared = [1usize, par_jobs];

    // --- Section 1: basis reuse, before/after per family and width ---
    eprintln!("basis reuse m ∈ {{16, 32, 64}} ({reuse_secs}s + 200 nodes per run) …");
    let mut reuse_pairs: Vec<ReusePair> = Vec::new();
    // A run that cannot finish under the shared budget (e.g. no incumbent
    // found in time) is recorded here instead of aborting the bench --
    // dropped entries must be visible, not silent.
    let mut reuse_skipped: Vec<(String, usize, String)> = Vec::new();
    for m in [16usize, 32, 64] {
        let vm = Bcv::and_ppg(m);
        let reuse_base = BranchConfig {
            node_limit: 200,
            time_limit: Some(Duration::from_secs(reuse_secs)),
            ..BranchConfig::default()
        };
        let jm = build_joint_model(&vm, &cfg, None)?;
        let mut seeds = jm.seeds.clone().into_iter();
        let joint_base = BranchConfig {
            initial: seeds.next(),
            extra_starts: seeds.collect(),
            ..reuse_base.clone()
        };
        let ct = CtIlp::build(&vm, &cfg);
        let ct_base = BranchConfig {
            initial: ct.warm_start(&dadda_schedule(&vm)),
            ..reuse_base.clone()
        };
        let (pm, pm_init, _) = prefix_model(m);
        let prefix_base = BranchConfig {
            initial: Some(pm_init),
            ..reuse_base.clone()
        };
        let attempts: [(&'static str, &Model, &BranchConfig); 3] = [
            ("joint", &jm.model, &joint_base),
            ("ct", &ct.model, &ct_base),
            ("prefix", &pm, &prefix_base),
        ];
        for (family, model, base) in attempts {
            match ReusePair::measure(family, m, model, base) {
                Ok(pair) => reuse_pairs.push(pair),
                Err(e) => {
                    eprintln!("  {family} m={m}: SKIPPED ({e})");
                    reuse_skipped.push((family.to_string(), m, e));
                }
            }
        }
    }
    let joint_m32_ratio = reuse_pairs
        .iter()
        .find(|p| p.family == "joint" && p.m == 32)
        .and_then(ReusePair::iteration_ratio_per_node);
    let reuse_json = reuse_pairs
        .iter()
        .map(ReusePair::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let skipped_json = reuse_skipped
        .iter()
        .map(|(family, m, e)| {
            format!(
                "      {{\"family\": \"{family}\", \"m\": {m}, \"error\": \"{}\"}}",
                e.replace('"', "'")
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // --- Section 2: root-stage breakdown on the widest models ---------
    eprintln!("root profiles at m=64 ({root_secs}s per family) …");
    let mut root_entries: Vec<RootEntry> = Vec::new();
    {
        let v64 = Bcv::and_ppg(64);
        let root_base = BranchConfig {
            time_limit: Some(Duration::from_secs(root_secs)),
            ..BranchConfig::default()
        };
        let (jm_res, joint_build) = timed(|| build_joint_model(&v64, &cfg, None));
        let jm = jm_res?;
        let mut seeds = jm.seeds.clone().into_iter();
        let (ct, ct_build) = timed(|| CtIlp::build(&v64, &cfg));
        let (pm, pm_init, prefix_build) = prefix_model(64);
        let attempts: [(&'static str, &Model, BranchConfig, Duration); 3] = [
            (
                "joint",
                &jm.model,
                BranchConfig {
                    initial: seeds.next(),
                    extra_starts: seeds.collect(),
                    ..root_base.clone()
                },
                joint_build,
            ),
            (
                "ct",
                &ct.model,
                BranchConfig {
                    initial: ct.warm_start(&dadda_schedule(&v64)),
                    ..root_base.clone()
                },
                ct_build,
            ),
            (
                "prefix",
                &pm,
                BranchConfig {
                    initial: Some(pm_init.clone()),
                    ..root_base.clone()
                },
                prefix_build,
            ),
        ];
        for (family, model, base, build) in attempts {
            match Run::measure(model, &base, 1) {
                Ok(mut run) => {
                    run.root.build_us = build.as_micros() as u64;
                    eprintln!(
                        "  {family} m=64: {:.1}s, {} nodes, root LP {} iters in {}µs \
                         (build {}µs, presolve {}µs, first factor {}µs, {} cuts), proved={}",
                        run.seconds,
                        run.nodes,
                        run.root.root_lp_iters,
                        run.root.root_lp_us,
                        run.root.build_us,
                        run.root.presolve_us,
                        run.root.first_factor_us,
                        run.root.cuts_added,
                        run.proved_optimal,
                    );
                    root_entries.push(RootEntry {
                        family,
                        m: 64,
                        budget_secs: root_secs,
                        run,
                    });
                }
                Err(e) => eprintln!("  {family} m=64: SKIPPED ({e})"),
            }
        }
    }
    let root_profile_json = root_entries
        .iter()
        .map(RootEntry::to_json)
        .collect::<Vec<_>>()
        .join(",\n");

    let v0 = Bcv::and_ppg(32);

    // --- Section 3: the joint Eq. 27 ILP at m = 32 -------------------
    eprintln!("joint m=32 ({joint_secs}s per run) …");
    let jm = build_joint_model(&v0, &cfg, None)?;
    let joint_vars = jm.model.num_vars();
    let mut seeds = jm.seeds.clone().into_iter();
    let joint_base = BranchConfig {
        time_limit: Some(Duration::from_secs(joint_secs)),
        initial: seeds.next(),
        extra_starts: seeds.collect(),
        ..BranchConfig::default()
    };
    let mut joint_runs = Vec::new();
    for &jobs in &jobs_compared {
        let run = Run::measure(&jm.model, &joint_base, jobs).map_err(std::io::Error::other)?;
        eprintln!(
            "  jobs={}: {:.1}s, {} nodes, objective {}",
            run.jobs, run.seconds, run.nodes, run.objective
        );
        joint_runs.push(run);
    }

    // --- Section 4: the CT ILP at m = 32 (the ladder's actual rung) --
    eprintln!("CT m=32 ({ct_nodes} nodes per run) …");
    let ct = CtIlp::build(&v0, &cfg);
    let ct_vars = ct.model.num_vars();
    let ct_base = BranchConfig {
        node_limit: ct_nodes,
        time_limit: Some(Duration::from_secs(20 * ct_nodes.max(1))),
        initial: ct.warm_start(&dadda_schedule(&v0)),
        ..BranchConfig::default()
    };
    let mut ct_runs = Vec::new();
    for &jobs in &jobs_compared {
        let run = Run::measure(&ct.model, &ct_base, jobs).map_err(std::io::Error::other)?;
        eprintln!(
            "  jobs={}: {:.1}s, {} nodes ({:.2} nodes/s), objective {}",
            run.jobs,
            run.seconds,
            run.nodes,
            run.nodes as f64 / run.seconds.max(1e-9),
            run.objective
        );
        ct_runs.push(run);
    }

    // --- Section 5: proven-equality roster ---------------------------
    eprintln!("equality roster m ∈ {{8, 16, 32, 64}} (jobs × pricing × cuts) …");
    let mut roster = Vec::new();
    let mut all_configs_equal = true;
    for n in [8usize, 16, 32, 64] {
        let model = random_knapsack(n, 0xC0FFEE ^ n as u64);
        let base = BranchConfig::default();
        let seq = Run::measure(&model, &base, 1).map_err(std::io::Error::other)?;
        let par = Run::measure(&model, &base, par_jobs).map_err(std::io::Error::other)?;
        let equal = (seq.objective - par.objective).abs() < 1e-6
            && seq.proved_optimal
            && par.proved_optimal;
        // Every pricing/cut combination must prove the same objective.
        let mut configs_equal = true;
        for pricing in [Pricing::Dantzig, Pricing::Devex] {
            for cuts in [CutMode::Off, CutMode::Root] {
                let cfg_base = BranchConfig {
                    pricing,
                    cuts,
                    ..BranchConfig::default()
                };
                let run = Run::measure(&model, &cfg_base, 1).map_err(std::io::Error::other)?;
                if (run.objective - seq.objective).abs() > 1e-6
                    || !run.proved_optimal
                    || !run.certified
                {
                    configs_equal = false;
                }
            }
        }
        all_configs_equal &= configs_equal;
        eprintln!(
            "  m={n}: objective {} (jobs=1) vs {} (jobs={par_jobs}) — {}; configs {}",
            seq.objective,
            par.objective,
            if equal { "equal, proved" } else { "MISMATCH" },
            if configs_equal { "equal" } else { "MISMATCH" }
        );
        roster.push((n, seq, par, equal, configs_equal));
    }
    let all_equal = roster.iter().all(|(_, _, _, eq, _)| *eq);

    let roster_json = roster
        .iter()
        .map(|(n, seq, par, eq, cfg_eq)| {
            format!(
                "      {{\"m\": {n}, \"equal_and_proved\": {eq}, \"all_configs_equal\": {cfg_eq},\n       \"sequential\": {},\n       \"parallel\": {}}}",
                seq.to_json(),
                par.to_json()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let joint_ratio_json = match joint_m32_ratio {
        Some(r) => format!("{r:.3}"),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"solver_scaling\",\n  \"host_cpus\": {host_cpus},\n  \
         \"jobs_compared\": [1, {par_jobs}],\n  \
         \"note\": \"wall-clock speedup from jobs > 1 requires host_cpus > 1; on a single-core host the parallel engine matches sequential within scheduling overhead\",\n  \
         \"basis_reuse\": {{\n    \
         \"note\": \"same model, same budget, reuse_basis off vs on; iteration_ratio_per_node = from-scratch iters/node over warm iters/node (meaningful even when node counts differ); iteration_ratio_total is the raw quotient and is only meaningful when node_counts_match\",\n    \
         \"joint_m32_iteration_ratio_per_node\": {joint_ratio_json},\n    \"entries\": [\n{reuse_json}\n    ],\n    \"skipped\": [\n{skipped_json}\n    ]\n  }},\n  \
         \"root_profile\": {{\n    \
         \"note\": \"widest models under a {root_secs}s budget; build_us is model construction, presolve/first-factor/root-LP/cuts are the in-solver root stage; gap may be the string sentinel 'infinite' when no dual bound exists yet\",\n    \
         \"entries\": [\n{root_profile_json}\n    ]\n  }},\n  \
         \"joint_ilp_m32\": {{\n    \"variables\": {joint_vars},\n    \"time_limit_seconds\": {joint_secs},\n    \
         \"note\": \"at this width the root LP dominates the budget, so node counts stay close at every job count\",\n    \
         \"runs\": [\n{}\n    ]\n  }},\n  \
         \"ct_ilp_m32\": {{\n    \"variables\": {ct_vars},\n    \"node_limit\": {ct_nodes},\n    \"runs\": [\n{}\n    ]\n  }},\n  \
         \"equality_roster\": {{\n    \"all_equal_and_proved\": {all_equal},\n    \"all_configs_equal\": {all_configs_equal},\n    \"instances\": [\n{}\n    ]\n  }}\n}}\n",
        runs_json(&joint_runs),
        runs_json(&ct_runs),
        roster_json,
    );
    std::fs::write(&json_path, &json)?;
    eprintln!("wrote {json_path}");
    if !all_equal {
        return Err("equality roster found an objective mismatch".into());
    }
    if !all_configs_equal {
        return Err("equality roster found a pricing/cut configuration mismatch".into());
    }
    Ok(())
}
