//! Experiment: parallel versus sequential branch and bound on the GOMIL
//! ILPs. Writes `BENCH_ilp.json`.
//!
//! Three sections, honest about what each can show:
//!
//! * **joint m=32** — the paper's Eq. 27 model at the acceptance width.
//!   On this solver the root LP relaxation alone exceeds any sane time
//!   budget at 8k+ columns, so the tree never opens and every job count
//!   explores the same one node; the section records that plainly.
//! * **CT m=32** — the compressor-tree ILP, which is the model the
//!   degradation ladder actually solves at this width (the `truncated-ilp`
//!   rung). Node LPs take ~0.5 s, the tree opens, and the jobs comparison
//!   is meaningful: on a multi-core host `jobs=N` explores ~N× nodes per
//!   second; on a single-core host (see `host_cpus` in the output) the
//!   parallel engine matches sequential within scheduling overhead.
//! * **equality roster** — randomized MILPs sized m ∈ {8, 16, 32, 64}:
//!   every job count must prove the same objective and certify.
//!
//! Usage: `cargo run --release -p gomil-bench --bin solver_scaling --
//! [--jobs N] [--ct-nodes N] [--joint-seconds S] [--json FILE]`

use gomil::{build_joint_model, Bcv, CtIlp, GomilConfig};
use gomil_arith::dadda_schedule;
use gomil_bench::timed;
use gomil_ilp::{BranchConfig, Cmp, LinExpr, Model, Sense, Solution};
use std::time::Duration;

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

/// One measured solve, flattened for the JSON report.
struct Run {
    jobs: usize,
    seconds: f64,
    nodes: u64,
    pruned: u64,
    branched: u64,
    lp_iterations: u64,
    objective: f64,
    gap: f64,
    proved_optimal: bool,
    certified: bool,
}

impl Run {
    fn measure(model: &Model, base: &BranchConfig, jobs: usize) -> Result<Run, String> {
        let cfg = BranchConfig {
            jobs,
            ..base.clone()
        };
        let (result, took) = timed(|| model.solve_with(&cfg));
        let sol: Solution = result.map_err(|e| e.to_string())?;
        Ok(Run {
            jobs,
            seconds: took.as_secs_f64(),
            nodes: sol.nodes(),
            pruned: sol.nodes_pruned(),
            branched: sol.nodes_branched(),
            lp_iterations: sol.lp_iterations(),
            objective: sol.objective(),
            gap: sol.gap(),
            proved_optimal: sol.is_optimal(),
            certified: sol.certificate().is_some(),
        })
    }

    fn to_json(&self) -> String {
        // An infinite gap (no dual bound yet) has no JSON literal; emit null.
        let gap = if self.gap.is_finite() {
            self.gap.to_string()
        } else {
            "null".to_string()
        };
        format!(
            "{{\"jobs\": {}, \"seconds\": {}, \"nodes\": {}, \"pruned\": {}, \
             \"branched\": {}, \"lp_iterations\": {}, \"objective\": {}, \
             \"gap\": {gap}, \"proved_optimal\": {}, \"certified\": {}}}",
            self.jobs,
            self.seconds,
            self.nodes,
            self.pruned,
            self.branched,
            self.lp_iterations,
            self.objective,
            self.proved_optimal,
            self.certified,
        )
    }
}

fn runs_json(runs: &[Run]) -> String {
    runs.iter()
        .map(|r| format!("      {}", r.to_json()))
        .collect::<Vec<_>>()
        .join(",\n")
}

fn random_knapsack(n: usize, seed: u64) -> Model {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(format!("knap{n}"));
    let mut obj = LinExpr::default();
    let mut weight = LinExpr::default();
    for i in 0..n {
        let x = m.add_binary(format!("x{i}"));
        obj += rng.gen_range(1..20) as f64 * x;
        weight += rng.gen_range(1..12) as f64 * x;
    }
    m.add_constraint("cap", weight, Cmp::Le, (6 * n / 2) as f64);
    m.set_objective(obj, Sense::Maximize);
    m
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ilp.json".to_string());
    let par_jobs = flag(&args, "--jobs").unwrap_or(2).max(2) as usize;
    let ct_nodes = flag(&args, "--ct-nodes").unwrap_or(60);
    let joint_secs = flag(&args, "--joint-seconds").unwrap_or(45);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs_compared = [1usize, par_jobs];
    let cfg = GomilConfig::fast();
    let v0 = Bcv::and_ppg(32);

    // --- Section 1: the joint Eq. 27 ILP at m = 32 -------------------
    eprintln!("joint m=32 ({joint_secs}s per run) …");
    let jm = build_joint_model(&v0, &cfg, None)?;
    let joint_vars = jm.model.num_vars();
    let mut seeds = jm.seeds.clone().into_iter();
    let joint_base = BranchConfig {
        time_limit: Some(Duration::from_secs(joint_secs)),
        initial: seeds.next(),
        extra_starts: seeds.collect(),
        ..BranchConfig::default()
    };
    let mut joint_runs = Vec::new();
    for &jobs in &jobs_compared {
        let run = Run::measure(&jm.model, &joint_base, jobs).map_err(std::io::Error::other)?;
        eprintln!(
            "  jobs={}: {:.1}s, {} nodes, objective {}",
            run.jobs, run.seconds, run.nodes, run.objective
        );
        joint_runs.push(run);
    }

    // --- Section 2: the CT ILP at m = 32 (the ladder's actual rung) --
    eprintln!("CT m=32 ({ct_nodes} nodes per run) …");
    let ct = CtIlp::build(&v0, &cfg);
    let ct_vars = ct.model.num_vars();
    let ct_base = BranchConfig {
        node_limit: ct_nodes,
        time_limit: Some(Duration::from_secs(20 * ct_nodes.max(1))),
        initial: ct.warm_start(&dadda_schedule(&v0)),
        ..BranchConfig::default()
    };
    let mut ct_runs = Vec::new();
    for &jobs in &jobs_compared {
        let run = Run::measure(&ct.model, &ct_base, jobs).map_err(std::io::Error::other)?;
        eprintln!(
            "  jobs={}: {:.1}s, {} nodes ({:.2} nodes/s), objective {}",
            run.jobs,
            run.seconds,
            run.nodes,
            run.nodes as f64 / run.seconds.max(1e-9),
            run.objective
        );
        ct_runs.push(run);
    }

    // --- Section 3: proven-equality roster ---------------------------
    eprintln!("equality roster m ∈ {{8, 16, 32, 64}} …");
    let mut roster = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let model = random_knapsack(n, 0xC0FFEE ^ n as u64);
        let base = BranchConfig::default();
        let seq = Run::measure(&model, &base, 1).map_err(std::io::Error::other)?;
        let par = Run::measure(&model, &base, par_jobs).map_err(std::io::Error::other)?;
        let equal = (seq.objective - par.objective).abs() < 1e-6
            && seq.proved_optimal
            && par.proved_optimal;
        eprintln!(
            "  m={n}: objective {} (jobs=1) vs {} (jobs={par_jobs}) — {}",
            seq.objective,
            par.objective,
            if equal { "equal, proved" } else { "MISMATCH" }
        );
        roster.push((n, seq, par, equal));
    }
    let all_equal = roster.iter().all(|(_, _, _, eq)| *eq);

    let roster_json = roster
        .iter()
        .map(|(n, seq, par, eq)| {
            format!(
                "      {{\"m\": {n}, \"equal_and_proved\": {eq},\n       \"sequential\": {},\n       \"parallel\": {}}}",
                seq.to_json(),
                par.to_json()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"bench\": \"solver_scaling\",\n  \"host_cpus\": {host_cpus},\n  \
         \"jobs_compared\": [1, {par_jobs}],\n  \
         \"note\": \"wall-clock speedup from jobs > 1 requires host_cpus > 1; on a single-core host the parallel engine matches sequential within scheduling overhead\",\n  \
         \"joint_ilp_m32\": {{\n    \"variables\": {joint_vars},\n    \"time_limit_seconds\": {joint_secs},\n    \
         \"note\": \"the root LP relaxation alone exceeds the time budget at this width, so the tree never opens and node counts match at every job count\",\n    \
         \"runs\": [\n{}\n    ]\n  }},\n  \
         \"ct_ilp_m32\": {{\n    \"variables\": {ct_vars},\n    \"node_limit\": {ct_nodes},\n    \"runs\": [\n{}\n    ]\n  }},\n  \
         \"equality_roster\": {{\n    \"all_equal_and_proved\": {all_equal},\n    \"instances\": [\n{}\n    ]\n  }}\n}}\n",
        runs_json(&joint_runs),
        runs_json(&ct_runs),
        roster_json,
    );
    std::fs::write(&json_path, &json)?;
    eprintln!("wrote {json_path}");
    if !all_equal {
        return Err("equality roster found an objective mismatch".into());
    }
    Ok(())
}
