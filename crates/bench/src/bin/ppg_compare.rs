//! Extension experiment: GOMIL across all four partial product generators
//! — unsigned AND array, signed Baugh-Wooley, radix-4 MBE, radix-8 Booth.
//! The paper evaluates AND and MBE; BW and radix-8 complete the design
//! space a generator like DesignWare weighs.
//!
//! Usage: `cargo run --release -p gomil-bench --bin ppg_compare -- [m …]`

use gomil::{build_gomil, DesignReport, GomilConfig, PpgKind};
use gomil_bench::word_lengths_from_args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = word_lengths_from_args();
    let cfg = GomilConfig::default();
    for &m in &ms {
        println!("== GOMIL by PPG at m = {m} ==");
        println!(
            "{:<16} {:>9} {:>8} {:>10} {:>10} {:>8}",
            "design", "area", "delay", "power", "PDP", "gates"
        );
        for ppg in [
            PpgKind::And,
            PpgKind::BaughWooley,
            PpgKind::Booth4,
            PpgKind::Booth8,
        ] {
            let d = build_gomil(m, ppg, &cfg)?;
            let r = DesignReport::measure(&d.build, cfg.power_vectors);
            assert!(r.verified, "{} failed verification", r.name);
            println!(
                "{:<16} {:>9.1} {:>8.2} {:>10.2} {:>10.1} {:>8}",
                r.name,
                r.metrics.area,
                r.metrics.delay,
                r.metrics.power,
                r.metrics.pdp(),
                r.gates
            );
        }
        println!();
    }
    Ok(())
}
