//! Extension experiment: FPGA cost view. Maps every Fig. 3 design onto
//! 6-input LUTs (the paper's stated future-work target architecture) and
//! prints LUT counts and depths.
//!
//! Usage: `cargo run --release -p gomil-bench --bin fpga_map -- [m …]`

use gomil::{build_baseline, build_gomil, BaselineKind, GomilConfig, PpgKind};
use gomil_bench::word_lengths_from_args;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = word_lengths_from_args();
    let cfg = GomilConfig::default();
    const K: usize = 6;

    for &m in &ms {
        println!("== m = {m}, {K}-LUT mapping ==");
        println!("{:<16} {:>8} {:>8}", "design", "LUTs", "depth");
        for kind in BaselineKind::all() {
            let b = build_baseline(kind, m, &cfg);
            let l = b.netlist.map_to_luts(K);
            println!("{:<16} {:>8} {:>8}", b.name, l.luts, l.depth);
        }
        for ppg in [PpgKind::And, PpgKind::Booth4] {
            let d = build_gomil(m, ppg, &cfg)?;
            let l = d.build.netlist.map_to_luts(K);
            println!("{:<16} {:>8} {:>8}", d.build.name, l.luts, l.depth);
        }
        println!();
    }
    println!("(LUT count stands in for FPGA area, depth for FPGA delay; the");
    println!(" ASIC cost model's constants do not apply in this view — which");
    println!(" is exactly why the paper calls FPGA synthesis future work.)");
    Ok(())
}
