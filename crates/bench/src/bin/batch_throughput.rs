//! Experiment: throughput of the `gomil-serve` batch service — cold
//! (every request solves) versus warm (cache + singleflight absorb the
//! duplicates), plus the dedup and warm-start counters behind the
//! speedup. Writes `BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p gomil-bench --bin batch_throughput --
//! [m …] [--json FILE]`

use gomil::{serve_service, GomilConfig, PpgKind, ServeConfig, SolveRequest};
use gomil_bench::timed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let ms: Vec<usize> = {
        let named: Vec<usize> = args.iter().filter_map(|s| s.parse().ok()).collect();
        if named.is_empty() {
            vec![8, 12, 16, 24]
        } else {
            named
        }
    };

    // `fast()` keeps the solver budget small so the benchmark measures
    // the service overheads, not one giant branch and bound.
    let cfg = GomilConfig::fast();
    let svc = serve_service(&cfg, ServeConfig::default())?;

    // The duplicated request list of the acceptance scenario: every
    // (m, PPG) twice, duplicates adjacent so they overlap in flight.
    let requests: Vec<SolveRequest> = ms
        .iter()
        .flat_map(|&m| {
            PpgKind::all()
                .into_iter()
                .filter(move |&ppg| !(ppg == PpgKind::Booth4 && m % 2 != 0))
                .map(move |ppg| SolveRequest { m, ppg })
        })
        .flat_map(|r| [r.clone(), r])
        .collect();

    eprintln!("cold wave: {} requests …", requests.len());
    let (cold_results, cold) = timed(|| svc.run_batch(&requests));
    let cold_errors = cold_results.iter().filter(|r| r.is_err()).count();
    eprintln!("  done in {cold:.1?} ({cold_errors} errors)");

    eprintln!("warm wave: same {} requests …", requests.len());
    let (warm_results, warm) = timed(|| svc.run_batch(&requests));
    let warm_errors = warm_results.iter().filter(|r| r.is_err()).count();
    eprintln!("  done in {warm:.1?} ({warm_errors} errors)");

    let report = svc.report();
    println!("{report}");
    let n = requests.len() as f64;
    let cold_rps = n / cold.as_secs_f64().max(1e-9);
    let warm_rps = n / warm.as_secs_f64().max(1e-9);
    println!("cold: {cold_rps:.2} req/s   warm: {warm_rps:.2} req/s");

    let json = format!(
        "{{\n  \"bench\": \"batch_throughput\",\n  \"word_lengths\": [{}],\n  \
         \"requests_per_wave\": {},\n  \"jobs\": {},\n  \
         \"cold_seconds\": {},\n  \"warm_seconds\": {},\n  \
         \"cold_requests_per_sec\": {},\n  \"warm_requests_per_sec\": {},\n  \
         \"solves\": {},\n  \"cache_hits\": {},\n  \"dedup_joins\": {},\n  \
         \"warm_start_hints\": {},\n  \"hit_rate\": {},\n  \
         \"errors\": {}\n}}\n",
        ms.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        requests.len(),
        ServeConfig::default().jobs,
        cold.as_secs_f64(),
        warm.as_secs_f64(),
        cold_rps,
        warm_rps,
        report.solves,
        report.hits,
        report.dedup_joins,
        report.warm_hints,
        report.hit_rate(),
        cold_errors + warm_errors,
    );
    std::fs::write(&json_path, json)?;
    eprintln!("wrote {json_path}");
    Ok(())
}
