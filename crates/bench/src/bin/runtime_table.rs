//! Experiment E7: the GOMIL optimization runtime per word length.
//!
//! The paper reports 2325 s / 4840 s / 5510 s / 7200 s for m = 8/16/32/64
//! under Gurobi with a (3600 + L³)-second cap; this reproduction scales the
//! budget down (see `GomilConfig::solver_budget`) and reports what the
//! from-scratch solver spends, split by strategy.
//!
//! Usage: `cargo run --release -p gomil-bench --bin runtime_table -- [m …]`

use gomil::{optimize_global, Bcv, GomilConfig};
use gomil_bench::{timed, word_lengths_from_args};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = word_lengths_from_args();
    let cfg = GomilConfig::default();

    println!(
        "{:<6} {:>10} {:>14} {:>12} {:>12} {:>12}",
        "m", "runtime", "strategy", "ct cost", "prefix cost", "objective"
    );
    println!(
        "(paper, Gurobi, budget 3600+L³ s: m=8 → 2325 s, m=16 → 4840 s, m=32 → 5510 s, m=64 → 7200 s)"
    );
    for &m in &ms {
        let v0 = Bcv::and_ppg(m);
        let (sol, took) = timed(|| optimize_global(&v0, &cfg));
        let sol = sol?;
        println!(
            "{:<6} {:>10.2?} {:>14} {:>12.1} {:>12.1} {:>12.1}",
            m, took, sol.strategy, sol.ct_cost, sol.prefix_cost, sol.objective
        );
    }
    Ok(())
}
