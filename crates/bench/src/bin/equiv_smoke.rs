//! Equivalence smoke run: the verification gate, exercised end to end.
//!
//! Builds GOMIL designs under the `strict` verification mode and asserts
//! the verdict tier the gate must reach at each width: exhaustively
//! `proved` where the full 2^(2m) input space is enumerable, `tested`
//! (corner + seeded-random vectors) beyond. A regression anywhere in the
//! PPG → compressor tree → CPA pipeline, the bit-parallel simulator, or
//! the verdict plumbing turns this run red.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p gomil-bench --bin equiv_smoke [-- --quick]
//! ```
//!
//! `--quick` trims the roster to one proved and one tested width (for
//! `scripts/check.sh` and CI smoke); the full run sweeps both PPGs and
//! the m = 16 exhaustive sweep (2^32 products).

use gomil::{build_gomil, GomilConfig, PpgKind, VerdictTier, VerifyMode};
use std::process::ExitCode;
use std::time::Instant;

/// One roster entry: width, PPG, and the tier the gate must reach.
struct SmokeCase {
    m: usize,
    ppg: PpgKind,
    want: VerdictTier,
}

fn case(m: usize, ppg: PpgKind, want: VerdictTier) -> SmokeCase {
    SmokeCase { m, ppg, want }
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let roster: Vec<SmokeCase> = if quick {
        vec![
            case(8, PpgKind::And, VerdictTier::Proved),
            case(32, PpgKind::And, VerdictTier::Tested),
        ]
    } else {
        vec![
            case(8, PpgKind::And, VerdictTier::Proved),
            case(8, PpgKind::Booth4, VerdictTier::Proved),
            case(16, PpgKind::And, VerdictTier::Proved),
            case(16, PpgKind::Booth4, VerdictTier::Proved),
            case(32, PpgKind::And, VerdictTier::Tested),
            case(32, PpgKind::Booth4, VerdictTier::Tested),
        ]
    };
    let cfg = GomilConfig {
        verify: VerifyMode::Strict,
        ..GomilConfig::fast()
    };

    println!(
        "{:<14} {:>4} {:>9} {:>12} {:>10} {:>10}",
        "design", "m", "verdict", "vectors", "verify", "build"
    );
    let mut failures = 0;
    for c in &roster {
        let t0 = Instant::now();
        match build_gomil(c.m, c.ppg, &cfg) {
            Ok(design) => {
                let took = t0.elapsed();
                let verdict = &design.solution.verdict;
                let ok = verdict.tier() == c.want;
                println!(
                    "{:<14} {:>4} {:>9} {:>12} {:>10.2?} {:>10.2?}{}",
                    design.build.name,
                    c.m,
                    verdict.tier().label(),
                    verdict.vectors(),
                    design.solution.verify_time,
                    took,
                    if ok { "" } else { "  ← WRONG TIER" }
                );
                if !ok {
                    eprintln!(
                        "FAIL: {} came back {} (wanted {})",
                        design.build.name,
                        verdict.tier().label(),
                        c.want.label()
                    );
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("FAIL: m={} {}: {e}", c.m, c.ppg.label());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "equivalence smoke: {failures} of {} cases failed",
            roster.len()
        );
        return ExitCode::FAILURE;
    }
    println!("equivalence smoke: all {} cases verified", roster.len());
    ExitCode::SUCCESS
}
