//! Criterion micro-benchmarks (experiment E10): the computational kernels
//! behind the reproduction, so performance regressions are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomil::{build_baseline, target_search, BaselineKind, Bcv, CtIlp, GomilConfig, PpgKind};
use gomil_arith::{dadda_schedule, wallace_schedule};
use gomil_ilp::{Cmp, Model, Sense};
use gomil_prefix::optimize_prefix_tree;
use std::time::Duration;

/// Simplex/B&B on a dense knapsack-style MILP.
fn bench_milp_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_solver");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);
    for n in [10usize, 20, 40] {
        group.bench_with_input(BenchmarkId::new("knapsack", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut m = Model::new("k");
                let xs: Vec<_> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
                let w: Vec<f64> = (0..n).map(|i| 3.0 + (i as f64 * 7.0) % 11.0).collect();
                let v: Vec<f64> = (0..n).map(|i| 2.0 + (i as f64 * 5.0) % 13.0).collect();
                let weight: gomil_ilp::LinExpr = xs.iter().zip(&w).map(|(&x, &wi)| wi * x).sum();
                let value: gomil_ilp::LinExpr = xs.iter().zip(&v).map(|(&x, &vi)| vi * x).sum();
                m.add_constraint("cap", weight, Cmp::Le, 2.5 * n as f64);
                m.set_objective(value, Sense::Maximize);
                m.solve().unwrap().objective()
            })
        });
    }
    group.finish();
}

/// The CT ILP end to end (build + presolve + branch and bound).
fn bench_ct_ilp(c: &mut Criterion) {
    // A tight budget keeps the m = 6 solve bounded; the solver returns the
    // Dadda-seeded incumbent when it can't prove optimality in time.
    let cfg = GomilConfig {
        solver_budget: Duration::from_millis(300),
        ..GomilConfig::fast()
    };
    let mut group = c.benchmark_group("ct_ilp");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    for m in [4usize, 6] {
        group.bench_with_input(BenchmarkId::new("solve", m), &m, |bch, &m| {
            let v0 = Bcv::and_ppg(m);
            bch.iter(|| {
                let ilp = CtIlp::build(&v0, &cfg);
                ilp.solve(&cfg).unwrap().objective
            })
        });
    }
    group.finish();
}

/// The interval DP at production sizes (127 columns = m = 64).
fn bench_prefix_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_dp");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(20);
    for n in [15usize, 63, 127] {
        let leaf: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        group.bench_with_input(BenchmarkId::new("optimize", n), &n, |bch, _| {
            bch.iter(|| optimize_prefix_tree(&leaf, 8.0).cost)
        });
    }
    group.finish();
}

/// Reduction-schedule generators.
fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedules");
    group.measurement_time(Duration::from_secs(3));
    for m in [16usize, 64] {
        let v0 = Bcv::and_ppg(m);
        group.bench_with_input(BenchmarkId::new("wallace", m), &m, |bch, _| {
            bch.iter(|| wallace_schedule(&v0).num_full())
        });
        group.bench_with_input(BenchmarkId::new("dadda", m), &m, |bch, _| {
            bch.iter(|| dadda_schedule(&v0).num_full())
        });
    }
    group.finish();
}

/// The scalable global optimizer.
fn bench_target_search(c: &mut Criterion) {
    let cfg = GomilConfig::fast();
    let mut group = c.benchmark_group("global");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    for m in [16usize, 32] {
        let v0 = Bcv::and_ppg(m);
        group.bench_with_input(BenchmarkId::new("target_search", m), &m, |bch, _| {
            bch.iter(|| target_search(&v0, &cfg).objective)
        });
    }
    group.finish();
}

/// Building + measuring a full multiplier netlist (simulation included).
fn bench_netlist_flow(c: &mut Criterion) {
    let cfg = GomilConfig::fast();
    let mut group = c.benchmark_group("netlist");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);
    for m in [8usize, 16] {
        group.bench_with_input(BenchmarkId::new("wal_rca_build", m), &m, |bch, &m| {
            bch.iter(|| {
                build_baseline(BaselineKind::WalRca, m, &cfg)
                    .netlist
                    .num_gates()
            })
        });
        group.bench_with_input(BenchmarkId::new("power_512v", m), &m, |bch, &m| {
            let b = build_baseline(BaselineKind::WalRca, m, &cfg);
            bch.iter(|| b.netlist.estimate_power(512, 7).total())
        });
    }
    let _ = PpgKind::And; // silence unused-import lint churn across features
    group.finish();
}

criterion_group!(
    benches,
    bench_milp_solver,
    bench_ct_ilp,
    bench_prefix_dp,
    bench_schedules,
    bench_target_search,
    bench_netlist_flow
);
criterion_main!(benches);
