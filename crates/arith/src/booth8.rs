//! Radix-8 Booth partial product generation.
//!
//! Radix-8 recoding halves the row count again relative to radix-4
//! (⌈m/3⌉ rows) at the cost of a hard multiple: ±3A, which needs a real
//! adder. DesignWare-style generators weigh this architecture against
//! radix-4 and non-Booth ones; this module provides it for the `pparch` /
//! `apparch` candidate set and as an extension experiment.
//!
//! Encoding per digit `i` (covering bits `3i−1 … 3i+2` of `b`, two's
//! complement): `d = −4·b₃ᵢ₊₂ + 2·b₃ᵢ₊₁ + b₃ᵢ + b₃ᵢ₋₁ ∈ {−4,…,4}`.
//! Negative digits use the one's-complement + deferred `+1` trick and the
//! same sign-extension elimination as the radix-4 generator: each row adds
//! `¬s` one column above its MSB plus a compile-time constant correction.

use crate::bitmatrix::BitMatrix;
use gomil_netlist::{NetId, Netlist};

/// Builds radix-8 Booth partial products of a **signed** `m × m`
/// multiplier. The matrix has `2m` columns and its weighted sum equals
/// `a · b mod 2^{2m}` (two's complement).
///
/// # Panics
///
/// Panics if the operands differ in width or `m < 3`.
pub fn booth8_ppg(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> BitMatrix {
    let m = a.len();
    assert_eq!(m, b.len(), "operands must have equal width");
    assert!(m >= 3, "radix-8 Booth needs at least 3-bit operands");

    let rows = m.div_ceil(3);
    let width = 2 * m;
    // Row bit width: d·A with |d| ≤ 4 fits one's-complement-pending in
    // m + 3 bits (MSB at j = m + 2).
    let row_bits = m + 3;
    let mut matrix = BitMatrix::new(width);
    let c0 = nl.const0();
    let c1 = nl.const1();

    // Precompute 3A = A + 2A as an (m + 2)-bit signed value (ripple; this
    // is the classic radix-8 "hard multiple" adder).
    let three_a = {
        let mut bits = Vec::with_capacity(m + 2);
        // A sign-extended to m+2 bits plus (2A) sign-extended to m+2 bits.
        let ax = |j: usize| if j < m { a[j] } else { a[m - 1] };
        let two_ax = |j: usize| {
            if j == 0 {
                c0
            } else if j - 1 < m {
                a[j - 1]
            } else {
                a[m - 1]
            }
        };
        let mut carry = c0;
        for j in 0..m + 2 {
            let (s, c) = nl.full_adder(ax(j), two_ax(j), carry);
            bits.push(s);
            carry = c;
        }
        bits
    };

    // b with sign extension and the implicit b₋₁ = 0.
    let bx = |j: isize| -> NetId {
        if j < 0 {
            c0
        } else if (j as usize) < m {
            b[j as usize]
        } else {
            b[m - 1]
        }
    };

    for i in 0..rows {
        let b0 = bx(3 * i as isize - 1);
        let b1 = bx(3 * i as isize);
        let b2 = bx(3 * i as isize + 1);
        let b3 = bx(3 * i as isize + 2);

        // u = 2·b2 + b1 + b0 ∈ {0..4}; d = b3 ? u − 4 : u.
        let b1x0 = nl.xor(b1, b0);
        let b1a0 = nl.and(b1, b0);
        let nb2 = nl.not(b2);
        let u_is_1 = nl.and(nb2, b1x0); // ¬b2 ∧ (b1 ⊕ b0)
        let u_is_3 = nl.and(b2, b1x0); // b2 ∧ (b1 ⊕ b0)
        let u_is_4 = nl.and(b2, b1a0); // b2 ∧ b1 ∧ b0
        let nb1a0 = nl.nor(b1, b0);
        let u_is_0 = nl.and(nb2, nb1a0);
        let t_a = nl.and(b2, nb1a0);
        let u_is_2 = nl.ao21(t_a, nb2, b1a0); // (b2∧¬b1∧¬b0) ∨ (¬b2∧b1∧b0)

        // |d| = b3 ? 4 − u : u  →  sel_k = b3 ? u==4−k : u==k.
        let sel1 = nl.mux(b3, u_is_1, u_is_3);
        let sel2 = u_is_2; // |d| = 2 ⇔ u = 2 regardless of the sign bit
        let sel3 = nl.mux(b3, u_is_3, u_is_1);
        let sel4 = nl.mux(b3, u_is_4, u_is_0);
        // neg = d < 0 = b3 ∧ (u ≠ 4) … u == 4 with b3 gives d = 0.
        let nu4 = nl.not(u_is_4);
        let neg = nl.and(b3, nu4);

        // Row bits j = 0..row_bits−1 (one's-complement form).
        let ax = |j: usize| if j < m { a[j] } else { a[m - 1] };
        let a3x = |j: usize| {
            if j < m + 2 {
                three_a[j]
            } else {
                three_a[m + 1]
            }
        };
        let mut sign_bit = c0;
        for j in 0..row_bits {
            let v1 = nl.and(sel1, ax(j));
            let v2 = if j >= 1 { nl.and(sel2, ax(j - 1)) } else { c0 };
            let v3 = nl.and(sel3, a3x(j));
            let v4 = if j >= 2 { nl.and(sel4, ax(j - 2)) } else { c0 };
            let o1 = nl.or(v1, v2);
            let o2 = nl.or(v3, v4);
            let sel = nl.or(o1, o2);
            let pp = nl.xor(sel, neg);
            let col = 3 * i + j;
            if col < width {
                matrix.push(col, pp);
            }
            if j == row_bits - 1 {
                sign_bit = pp;
            }
        }

        // Sign-extension elimination: ¬s one column above the row MSB.
        let col = 3 * i + row_bits;
        if col < width {
            let ns = nl.not(sign_bit);
            matrix.push(col, ns);
        }
        // Deferred +1 for negative digits.
        matrix.push(3 * i, neg);
    }

    // Constant correction C = (−Σᵢ 2^{3i+row_bits}) mod 2^{2m}.
    let mut correction: u128 = 0;
    for i in 0..rows {
        let e = 3 * i + row_bits;
        if e < width {
            correction = correction.wrapping_sub(1u128.wrapping_shl(e as u32));
        }
    }
    let mask: u128 = if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    correction &= mask;
    for j in 0..width {
        if (correction >> j) & 1 == 1 {
            matrix.push(j, c1);
        }
    }

    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_value_mod(nl: &Netlist, m: &BitMatrix, inputs: &[u128], bits: usize) -> u128 {
        let words: Vec<Vec<u64>> = nl
            .inputs()
            .iter()
            .zip(inputs)
            .map(|(p, &v)| {
                p.bits
                    .iter()
                    .enumerate()
                    .map(|(i, _)| ((v >> i) & 1) as u64)
                    .collect()
            })
            .collect();
        let sim = nl.simulate(&words);
        let mut acc: u128 = 0;
        for j in 0..m.width() {
            for &net in m.column(j) {
                acc = acc.wrapping_add(((sim.net(net) & 1) as u128) << j);
            }
        }
        acc & ((1 << bits) - 1)
    }

    fn check_exhaustive(m: usize) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", m);
        let b = nl.add_input("b", m);
        let mat = booth8_ppg(&mut nl, &a, &b);
        assert_eq!(mat.width(), 2 * m);
        let half = 1i64 << (m - 1);
        let full = 1i64 << m;
        for x in 0..full {
            for y in 0..full {
                let sx = if x >= half { x - full } else { x };
                let sy = if y >= half { y - full } else { y };
                let expect = ((sx * sy) as u64 & ((1u64 << (2 * m)) - 1)) as u128;
                let got = matrix_value_mod(&nl, &mat, &[x as u128, y as u128], 2 * m);
                assert_eq!(got, expect, "m={m} a={sx} b={sy}");
            }
        }
    }

    #[test]
    fn booth8_exhaustive_3x3() {
        check_exhaustive(3);
    }

    #[test]
    fn booth8_exhaustive_4x4() {
        check_exhaustive(4);
    }

    #[test]
    fn booth8_exhaustive_5x5() {
        check_exhaustive(5);
    }

    #[test]
    fn booth8_exhaustive_6x6() {
        check_exhaustive(6);
    }

    #[test]
    fn booth8_random_16x16() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let b = nl.add_input("b", 16);
        let mat = booth8_ppg(&mut nl, &a, &b);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..300 {
            let x = rng.gen::<u16>();
            let y = rng.gen::<u16>();
            let expect = (((x as i16 as i64) * (y as i16 as i64)) as u64 as u128) & 0xFFFF_FFFF;
            let got = matrix_value_mod(&nl, &mat, &[x as u128, y as u128], 32);
            assert_eq!(got, expect, "a={x:#x} b={y:#x}");
        }
    }

    #[test]
    fn booth8_matrix_is_shorter_than_booth4() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 24);
        let b = nl.add_input("b", 24);
        let m8 = booth8_ppg(&mut nl, &a, &b);
        let m4 = crate::ppg::booth4_ppg(&mut nl, &a, &b);
        assert!(m8.heights().height() < m4.heights().height());
    }
}
