//! Wallace-tree reduction schedules.
//!
//! The classic Wallace scheme: at every stage, every column groups its bits
//! into threes (each becoming a 3:2 compressor); a leftover pair becomes a
//! 2:2 compressor; a single leftover bit passes through. This reduces any
//! matrix in the minimum number of stages and is the reduction scheme
//! behind the paper's `Wal-*` and `B-Wal-*` baselines.

use crate::bcv::{min_stages, Bcv};
use crate::schedule::{CompressionSchedule, StageCounts};

/// Builds the Wallace schedule for an initial BCV.
///
/// Unlike the paper's ILP (which forbids it, Eq. 4), classic Wallace may
/// apply compressors at the leftmost column; the resulting BCV can grow by
/// one column (the product's top bit), exactly as in Fig. 1's dashed
/// rectangle.
pub fn wallace_schedule(v0: &Bcv) -> CompressionSchedule {
    let mut sched = CompressionSchedule::new();
    let mut v = v0.clone();
    while !v.is_reduced() {
        let w = v.len();
        let mut stage = StageCounts::new(w);
        for j in 0..w {
            let h = v[j];
            stage.full[j] = h / 3;
            stage.half[j] = u32::from(h % 3 == 2);
        }
        v = CompressionSchedule::apply_stage(sched.stages.len(), &stage, &v)
            .expect("wallace stage is feasible by construction");
        sched.stages.push(stage);
    }
    sched
}

/// Convenience: the Wallace stage count for an `m × m` AND-PPG multiplier,
/// which the paper fixes the ILP's `s` to.
pub fn wallace_stages_for(m: usize) -> u32 {
    min_stages(m as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_bit_first_stage_matches_hand_computation() {
        // Hand-applied Wallace stage on V0 = [1,2,3,4,5,6,5,4,3,2,1]
        // (LSB first) gives V1 = [1,1,2,3,3,4,4,4,2,2,2].
        let v0 = Bcv::and_ppg(6);
        let sched = wallace_schedule(&v0);
        let stages = sched.apply(&v0).unwrap();
        assert_eq!(stages[0].counts(), &[1, 1, 2, 3, 3, 4, 4, 4, 2, 2, 2]);
    }

    #[test]
    fn six_bit_wallace_takes_three_stages() {
        // Fig. 1 shows a 3-stage compressing process for m = 6.
        let v0 = Bcv::and_ppg(6);
        let sched = wallace_schedule(&v0);
        assert_eq!(sched.num_stages(), 3);
        let fin = sched.final_bcv(&v0).unwrap();
        assert!(fin.is_reduced());
    }

    #[test]
    fn stage_counts_match_theoretical_minimum() {
        for m in [4usize, 6, 8, 12, 16, 24, 32, 48, 64] {
            let v0 = Bcv::and_ppg(m);
            let sched = wallace_schedule(&v0);
            assert_eq!(sched.num_stages() as u32, wallace_stages_for(m), "m = {m}");
        }
    }

    #[test]
    fn full_adder_count_equals_bit_surplus() {
        // Every 3:2 removes exactly one bit; 2:2 preserves totals. So
        // F = total(V0) − total(V_s).
        for m in [4usize, 8, 16] {
            let v0 = Bcv::and_ppg(m);
            let sched = wallace_schedule(&v0);
            let fin = sched.final_bcv(&v0).unwrap();
            assert_eq!(
                sched.num_full(),
                v0.total_bits() - fin.total_bits(),
                "m = {m}"
            );
        }
    }

    #[test]
    fn works_on_booth_like_irregular_bcvs() {
        let v0 = Bcv::new(vec![3, 1, 4, 2, 5, 5, 4, 3, 2, 2]);
        let sched = wallace_schedule(&v0);
        let fin = sched.final_bcv(&v0).unwrap();
        assert!(fin.is_reduced());
        assert_eq!(sched.num_full(), v0.total_bits() - fin.total_bits());
    }

    #[test]
    fn already_reduced_matrix_needs_no_stages() {
        let v0 = Bcv::new(vec![1, 2, 2, 1]);
        let sched = wallace_schedule(&v0);
        assert_eq!(sched.num_stages(), 0);
    }
}
