//! Partial product generators.
//!
//! Two PPG families from the paper:
//!
//! * [`and_ppg`] — the unsigned AND-gate array (`pp(i,j) = aᵢ·bⱼ`), whose
//!   BCV is `[1, 2, …, m, …, 2, 1]`;
//! * [`booth4_ppg`] — the signed radix-4 modified-Booth-encoding (MBE)
//!   array with the standard sign-extension elimination: each row carries
//!   its inverted sign bit one column above its MSB plus a compile-time
//!   constant correction pattern, and the two's-complement `+1` of negative
//!   digits is deferred into the matrix as a `neg` bit at the row's LSB
//!   column.
//!
//! Both return a [`BitMatrix`] whose column-weighted sum equals the product
//! (mod `2^width`), which the tests verify by simulation.

use crate::bitmatrix::BitMatrix;
use gomil_netlist::{NetId, Netlist};

/// Which partial product generator a multiplier uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PpgKind {
    /// Unsigned AND-gate array.
    #[default]
    And,
    /// Signed radix-4 modified Booth encoding.
    Booth4,
    /// Signed radix-8 Booth encoding (hard ±3A multiple).
    Booth8,
    /// Signed Baugh-Wooley AND-style array.
    BaughWooley,
}

impl PpgKind {
    /// Every PPG family, in report order.
    pub fn all() -> [PpgKind; 4] {
        [
            PpgKind::And,
            PpgKind::Booth4,
            PpgKind::Booth8,
            PpgKind::BaughWooley,
        ]
    }

    /// Parses a [`label`](Self::label) or common alias (case-insensitive):
    /// `and`, `mbe`/`booth`/`booth4`, `mbe8`/`booth8`, `bw`/`baugh-wooley`.
    pub fn from_name(name: &str) -> Option<PpgKind> {
        match name.to_ascii_lowercase().as_str() {
            "and" => Some(PpgKind::And),
            "mbe" | "booth" | "booth4" => Some(PpgKind::Booth4),
            "mbe8" | "booth8" => Some(PpgKind::Booth8),
            "bw" | "baugh-wooley" | "baughwooley" => Some(PpgKind::BaughWooley),
            _ => None,
        }
    }

    /// Human-readable short name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PpgKind::And => "AND",
            PpgKind::Booth4 => "MBE",
            PpgKind::Booth8 => "MBE8",
            PpgKind::BaughWooley => "BW",
        }
    }

    /// Whether products are two's-complement (vs. unsigned).
    pub fn is_signed(self) -> bool {
        !matches!(self, PpgKind::And)
    }
}

/// Builds the AND-array partial products of an unsigned `a × b` multiplier.
///
/// The result has `a.len() + b.len() − 1` columns; its weighted sum equals
/// the full product exactly (no wraparound).
///
/// # Panics
///
/// Panics if either operand is empty.
pub fn and_ppg(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> BitMatrix {
    assert!(!a.is_empty() && !b.is_empty(), "operands must be non-empty");
    let mut m = BitMatrix::new(a.len() + b.len() - 1);
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = nl.and(ai, bj);
            m.push(i + j, pp);
        }
    }
    m
}

/// Builds radix-4 MBE partial products of a **signed** `m × m` multiplier
/// (`m` even). The matrix has `2m` columns and its weighted sum equals
/// `a · b mod 2^{2m}` (two's complement).
///
/// # Panics
///
/// Panics if the operands differ in width, are narrower than 2 bits, or
/// have odd width.
pub fn booth4_ppg(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> BitMatrix {
    let m = a.len();
    assert_eq!(m, b.len(), "operands must have equal width");
    assert!(m >= 2, "word length must be at least 2");
    assert!(
        m.is_multiple_of(2),
        "radix-4 Booth supports even word lengths"
    );

    let rows = m / 2;
    let width = 2 * m;
    let mut matrix = BitMatrix::new(width);
    let c0 = nl.const0();
    let c1 = nl.const1();

    for i in 0..rows {
        let b_hi = b[2 * i + 1];
        let b_mid = b[2 * i];
        let b_lo = if i == 0 { c0 } else { b[2 * i - 1] };

        // Booth digit d = −2·b_hi + b_mid + b_lo ∈ {−2,…,2}.
        let one = nl.xor(b_mid, b_lo); // |d| = 1
        let hi_ne_mid = nl.xor(b_hi, b_mid);
        let not_one = nl.not(one);
        let two = nl.and(hi_ne_mid, not_one); // |d| = 2
        let mid_and_lo = nl.and(b_mid, b_lo);
        let not_ml = nl.not(mid_and_lo);
        let neg = nl.and(b_hi, not_ml); // d < 0

        // Row bits j = 0..=m (one's-complement form; +1 deferred as `neg`).
        let mut sign_bit = c0;
        for j in 0..=m {
            let aj = if j < m { a[j] } else { a[m - 1] };
            let ajm1 = if j == 0 { c0 } else { a[j - 1] };
            let t1 = nl.and(one, aj);
            let sel = nl.ao21(t1, two, ajm1);
            let pp = nl.xor(sel, neg);
            let col = 2 * i + j;
            if col < width {
                matrix.push(col, pp);
            }
            if j == m {
                sign_bit = pp;
            }
        }

        // Sign-extension elimination: ¬s at column (2i + m + 1).
        let col = 2 * i + m + 1;
        if col < width {
            let ns = nl.not(sign_bit);
            matrix.push(col, ns);
        }

        // Deferred two's-complement +1 for negative digits.
        matrix.push(2 * i, neg);
    }

    // Constant correction C = (−Σᵢ 2^{2i+m+1}) mod 2^{2m}.
    let mut correction: u128 = 0;
    for i in 0..rows {
        let e = 2 * i + m + 1;
        if e < width {
            correction = correction.wrapping_sub(1u128.wrapping_shl(e as u32));
        }
    }
    let mask: u128 = if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    correction &= mask;
    for j in 0..width {
        if (correction >> j) & 1 == 1 {
            matrix.push(j, c1);
        }
    }

    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Computes the weighted column sum of a matrix for lane 0 of a
    /// simulation, mod 2^width.
    fn matrix_value(nl: &Netlist, m: &BitMatrix, inputs: &[u128]) -> u128 {
        matrix_value_masked(nl, m, inputs, None)
    }

    /// Like `matrix_value` but reduced mod 2^mask_bits (for two's-complement
    /// matrices whose sum is only meaningful modulo the product width).
    fn matrix_value_masked(
        nl: &Netlist,
        m: &BitMatrix,
        inputs: &[u128],
        mask_bits: Option<usize>,
    ) -> u128 {
        let words: Vec<Vec<u64>> = nl
            .inputs()
            .iter()
            .zip(inputs)
            .map(|(p, &v)| {
                p.bits
                    .iter()
                    .enumerate()
                    .map(|(i, _)| ((v >> i) & 1) as u64)
                    .collect()
            })
            .collect();
        let sim = nl.simulate(&words);
        let mut acc: u128 = 0;
        for j in 0..m.width() {
            for &net in m.column(j) {
                acc = acc.wrapping_add(((sim.net(net) & 1) as u128) << j);
            }
        }
        match mask_bits {
            Some(w) if w < 128 => acc & ((1 << w) - 1),
            _ => acc,
        }
    }

    #[test]
    fn and_ppg_exhaustive_4x4() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 4);
        let b = nl.add_input("b", 4);
        let m = and_ppg(&mut nl, &a, &b);
        assert_eq!(m.width(), 7);
        assert_eq!(m.heights().counts(), &[1, 2, 3, 4, 3, 2, 1]);
        for x in 0..16u128 {
            for y in 0..16u128 {
                assert_eq!(matrix_value(&nl, &m, &[x, y]), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn and_ppg_rectangular() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 5);
        let b = nl.add_input("b", 3);
        let m = and_ppg(&mut nl, &a, &b);
        assert_eq!(m.width(), 7);
        for x in 0..32u128 {
            for y in 0..8u128 {
                assert_eq!(matrix_value(&nl, &m, &[x, y]), x * y);
            }
        }
    }

    #[test]
    fn booth4_exhaustive_4x4_signed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 4);
        let b = nl.add_input("b", 4);
        let m = booth4_ppg(&mut nl, &a, &b);
        assert_eq!(m.width(), 8);
        for x in 0..16i64 {
            for y in 0..16i64 {
                let sx = if x >= 8 { x - 16 } else { x };
                let sy = if y >= 8 { y - 16 } else { y };
                let expect = ((sx * sy) as u64 & 0xFF) as u128;
                let got = matrix_value_masked(&nl, &m, &[x as u128, y as u128], Some(m.width()));
                assert_eq!(got, expect, "a={sx} b={sy}");
            }
        }
    }

    #[test]
    fn booth4_exhaustive_6x6_signed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 6);
        let b = nl.add_input("b", 6);
        let m = booth4_ppg(&mut nl, &a, &b);
        for x in 0..64i64 {
            for y in 0..64i64 {
                let sx = if x >= 32 { x - 64 } else { x };
                let sy = if y >= 32 { y - 64 } else { y };
                let expect = ((sx * sy) as u64 & 0xFFF) as u128;
                let got = matrix_value_masked(&nl, &m, &[x as u128, y as u128], Some(m.width()));
                assert_eq!(got, expect, "a={sx} b={sy}");
            }
        }
    }

    #[test]
    fn booth4_random_16x16_signed() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let b = nl.add_input("b", 16);
        let m = booth4_ppg(&mut nl, &a, &b);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..300 {
            let x = rng.gen::<u16>();
            let y = rng.gen::<u16>();
            let expect = ((x as i16 as i64) * (y as i16 as i64)) as u64 as u128 & 0xFFFF_FFFF;
            let got = matrix_value_masked(&nl, &m, &[x as u128, y as u128], Some(m.width()));
            assert_eq!(got, expect, "a={x:#x} b={y:#x}");
        }
    }

    #[test]
    fn booth_matrix_is_shorter_than_and_matrix() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let b = nl.add_input("b", 16);
        let and_m = and_ppg(&mut nl, &a, &b);
        let booth_m = booth4_ppg(&mut nl, &a, &b);
        assert!(booth_m.heights().height() < and_m.heights().height());
    }

    #[test]
    #[should_panic(expected = "even word lengths")]
    fn booth4_rejects_odd_width() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 5);
        let b = nl.add_input("b", 5);
        booth4_ppg(&mut nl, &a, &b);
    }

    #[test]
    fn every_label_parses_back_to_its_kind() {
        for kind in PpgKind::all() {
            assert_eq!(PpgKind::from_name(kind.label()), Some(kind));
            assert_eq!(PpgKind::from_name(&kind.label().to_lowercase()), Some(kind));
        }
        assert_eq!(PpgKind::from_name("booth"), Some(PpgKind::Booth4));
        assert_eq!(PpgKind::from_name("nonesuch"), None);
    }
}
