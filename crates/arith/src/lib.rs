//! # gomil-arith — multiplier front-end substrate
//!
//! Everything between a multiplier's operands and its final two-row matrix:
//!
//! * [`Bcv`] — bit count vectors, the abstraction the paper's CT ILP works
//!   on, plus the Wallace stage-count sequence 2, 3, 4, 6, 9, 13, …;
//! * [`BitMatrix`] — the symbolic matrix of actual wires;
//! * partial product generators: unsigned [AND arrays](and_ppg) and signed
//!   [radix-4 modified Booth](booth4_ppg) with sign-extension elimination;
//! * [`CompressionSchedule`] — per-stage/per-column 3:2 and 2:2 compressor
//!   counts (the `f`/`h` unknowns of the CT ILP) with validation;
//! * [Wallace](wallace_schedule) and [Dadda](dadda_schedule) schedule
//!   generators (the baselines, and the ILP warm start);
//! * [`realize_schedule`] — turns a schedule into gates, earliest-arrival
//!   first.
//!
//! ## Example: a verified 4-bit Wallace reduction
//!
//! ```
//! use gomil_arith::{and_ppg, realize_schedule, wallace_schedule};
//! use gomil_netlist::Netlist;
//!
//! # fn main() -> Result<(), gomil_arith::ScheduleError> {
//! let mut nl = Netlist::new("mul4");
//! let a = nl.add_input("a", 4);
//! let b = nl.add_input("b", 4);
//! let pp = and_ppg(&mut nl, &a, &b);
//! let sched = wallace_schedule(&pp.heights());
//! let reduced = realize_schedule(&mut nl, &pp, &sched)?;
//! assert!(reduced.heights().is_reduced());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baugh_wooley;
mod bcv;
mod bitmatrix;
mod booth8;
mod dadda;
mod ppg;
mod realize;
mod schedule;
mod steer;
mod wallace;

pub use baugh_wooley::baugh_wooley_ppg;
pub use bcv::{min_stages, wallace_height_bound, Bcv};
pub use bitmatrix::BitMatrix;
pub use booth8::booth8_ppg;
pub use dadda::dadda_schedule;
pub use ppg::{and_ppg, booth4_ppg, PpgKind};
pub use realize::realize_schedule;
pub use schedule::{CompressionSchedule, ScheduleError, StageCounts};
pub use steer::{
    required_stages, required_stages_modular, schedule_toward_target,
    schedule_toward_target_modular, try_required_stages,
};
pub use wallace::{wallace_schedule, wallace_stages_for};
