//! Target-steered reduction schedules.
//!
//! [`schedule_toward_target`] generalizes Dadda: intermediate stages
//! follow the height bounds, while the final stage consumes columns down
//! to a requested 1/2 profile where bit availability and same-stage
//! carries permit — always respecting the paper's Eq. (4) (no compressor
//! at the leftmost column, so the BCV length never grows).
//!
//! [`required_stages`] returns the smallest stage count for which a full
//! reduction under that rule exists. For AND-array matrices this equals
//! the Wallace stage count; some Booth-style profiles need one extra stage
//! because their top column may not absorb an incoming carry while
//! holding more than one bit.

use crate::bcv::{min_stages, wallace_height_bound, Bcv};
use crate::schedule::{CompressionSchedule, StageCounts};

/// Builds a compression schedule that steers the final BCV toward
/// `target` (entries 1 or 2) within `s` stages. Intermediate stages follow
/// Dadda height bounds; the final stage consumes columns exactly down to
/// the target where bit availability and same-stage carries permit.
///
/// Returns `None` when the matrix cannot be reduced to height ≤ 2 in `s`
/// stages this way. The *achieved* BCV may differ from `target` where a
/// same-stage carry makes height 1 impossible; callers re-read it from the
/// schedule.
pub fn schedule_toward_target(
    v0: &Bcv,
    s: usize,
    target: &[u32],
) -> Option<(CompressionSchedule, Bcv)> {
    steer(v0, s, target, false)
}

/// Like [`schedule_toward_target`] but *modular*: compressors may be
/// applied at the leftmost column, growing the BCV by one column per
/// stage if carries demand it. Sound whenever the matrix width equals the
/// full product width (Booth and Baugh-Wooley matrices are `2m` wide), as
/// the extra column's weight is `2^{2m} ≡ 0` and gets truncated. Some
/// Booth radix-8 profiles are unreducible under the strict rule and need
/// this.
pub fn schedule_toward_target_modular(
    v0: &Bcv,
    s: usize,
    target: &[u32],
) -> Option<(CompressionSchedule, Bcv)> {
    steer(v0, s, target, true)
}

fn steer(v0: &Bcv, s: usize, target: &[u32], modular: bool) -> Option<(CompressionSchedule, Bcv)> {
    let mut sched = CompressionSchedule::new();
    let mut v = v0.clone();
    for stage_no in 1..=s {
        let remaining = s - stage_no; // stages after this one
        let bound = wallace_height_bound(remaining as u32) as u32;
        let w = v.len();
        let mut stage = StageCounts::new(w);
        let mut carry_in = 0u32;
        for j in 0..w {
            // Column goal: Dadda bound, sharpened to the exact target on
            // the last stage. The leftmost column never hosts compressors
            // (Eq. 4) so the BCV length stays fixed.
            let goal = if remaining == 0 {
                target.get(j).copied().unwrap_or(2).clamp(1, 2)
            } else {
                bound.max(target.get(j).copied().unwrap_or(2))
            };
            let mut height = v[j] + carry_in;
            let mut f = 0u32;
            let mut h = 0u32;
            if j + 1 < w || modular {
                while height > goal && 3 * (f + 1) <= v[j] && height >= goal + 2 {
                    f += 1;
                    height -= 2;
                }
                while height > goal && 3 * f + 2 * (h + 1) <= v[j] {
                    h += 1;
                    height -= 1;
                }
            }
            stage.full[j] = f;
            stage.half[j] = h;
            carry_in = f + h;
        }
        v = CompressionSchedule::apply_stage(sched.stages.len(), &stage, &v).ok()?;
        sched.stages.push(stage);
    }
    if !v.is_reduced() || v.iter().any(|c| c == 0) {
        return None;
    }
    Some((sched, v))
}

/// The smallest stage count that can fully reduce `v0` under the strict
/// no-leftmost-compressor rule (Eq. 4), or `None` when no such reduction
/// exists at all — e.g. a Booth radix-8 profile whose top column cannot
/// absorb the carry a taller neighbour must emit.
pub fn try_required_stages(v0: &Bcv) -> Option<usize> {
    let base = min_stages(v0.height()) as usize;
    let all2 = vec![2u32; v0.len()];
    (base..=base + 4)
        .find(|&s| v0.is_reduced() || schedule_toward_target(v0, s.max(1), &all2).is_some())
}

/// The smallest stage count that can fully reduce `v0` under the strict
/// no-leftmost-compressor rule; at least the Wallace stage count.
///
/// # Panics
///
/// Panics if no strict reduction exists (see [`try_required_stages`]).
pub fn required_stages(v0: &Bcv) -> usize {
    try_required_stages(v0).unwrap_or_else(|| panic!("no leftmost-free schedule exists for {v0}"))
}

/// The smallest stage count that fully reduces `v0` when leftmost-column
/// compressors (and the resulting width growth) are allowed — always
/// exists.
///
/// # Panics
///
/// Panics only on internal inconsistency (the modular rule can always
/// reduce within `min_stages + 5`).
pub fn required_stages_modular(v0: &Bcv) -> usize {
    let base = min_stages(v0.height()) as usize;
    let all2 = vec![2u32; v0.len() + 8];
    (base..=base + 5)
        .find(|&s| v0.is_reduced() || schedule_toward_target_modular(v0, s.max(1), &all2).is_some())
        .unwrap_or_else(|| panic!("modular reduction failed for {v0} (internal error)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_ppg_needs_exactly_wallace_stages() {
        for m in [4usize, 8, 16, 32, 64] {
            let v0 = Bcv::and_ppg(m);
            assert_eq!(required_stages(&v0) as u32, min_stages(m as u32), "m={m}");
        }
    }

    #[test]
    fn top_column_of_height_three_is_strictly_unreducible() {
        // A top column of height 3 can never be compressed under Eq. 4 —
        // no stage count helps; only the modular rule reduces it.
        let v0 = Bcv::new(vec![3, 3, 3]);
        assert_eq!(try_required_stages(&v0), None);
        let s = required_stages_modular(&v0);
        let all2 = vec![2u32; 8];
        let (sched, vs) = schedule_toward_target_modular(&v0, s, &all2).unwrap();
        assert!(vs.is_reduced());
        assert_eq!(sched.final_bcv(&v0).unwrap(), vs);
    }

    #[test]
    fn reduced_matrices_need_zero_stages() {
        assert_eq!(required_stages(&Bcv::new(vec![1, 2, 2])), 0);
    }

    #[test]
    fn strictly_unreducible_profile_is_detected_and_modular_handles_it() {
        // Top column height 2 next to a height-3 column: any compressor at
        // the neighbour pushes the top to 3, which may never be compressed
        // under Eq. 4 — strictly unreducible.
        // LSB-first; the top (last) column holds 2 bits next to a
        // height-3 column — the profile the radix-8 Booth PPG emits at
        // m = 6.
        let v0 = Bcv::new(vec![2, 1, 1, 3, 2, 2, 2, 2, 2, 3, 2, 2]);
        assert_eq!(try_required_stages(&v0), None);
        let s = required_stages_modular(&v0);
        let all2 = vec![2u32; v0.len() + 4];
        let (sched, vs) = schedule_toward_target_modular(&v0, s, &all2).unwrap();
        assert!(vs.is_reduced());
        assert_eq!(sched.final_bcv(&v0).unwrap(), vs);
        assert!(vs.len() > v0.len(), "width must have grown");
    }
}
