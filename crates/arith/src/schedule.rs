//! Compression schedules.
//!
//! A [`CompressionSchedule`] records, for every stage and column, how many
//! 3:2 and 2:2 compressors are applied — exactly the `f(i,j)` / `h(i,j)`
//! unknowns of the paper's CT ILP (Eqs. 2–9). Schedules come from three
//! sources: the Wallace generator, the Dadda generator, and the ILP
//! solution; all three are validated and realized through the same code.

use crate::bcv::Bcv;
use std::error::Error;
use std::fmt;

/// Compressor counts for one stage (indexed by column of the incoming BCV).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageCounts {
    /// 3:2 compressors (full adders) per column.
    pub full: Vec<u32>,
    /// 2:2 compressors (half adders) per column.
    pub half: Vec<u32>,
}

impl StageCounts {
    /// An all-zero stage over `width` columns.
    pub fn new(width: usize) -> StageCounts {
        StageCounts {
            full: vec![0; width],
            half: vec![0; width],
        }
    }

    fn full_at(&self, j: usize) -> u32 {
        self.full.get(j).copied().unwrap_or(0)
    }

    fn half_at(&self, j: usize) -> u32 {
        self.half.get(j).copied().unwrap_or(0)
    }
}

/// A multi-stage compressor-tree schedule.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompressionSchedule {
    /// Per-stage compressor counts; stage `i` applies to the BCV produced
    /// by stage `i − 1` (or the initial BCV for stage 0).
    pub stages: Vec<StageCounts>,
}

/// Why a schedule is invalid for a given BCV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// Offending stage (0-based).
    pub stage: usize,
    /// Offending column.
    pub col: usize,
    /// Bits demanded by the compressors at that column.
    pub demanded: u32,
    /// Bits actually available.
    pub available: u32,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {} column {}: compressors need {} bits but only {} available",
            self.stage, self.col, self.demanded, self.available
        )
    }
}

impl Error for ScheduleError {}

impl CompressionSchedule {
    /// An empty schedule (no stages).
    pub fn new() -> CompressionSchedule {
        CompressionSchedule { stages: Vec::new() }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total 3:2 compressor count (`F` in the paper).
    pub fn num_full(&self) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| s.full.iter())
            .map(|&x| x as u64)
            .sum()
    }

    /// Total 2:2 compressor count (`H` in the paper).
    pub fn num_half(&self) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| s.half.iter())
            .map(|&x| x as u64)
            .sum()
    }

    /// The ILP objective `α·F + β·H` (Eq. 2); the paper uses α=3, β=2.
    pub fn cost(&self, alpha: f64, beta: f64) -> f64 {
        alpha * self.num_full() as f64 + beta * self.num_half() as f64
    }

    /// Applies one stage to a BCV, following Eq. (7): each 3:2 at column
    /// `j` removes two bits there and adds one at `j+1`; each 2:2 removes
    /// one and adds one at `j+1`. A carry out of the top column extends the
    /// BCV by one column.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if some column demands more input bits
    /// than it has (violating Eq. 6).
    pub fn apply_stage(
        stage_idx: usize,
        stage: &StageCounts,
        v: &Bcv,
    ) -> Result<Bcv, ScheduleError> {
        let w = v.len();
        let mut out: Vec<u32> = Vec::with_capacity(w + 1);
        for j in 0..w {
            let f = stage.full_at(j);
            let h = stage.half_at(j);
            let demanded = 3 * f + 2 * h;
            if demanded > v[j] {
                return Err(ScheduleError {
                    stage: stage_idx,
                    col: j,
                    demanded,
                    available: v[j],
                });
            }
            let carry_in = if j > 0 {
                stage.full_at(j - 1) + stage.half_at(j - 1)
            } else {
                0
            };
            out.push(v[j] - 2 * f - h + carry_in);
        }
        let top_carry = stage.full_at(w - 1) + stage.half_at(w - 1);
        if top_carry > 0 {
            out.push(top_carry);
        }
        Ok(out.into_iter().collect())
    }

    /// Applies the whole schedule, returning every intermediate BCV
    /// (`[V₁, …, V_s]` in paper notation).
    ///
    /// # Errors
    ///
    /// See [`apply_stage`](Self::apply_stage).
    pub fn apply(&self, v0: &Bcv) -> Result<Vec<Bcv>, ScheduleError> {
        let mut out = Vec::with_capacity(self.stages.len());
        let mut cur = v0.clone();
        for (i, stage) in self.stages.iter().enumerate() {
            cur = Self::apply_stage(i, stage, &cur)?;
            out.push(cur.clone());
        }
        Ok(out)
    }

    /// Applies the schedule and returns only the final BCV.
    ///
    /// # Errors
    ///
    /// See [`apply_stage`](Self::apply_stage).
    pub fn final_bcv(&self, v0: &Bcv) -> Result<Bcv, ScheduleError> {
        Ok(self.apply(v0)?.pop().unwrap_or_else(|| v0.clone()))
    }

    /// Whether any stage applies a compressor at the leftmost column of its
    /// incoming BCV — the case the paper's ILP forbids (Eq. 4) to keep the
    /// BCV length fixed at `2m − 1`.
    pub fn uses_leftmost_column(&self, v0: &Bcv) -> bool {
        // Width can only grow via a top-column carry, which itself requires
        // a leftmost-column compressor, so the width stays v0.len() until
        // the first violation.
        let w = v0.len();
        self.stages
            .iter()
            .any(|s| s.full_at(w - 1) + s.half_at(w - 1) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_full_adder_moves_bits() {
        // V = [3, 1]: one FA at column 0 -> [1, 2].
        let v = Bcv::new(vec![3, 1]);
        let mut st = StageCounts::new(2);
        st.full[0] = 1;
        let out = CompressionSchedule::apply_stage(0, &st, &v).unwrap();
        assert_eq!(out.counts(), &[1, 2]);
    }

    #[test]
    fn half_adder_keeps_total_bits() {
        let v = Bcv::new(vec![2, 0]);
        let mut st = StageCounts::new(2);
        st.half[0] = 1;
        let out = CompressionSchedule::apply_stage(0, &st, &v).unwrap();
        assert_eq!(out.counts(), &[1, 1]);
        assert_eq!(out.total_bits(), v.total_bits());
    }

    #[test]
    fn full_adder_removes_exactly_one_bit_total() {
        let v = Bcv::new(vec![3, 3, 1]);
        let mut st = StageCounts::new(3);
        st.full[0] = 1;
        st.full[1] = 1;
        let out = CompressionSchedule::apply_stage(0, &st, &v).unwrap();
        assert_eq!(out.total_bits(), v.total_bits() - 2);
    }

    #[test]
    fn top_column_carry_extends_width() {
        let v = Bcv::new(vec![0, 3]);
        let mut st = StageCounts::new(2);
        st.full[1] = 1;
        let out = CompressionSchedule::apply_stage(0, &st, &v).unwrap();
        assert_eq!(out.counts(), &[0, 1, 1]);
    }

    #[test]
    fn over_subscription_is_an_error() {
        let v = Bcv::new(vec![2, 0]);
        let mut st = StageCounts::new(2);
        st.full[0] = 1; // needs 3 bits, only 2 present
        let err = CompressionSchedule::apply_stage(0, &st, &v).unwrap_err();
        assert_eq!(err.col, 0);
        assert_eq!(err.demanded, 3);
        assert_eq!(err.available, 2);
        assert!(err.to_string().contains("column 0"));
    }

    #[test]
    fn cost_uses_paper_weights() {
        let mut sched = CompressionSchedule::new();
        let mut st = StageCounts::new(3);
        st.full[0] = 2;
        st.half[1] = 3;
        sched.stages.push(st);
        assert_eq!(sched.num_full(), 2);
        assert_eq!(sched.num_half(), 3);
        assert_eq!(sched.cost(3.0, 2.0), 12.0);
    }

    #[test]
    fn leftmost_column_detection() {
        let v = Bcv::new(vec![1, 3]);
        let mut sched = CompressionSchedule::new();
        let mut st = StageCounts::new(2);
        st.full[1] = 1;
        sched.stages.push(st);
        assert!(sched.uses_leftmost_column(&v));
        let mut sched2 = CompressionSchedule::new();
        let mut st2 = StageCounts::new(2);
        st2.half[0] = 0;
        sched2.stages.push(st2);
        assert!(!sched2.uses_leftmost_column(&v));
    }
}
