//! Bit count vectors (BCVs).
//!
//! A BCV models a bit matrix by the number of bits in each column
//! (Section III-A of the paper). Column 0 is the least-significant column.

use std::fmt;
use std::ops::Index;

/// Bit count vector: `v[j]` is the number of partial-product bits with
/// weight `2^j`.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bcv(Vec<u32>);

impl Bcv {
    /// Creates a BCV from explicit column counts (LSB first).
    pub fn new(counts: Vec<u32>) -> Bcv {
        Bcv(counts)
    }

    /// The BCV of an AND-gate PPG for an `m × m` multiplier:
    /// `[1, 2, …, m−1, m, m−1, …, 1]` (length `2m − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    pub fn and_ppg(m: usize) -> Bcv {
        assert!(m >= 2, "multiplier word length must be at least 2");
        let mut v = Vec::with_capacity(2 * m - 1);
        for j in 0..2 * m - 1 {
            v.push((m.min(j + 1).min(2 * m - 1 - j)) as u32);
        }
        Bcv(v)
    }

    /// The BCV of a rectangular `m × n` AND-gate PPG (length `m + n − 1`).
    ///
    /// # Panics
    ///
    /// Panics if either operand width is zero.
    pub fn and_ppg_rect(m: usize, n: usize) -> Bcv {
        assert!(m >= 1 && n >= 1, "operand widths must be positive");
        let mut v = Vec::with_capacity(m + n - 1);
        for j in 0..m + n - 1 {
            v.push((m.min(n).min(j + 1).min(m + n - 1 - j)) as u32);
        }
        Bcv(v)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the BCV has no columns.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Maximum column height.
    pub fn height(&self) -> u32 {
        self.0.iter().copied().max().unwrap_or(0)
    }

    /// Total number of bits across all columns.
    pub fn total_bits(&self) -> u64 {
        self.0.iter().map(|&c| c as u64).sum()
    }

    /// Column counts as a slice (LSB first).
    pub fn counts(&self) -> &[u32] {
        &self.0
    }

    /// Mutable column counts.
    pub fn counts_mut(&mut self) -> &mut [u32] {
        &mut self.0
    }

    /// Whether every column is reduced to at most two bits (ready for the
    /// final carry-propagation adder).
    pub fn is_reduced(&self) -> bool {
        self.0.iter().all(|&c| c <= 2)
    }

    /// Iterates over column counts (LSB first).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }
}

impl Index<usize> for Bcv {
    type Output = u32;
    fn index(&self, j: usize) -> &u32 {
        &self.0[j]
    }
}

impl fmt::Display for Bcv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper convention: most significant column on the left.
        write!(f, "[")?;
        for (k, c) in self.0.iter().rev().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<u32> for Bcv {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Bcv {
        Bcv(iter.into_iter().collect())
    }
}

/// Maximum starting height that a Wallace-style reduction can bring down to
/// two rows in `k` stages: `c₀ = 2`, `cₖ₊₁ = ⌊3·cₖ/2⌋`
/// (2, 3, 4, 6, 9, 13, 19, 28, 42, 63, 94, …).
pub fn wallace_height_bound(stages: u32) -> u64 {
    let mut c: u64 = 2;
    for _ in 0..stages {
        c = c * 3 / 2;
    }
    c
}

/// Minimum number of compression stages needed to reduce a bit matrix of
/// the given maximum height to two rows. This is the Wallace/Dadda stage
/// count the paper fixes `s` to (Section III-A).
pub fn min_stages(height: u32) -> u32 {
    let mut k = 0;
    while wallace_height_bound(k) < height as u64 {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_ppg_matches_paper_shape() {
        // Fig. 1: 6-bit multiplier, V0 = [1,2,3,4,5,6,5,4,3,2,1].
        let v = Bcv::and_ppg(6);
        assert_eq!(v.counts(), &[1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1]);
        assert_eq!(v.len(), 11);
        assert_eq!(v.height(), 6);
        assert_eq!(v.total_bits(), 36); // m²
    }

    #[test]
    fn and_ppg_total_is_m_squared() {
        for m in 2..=64 {
            assert_eq!(Bcv::and_ppg(m).total_bits(), (m * m) as u64);
        }
    }

    #[test]
    fn rect_ppg_generalizes_square() {
        assert_eq!(Bcv::and_ppg_rect(6, 6), Bcv::and_ppg(6));
        let v = Bcv::and_ppg_rect(4, 2);
        assert_eq!(v.counts(), &[1, 2, 2, 2, 1]);
        assert_eq!(v.total_bits(), 8);
    }

    #[test]
    fn stage_counts_match_known_values() {
        // Dadda sequence: heights 2,3,4,6,9,13,19,28,42,63,94.
        assert_eq!(min_stages(2), 0);
        assert_eq!(min_stages(3), 1);
        assert_eq!(min_stages(4), 2);
        assert_eq!(min_stages(6), 3); // Fig. 1: 6-bit Wallace has 3 stages
        assert_eq!(min_stages(8), 4);
        assert_eq!(min_stages(16), 6);
        assert_eq!(min_stages(32), 8);
        assert_eq!(min_stages(64), 10);
    }

    #[test]
    fn display_uses_msb_first_paper_convention() {
        let v = Bcv::new(vec![1, 2, 3]);
        assert_eq!(v.to_string(), "[3, 2, 1]");
    }

    #[test]
    fn is_reduced_detects_final_bcv() {
        assert!(Bcv::new(vec![1, 2, 2, 1]).is_reduced());
        assert!(!Bcv::new(vec![1, 3]).is_reduced());
    }
}
