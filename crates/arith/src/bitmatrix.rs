//! Symbolic bit matrices of netlist wires.
//!
//! Where a [`Bcv`](crate::Bcv) only counts bits, a [`BitMatrix`] holds the
//! actual nets: column `j` contains the wires of weight `2^j`. The partial
//! product generators produce one, the compressor-tree realizer consumes
//! and re-emits them, and the final two rows feed the CPA.

use crate::bcv::Bcv;
use gomil_netlist::NetId;

/// A matrix of nets grouped by binary weight (column 0 = LSB).
#[derive(Debug, Clone, Default)]
pub struct BitMatrix {
    cols: Vec<Vec<NetId>>,
}

impl BitMatrix {
    /// An empty matrix with `width` columns.
    pub fn new(width: usize) -> BitMatrix {
        BitMatrix {
            cols: vec![Vec::new(); width],
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Adds a bit of weight `2^col`, growing the matrix if needed.
    pub fn push(&mut self, col: usize, net: NetId) {
        if col >= self.cols.len() {
            self.cols.resize(col + 1, Vec::new());
        }
        self.cols[col].push(net);
    }

    /// The nets in column `col` (empty slice when out of range).
    pub fn column(&self, col: usize) -> &[NetId] {
        self.cols.get(col).map(|c| c.as_slice()).unwrap_or(&[])
    }

    /// Mutable access to a column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column_mut(&mut self, col: usize) -> &mut Vec<NetId> {
        &mut self.cols[col]
    }

    /// Column heights as a BCV.
    pub fn heights(&self) -> Bcv {
        self.cols.iter().map(|c| c.len() as u32).collect()
    }

    /// Total number of bits.
    pub fn total_bits(&self) -> usize {
        self.cols.iter().map(|c| c.len()).sum()
    }

    /// Extracts the two CPA operand rows from a matrix reduced to height
    /// ≤ 2: returns `(row_a, row_b)` where columns with a single bit
    /// contribute that bit to `row_a` and `None` to `row_b`.
    ///
    /// # Panics
    ///
    /// Panics if any column has more than two bits.
    pub fn two_rows(&self) -> (Vec<Option<NetId>>, Vec<Option<NetId>>) {
        let mut a = Vec::with_capacity(self.width());
        let mut b = Vec::with_capacity(self.width());
        for (j, col) in self.cols.iter().enumerate() {
            assert!(
                col.len() <= 2,
                "column {j} has {} bits; matrix is not reduced",
                col.len()
            );
            a.push(col.first().copied());
            b.push(col.get(1).copied());
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomil_netlist::Netlist;

    #[test]
    fn push_grows_and_heights_track() {
        let mut n = Netlist::new("t");
        let bits = n.add_input("a", 4);
        let mut m = BitMatrix::new(2);
        m.push(0, bits[0]);
        m.push(3, bits[1]);
        m.push(3, bits[2]);
        assert_eq!(m.width(), 4);
        assert_eq!(m.heights().counts(), &[1, 0, 0, 2]);
        assert_eq!(m.total_bits(), 3);
    }

    #[test]
    fn two_rows_splits_columns() {
        let mut n = Netlist::new("t");
        let bits = n.add_input("a", 3);
        let mut m = BitMatrix::new(2);
        m.push(0, bits[0]);
        m.push(1, bits[1]);
        m.push(1, bits[2]);
        let (a, b) = m.two_rows();
        assert_eq!(a, vec![Some(bits[0]), Some(bits[1])]);
        assert_eq!(b, vec![None, Some(bits[2])]);
    }

    #[test]
    #[should_panic(expected = "not reduced")]
    fn two_rows_rejects_tall_columns() {
        let mut n = Netlist::new("t");
        let bits = n.add_input("a", 3);
        let mut m = BitMatrix::new(1);
        for b in bits {
            m.push(0, b);
        }
        let _ = m.two_rows();
    }
}
