//! Compressor-tree realization: schedule → gates.
//!
//! The ILP (or Wallace/Dadda generator) decides *how many* compressors each
//! stage applies per column; this module decides *which wires* they consume
//! and instantiates the adder cells. Bits are consumed earliest-arrival
//! first (recomputing static timing before each stage), the standard policy
//! that keeps the realized critical path close to the stage bound.

use crate::bitmatrix::BitMatrix;
use crate::schedule::{CompressionSchedule, ScheduleError, StageCounts};
use gomil_netlist::Netlist;

/// Realizes a compression schedule on a bit matrix, returning the final
/// (height ≤ 2, if the schedule is complete) matrix.
///
/// # Errors
///
/// Returns [`ScheduleError`] if a stage demands more bits in a column than
/// the matrix holds.
pub fn realize_schedule(
    nl: &mut Netlist,
    matrix: &BitMatrix,
    schedule: &CompressionSchedule,
) -> Result<BitMatrix, ScheduleError> {
    let mut cur = matrix.clone();
    for (i, stage) in schedule.stages.iter().enumerate() {
        cur = realize_stage(nl, &cur, stage, i)?;
    }
    Ok(cur)
}

fn realize_stage(
    nl: &mut Netlist,
    matrix: &BitMatrix,
    stage: &StageCounts,
    stage_idx: usize,
) -> Result<BitMatrix, ScheduleError> {
    let timing = nl.timing();
    let w = matrix.width();
    let mut next = BitMatrix::new(w);
    for j in 0..w {
        let f = stage.full.get(j).copied().unwrap_or(0) as usize;
        let h = stage.half.get(j).copied().unwrap_or(0) as usize;
        let available = matrix.column(j).len();
        if 3 * f + 2 * h > available {
            return Err(ScheduleError {
                stage: stage_idx,
                col: j,
                demanded: (3 * f + 2 * h) as u32,
                available: available as u32,
            });
        }
        // Earliest-arrival-first assignment.
        let mut bits: Vec<_> = matrix.column(j).to_vec();
        bits.sort_by(|a, b| {
            timing
                .arrival(*a)
                .partial_cmp(&timing.arrival(*b))
                .expect("arrival times are finite")
        });
        let mut it = bits.into_iter();
        for _ in 0..f {
            let a = it.next().expect("checked availability");
            let b = it.next().expect("checked availability");
            let c = it.next().expect("checked availability");
            let (sum, carry) = nl.full_adder(a, b, c);
            next.push(j, sum);
            next.push(j + 1, carry);
        }
        for _ in 0..h {
            let a = it.next().expect("checked availability");
            let b = it.next().expect("checked availability");
            let (sum, carry) = nl.half_adder(a, b);
            next.push(j, sum);
            next.push(j + 1, carry);
        }
        for rest in it {
            next.push(j, rest);
        }
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcv::Bcv;
    use crate::dadda::dadda_schedule;
    use crate::ppg::and_ppg;
    use crate::wallace::wallace_schedule;

    /// Builds a complete unsigned multiplier (PPG + CT + ripple CPA over the
    /// final two rows) and checks products against native arithmetic.
    fn check_multiplier(m: usize, use_dadda: bool) {
        let mut nl = Netlist::new(format!("mul{m}"));
        let a = nl.add_input("a", m);
        let b = nl.add_input("b", m);
        let pp = and_ppg(&mut nl, &a, &b);
        let v0 = pp.heights();
        let sched = if use_dadda {
            dadda_schedule(&v0)
        } else {
            wallace_schedule(&v0)
        };
        let reduced = realize_schedule(&mut nl, &pp, &sched).unwrap();
        assert_eq!(reduced.heights(), sched.final_bcv(&v0).unwrap());

        // Naive final CPA: ripple across the two rows.
        let (ra, rb) = reduced.two_rows();
        let zero = nl.const0();
        let mut carry = zero;
        let mut out = Vec::new();
        for j in 0..reduced.width() {
            let x = ra[j].unwrap_or(zero);
            let y = rb[j].unwrap_or(zero);
            let (s, c) = nl.full_adder(x, y, carry);
            out.push(s);
            carry = c;
        }
        out.push(carry);
        nl.add_output("p", out);

        if m <= 5 {
            for x in 0..(1u128 << m) {
                for y in 0..(1u128 << m) {
                    let p = nl.eval_ints(&[x, y], "p");
                    assert_eq!(p & ((1 << (2 * m)) - 1), x * y, "{x}*{y}");
                }
            }
        } else {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..200 {
                let x = rng.gen_range(0..(1u128 << m));
                let y = rng.gen_range(0..(1u128 << m));
                let p = nl.eval_ints(&[x, y], "p");
                assert_eq!(p & ((1 << (2 * m)) - 1), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn wallace_multiplier_4_bit_exhaustive() {
        check_multiplier(4, false);
    }

    #[test]
    fn dadda_multiplier_4_bit_exhaustive() {
        check_multiplier(4, true);
    }

    #[test]
    fn wallace_multiplier_8_bit_random() {
        check_multiplier(8, false);
    }

    #[test]
    fn dadda_multiplier_16_bit_random() {
        check_multiplier(16, true);
    }

    #[test]
    fn realization_rejects_invalid_schedule() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 2);
        let b = nl.add_input("b", 2);
        let pp = and_ppg(&mut nl, &a, &b);
        let mut sched = CompressionSchedule::new();
        let mut st = StageCounts::new(3);
        st.full[0] = 1; // column 0 has 1 bit
        sched.stages.push(st);
        let err = realize_schedule(&mut nl, &pp, &sched).unwrap_err();
        assert_eq!(err.col, 0);
    }

    #[test]
    fn realized_heights_track_schedule_bcvs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 6);
        let b = nl.add_input("b", 6);
        let pp = and_ppg(&mut nl, &a, &b);
        let v0 = pp.heights();
        assert_eq!(v0, Bcv::and_ppg(6));
        let sched = wallace_schedule(&v0);
        let mut cur = pp.clone();
        for (i, bcv) in sched.apply(&v0).unwrap().iter().enumerate() {
            cur = realize_stage(&mut nl, &cur, &sched.stages[i], i).unwrap();
            // Realized width may lag the BCV when no top carry exists.
            let realized = cur.heights();
            for j in 0..bcv.len() {
                let rj = if j < realized.len() { realized[j] } else { 0 };
                assert_eq!(rj, bcv[j], "stage {i} column {j}");
            }
        }
    }
}
