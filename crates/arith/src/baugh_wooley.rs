//! Baugh-Wooley signed multiplication (modified form).
//!
//! The classic way to build a **signed** multiplier from an AND-style
//! array without Booth recoding: partial products touching exactly one
//! sign bit are complemented (NAND instead of AND) and two constant 1 bits
//! are injected at columns `m` and `2m−1`:
//!
//! `a·b = Σ_{i,j<m−1} aᵢbⱼ2^{i+j} + 2^{m−1}·Σ_{j<m−1} ¬(a_{m−1}bⱼ)·2^j
//!       + 2^{m−1}·Σ_{i<m−1} ¬(aᵢb_{m−1})·2^i + a_{m−1}b_{m−1}·2^{2m−2}
//!       + 2^m + 2^{2m−1}  (mod 2^{2m})`
//!
//! It keeps the AND array's regular matrix shape (useful for the CT ILP)
//! while producing two's-complement products — a natural extension partner
//! for GOMIL-AND when signed semantics are needed.

use crate::bitmatrix::BitMatrix;
use gomil_netlist::{NetId, Netlist};

/// Builds the modified Baugh-Wooley partial products of a **signed**
/// `m × m` multiplier. The matrix has `2m` columns; its weighted sum
/// equals `a · b mod 2^{2m}` (two's complement).
///
/// # Panics
///
/// Panics if the operands differ in width or `m < 2`.
pub fn baugh_wooley_ppg(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> BitMatrix {
    let m = a.len();
    assert_eq!(m, b.len(), "operands must have equal width");
    assert!(m >= 2, "word length must be at least 2");
    let width = 2 * m;
    let mut matrix = BitMatrix::new(width);
    let c1 = nl.const1();

    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let both_sign = i == m - 1 && j == m - 1;
            let one_sign = (i == m - 1) ^ (j == m - 1);
            let pp = if one_sign {
                nl.nand(ai, bj)
            } else {
                nl.and(ai, bj)
            };
            let _ = both_sign; // both-sign term keeps the plain AND
            matrix.push(i + j, pp);
        }
    }
    matrix.push(m, c1);
    matrix.push(2 * m - 1, c1);
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_value_mod(nl: &Netlist, m: &BitMatrix, inputs: &[u128], bits: usize) -> u128 {
        let words: Vec<Vec<u64>> = nl
            .inputs()
            .iter()
            .zip(inputs)
            .map(|(p, &v)| {
                p.bits
                    .iter()
                    .enumerate()
                    .map(|(i, _)| ((v >> i) & 1) as u64)
                    .collect()
            })
            .collect();
        let sim = nl.simulate(&words);
        let mut acc: u128 = 0;
        for j in 0..m.width() {
            for &net in m.column(j) {
                acc = acc.wrapping_add(((sim.net(net) & 1) as u128) << j);
            }
        }
        acc & ((1 << bits) - 1)
    }

    fn check_exhaustive(m: usize) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", m);
        let b = nl.add_input("b", m);
        let mat = baugh_wooley_ppg(&mut nl, &a, &b);
        let half = 1i64 << (m - 1);
        let full = 1i64 << m;
        for x in 0..full {
            for y in 0..full {
                let sx = if x >= half { x - full } else { x };
                let sy = if y >= half { y - full } else { y };
                let expect = ((sx * sy) as u64 & ((1u64 << (2 * m)) - 1)) as u128;
                let got = matrix_value_mod(&nl, &mat, &[x as u128, y as u128], 2 * m);
                assert_eq!(got, expect, "m={m} a={sx} b={sy}");
            }
        }
    }

    #[test]
    fn baugh_wooley_exhaustive_2_to_6() {
        for m in 2..=6 {
            check_exhaustive(m);
        }
    }

    #[test]
    fn baugh_wooley_random_12x12() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 12);
        let b = nl.add_input("b", 12);
        let mat = baugh_wooley_ppg(&mut nl, &a, &b);
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..300 {
            let x = (rng.gen::<u16>() & 0xFFF) as i64;
            let y = (rng.gen::<u16>() & 0xFFF) as i64;
            let sx = if x >= 2048 { x - 4096 } else { x };
            let sy = if y >= 2048 { y - 4096 } else { y };
            let expect = ((sx * sy) as u64 & 0xFF_FFFF) as u128;
            let got = matrix_value_mod(&nl, &mat, &[x as u128, y as u128], 24);
            assert_eq!(got, expect, "a={sx} b={sy}");
        }
    }

    #[test]
    fn baugh_wooley_keeps_the_and_array_shape() {
        // Same column heights as the unsigned AND array, plus the two
        // constant bits — the regular matrix shape the CT ILP likes.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let b = nl.add_input("b", 8);
        let bw = baugh_wooley_ppg(&mut nl, &a, &b);
        let and = crate::ppg::and_ppg(&mut nl, &a, &b);
        for j in 0..and.heights().len() {
            let extra = u32::from(j == 8) + u32::from(j == 15);
            assert_eq!(bw.heights()[j], and.heights()[j] + extra, "col {j}");
        }
    }
}
