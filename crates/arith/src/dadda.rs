//! Dadda-tree reduction schedules.
//!
//! Dadda reduction is the "as late and as little as possible" counterpart
//! of Wallace: stage `k` only reduces columns down to the next height
//! target `c_{s-1-k}` from the sequence 2, 3, 4, 6, 9, 13, … and therefore
//! uses close to the minimum number of compressors. The GOMIL CT ILP's
//! optimum can never be worse than Dadda's cost, which makes this module
//! both a baseline and the ILP warm start.

use crate::bcv::{min_stages, wallace_height_bound, Bcv};
use crate::schedule::{CompressionSchedule, StageCounts};

/// Builds the Dadda schedule for an initial BCV.
pub fn dadda_schedule(v0: &Bcv) -> CompressionSchedule {
    let mut sched = CompressionSchedule::new();
    let s = min_stages(v0.height());
    let mut v = v0.clone();
    for k in (0..s).rev() {
        let target = wallace_height_bound(k) as u32;
        v = dadda_stage(&mut sched, &v, target);
    }
    // Irregular BCVs can leave a column above 2 when a target was capped by
    // bit availability (a stage's compressors may only consume the bits the
    // column actually holds, Eq. 6); regular multiplier BCVs never hit this.
    while !v.is_reduced() {
        v = dadda_stage(&mut sched, &v, 2);
    }
    sched
}

/// Plans and applies one Dadda stage reducing output heights toward
/// `target`; returns the resulting BCV.
fn dadda_stage(sched: &mut CompressionSchedule, v: &Bcv, target: u32) -> Bcv {
    let w = v.len();
    let mut stage = StageCounts::new(w);
    // Process columns LSB→MSB. Carries produced at column j−1 land in the
    // *output* of column j, so they raise the height the compressors at j
    // must bring down but cannot themselves be consumed this stage.
    let mut carry_in = 0u32;
    for j in 0..w {
        let mut height = v[j] + carry_in;
        let mut f = 0u32;
        let mut h = 0u32;
        while height > target && 3 * (f + 1) <= v[j] {
            if height == target + 1 {
                break; // prefer a half adder for the final single step
            }
            f += 1;
            height -= 2;
        }
        // Shave any remaining excess with half adders, within availability.
        while height > target && 3 * f + 2 * (h + 1) <= v[j] {
            h += 1;
            height -= 1;
        }
        stage.full[j] = f;
        stage.half[j] = h;
        carry_in = f + h;
    }
    let out = CompressionSchedule::apply_stage(sched.stages.len(), &stage, v)
        .expect("dadda stage respects per-column bit availability");
    sched.stages.push(stage);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dadda_reduces_to_two_rows_in_min_stages() {
        for m in [4usize, 6, 8, 16, 32, 64] {
            let v0 = Bcv::and_ppg(m);
            let sched = dadda_schedule(&v0);
            let fin = sched.final_bcv(&v0).unwrap();
            assert!(fin.is_reduced(), "m = {m}: {fin}");
            assert_eq!(sched.num_stages() as u32, min_stages(m as u32), "m = {m}");
        }
    }

    #[test]
    fn dadda_uses_no_more_compressors_than_wallace() {
        for m in [6usize, 8, 16, 32] {
            let v0 = Bcv::and_ppg(m);
            let dadda = dadda_schedule(&v0);
            let wallace = crate::wallace::wallace_schedule(&v0);
            assert!(
                dadda.cost(3.0, 2.0) <= wallace.cost(3.0, 2.0),
                "m = {m}: dadda {} vs wallace {}",
                dadda.cost(3.0, 2.0),
                wallace.cost(3.0, 2.0)
            );
        }
    }

    #[test]
    fn known_dadda_counts_for_8_bit() {
        // Dadda's classical result for an 8×8 multiplier: 35 full adders
        // and 7 half adders (48 bits reduced to 13 over 4 stages).
        let v0 = Bcv::and_ppg(8);
        let sched = dadda_schedule(&v0);
        assert_eq!(sched.num_full(), 35);
        assert_eq!(sched.num_half(), 7);
    }

    #[test]
    fn intermediate_heights_respect_dadda_targets() {
        let v0 = Bcv::and_ppg(16);
        let sched = dadda_schedule(&v0);
        let stages = sched.apply(&v0).unwrap();
        let s = stages.len() as u32;
        for (i, bcv) in stages.iter().enumerate() {
            let target = wallace_height_bound(s - 1 - i as u32) as u32;
            assert!(
                bcv.height() <= target,
                "stage {i}: height {} exceeds target {target}",
                bcv.height()
            );
        }
    }

    #[test]
    fn irregular_bcv_is_handled() {
        let v0 = Bcv::new(vec![2, 4, 7, 7, 6, 5, 5, 3, 1]);
        let sched = dadda_schedule(&v0);
        let fin = sched.final_bcv(&v0).unwrap();
        assert!(fin.is_reduced());
    }
}
