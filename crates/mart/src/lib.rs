//! # gomil-mart — a precomputed design mart for zero-solve serving
//!
//! `BENCH_serve.json` puts warm-cache serving four orders of magnitude
//! above cold solving, so the scaling answer for the hot part of the
//! (m, PPG kind, config) lattice is to make warmth the default: sweep the
//! lattice through the full solver/ladder/verify pipeline **offline**,
//! persist the certified outcomes in a versioned, checksummed store, and
//! let [`SolveService`](gomil_serve::SolveService) consult that store
//! before the LRU cache and the solver. A mart-covered request is then a
//! hash-plus-key-compare lookup — zero solver invocations, zero admission
//! permits — and solver capacity is reserved for the long tail. This is
//! the design-library amortization move (Arm RTL-Books style): pay for
//! exact ILP solves once, serve them forever.
//!
//! ## On-disk format (version 1, little-endian)
//!
//! The layout is memory-map friendly — fixed-width header, fixed-width
//! sorted index, offset-addressed records — though this dependency-free,
//! `forbid(unsafe_code)` implementation reads the file eagerly:
//!
//! ```text
//! header   48 B   magic "GOMLMART" | format u32 | solver_version u32 |
//!                 count u64 | index_off u64 | records_off u64 |
//!                 FNV-1a(bytes 0..40) u64
//! index    count × 32 B, sorted by (hash, key):
//!                 key hash u64 | record_off u64 | record_len u64 |
//!                 FNV-1a(hash_le ‖ record bytes) u64
//! records  key_len u32 | canonical key | line_len u32 |
//!                 ServeOutcome TSV line | entry_solver_version u32
//! ```
//!
//! Entries are keyed by the **full canonical [`SolveKey`] string** — the
//! 64-bit hash in the index only places an entry, the key compare decides
//! identity, so a hash collision (or a forged index) can never serve the
//! wrong design. The per-entry checksum covers the stored hash *and* the
//! record bytes, so a single flipped bit anywhere in an index slot or its
//! record drops exactly that entry at load. Loading is tolerant
//! (truncated or corrupt entries are skipped, mirroring the cache v2
//! loader); writing is atomic (temp file + fsync + rename).
//!
//! ## Refresh semantics
//!
//! Every entry records the `solver_version` that produced it. An
//! incremental refresh (`gomil mart build --refresh`) re-solves only
//! entries whose recorded solver version is older than the current one or
//! whose verdict tier is below what the current verify mode could certify
//! — everything else is carried over byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gomil_serve::{fnv1a_64, DesignStore, ServeOutcome, SolveKey, VerdictTier};
use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::Path;

/// Magic bytes opening every mart file.
pub const MAGIC: &[u8; 8] = b"GOMLMART";
/// On-disk format version this crate reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Header size in bytes.
const HEADER_LEN: usize = 48;
/// Index slot size in bytes.
const SLOT_LEN: usize = 32;

fn u32_at(bytes: &[u8], off: usize) -> Option<u32> {
    Some(u32::from_le_bytes(
        bytes.get(off..off + 4)?.try_into().ok()?,
    ))
}

fn u64_at(bytes: &[u8], off: usize) -> Option<u64> {
    Some(u64::from_le_bytes(
        bytes.get(off..off + 8)?.try_into().ok()?,
    ))
}

/// The checksum guarding one index slot and its record: the stored hash
/// is folded in so a flipped bit in the *index* (not just the record) is
/// also caught.
fn entry_checksum(hash: u64, record: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(8 + record.len());
    buf.extend_from_slice(&hash.to_le_bytes());
    buf.extend_from_slice(record);
    fnv1a_64(&buf)
}

/// One loaded mart entry.
#[derive(Debug, Clone)]
struct MartEntry {
    /// Index hash (normally `fnv1a_64(key)`; a forged index can differ —
    /// placement only, never identity).
    hash: u64,
    key: String,
    outcome: ServeOutcome,
    solver_version: u32,
}

/// A read-only, loaded design mart. Implements
/// [`DesignStore`] so it can be attached to a `SolveService` via
/// `with_mart`.
#[derive(Debug, Default)]
pub struct Mart {
    solver_version: u32,
    /// Sorted by `(hash, key)` for binary-search lookup.
    entries: Vec<MartEntry>,
    skipped: usize,
}

/// Point-in-time summary of a mart, printed by `gomil mart stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MartStats {
    /// Entries served.
    pub entries: usize,
    /// Corrupt or truncated entries skipped at load.
    pub skipped: usize,
    /// Solver version recorded in the header.
    pub solver_version: u32,
    /// Entries whose recorded solver version is older than `current`.
    pub stale: usize,
    /// Entries per verdict tier `[proved, tested, skipped, failed]`.
    pub verdicts: [usize; 4],
    /// Smallest and largest multiplier width covered (0,0 when empty).
    pub m_range: (usize, usize),
}

/// Per-file integrity audit, printed by `gomil mart verify`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries whose checksum, record encoding and outcome line all check
    /// out and whose index hash equals the FNV of their key.
    pub ok: usize,
    /// Entries dropped for a checksum/bounds/encoding failure.
    pub corrupt: usize,
    /// Well-formed entries whose index hash does *not* equal the FNV of
    /// their stored key (a forged or bit-rotted index): still served
    /// safely (the key compare is authoritative) but worth flagging.
    pub hash_mismatch: usize,
}

impl VerifyReport {
    /// Whether the file is pristine.
    pub fn clean(&self) -> bool {
        self.corrupt == 0 && self.hash_mismatch == 0
    }
}

impl Mart {
    /// Loads a mart file. Tolerant like the cache loader: truncated or
    /// corrupt entries are *skipped*, never fatal — only a file that
    /// positively is not a mart (wrong magic on a non-truncated prefix,
    /// or an unknown format version) errors.
    pub fn load(path: &Path) -> io::Result<Mart> {
        let bytes = std::fs::read(path)?;
        Mart::from_bytes(&bytes)
    }

    /// [`load`](Self::load) from an in-memory image.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Mart> {
        // Wrong magic = positively not a mart file; a short prefix *of*
        // the magic is indistinguishable from a torn header and loads as
        // an empty mart instead.
        let magic_len = bytes.len().min(MAGIC.len());
        if bytes[..magic_len] != MAGIC[..magic_len] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a gomil mart file (bad magic)",
            ));
        }
        if bytes.len() < HEADER_LEN {
            return Ok(Mart::default()); // torn header: nothing trustworthy
        }
        let stored = u64_at(bytes, 40).expect("header length checked");
        if fnv1a_64(&bytes[..40]) != stored {
            return Ok(Mart::default()); // torn/corrupt header fields
        }
        let format = u32_at(bytes, 8).expect("header length checked");
        if format != FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported mart format version {format}"),
            ));
        }
        let solver_version = u32_at(bytes, 12).expect("header length checked");
        let count = u64_at(bytes, 16).expect("header length checked") as usize;
        let index_off = u64_at(bytes, 24).expect("header length checked") as usize;

        let mut entries = Vec::with_capacity(count.min(1 << 20));
        let mut skipped = 0usize;
        for i in 0..count {
            let Some(slot) = index_off
                .checked_add(i * SLOT_LEN)
                .filter(|&s| s + SLOT_LEN <= bytes.len())
            else {
                // Index truncated: everything from here on is gone.
                skipped += count - i;
                break;
            };
            match Self::load_entry(bytes, slot) {
                Some(entry) => entries.push(entry),
                None => skipped += 1,
            }
        }
        // The writer sorts by (hash, key); re-sort defensively so lookup
        // stays correct even against a shuffled index.
        entries.sort_by(|a, b| (a.hash, a.key.as_str()).cmp(&(b.hash, b.key.as_str())));
        Ok(Mart {
            solver_version,
            entries,
            skipped,
        })
    }

    fn load_entry(bytes: &[u8], slot: usize) -> Option<MartEntry> {
        let hash = u64_at(bytes, slot)?;
        let record_off = u64_at(bytes, slot + 8)? as usize;
        let record_len = u64_at(bytes, slot + 16)? as usize;
        let checksum = u64_at(bytes, slot + 24)?;
        let record = bytes.get(record_off..record_off.checked_add(record_len)?)?;
        if entry_checksum(hash, record) != checksum {
            return None;
        }
        let key_len = u32_at(record, 0)? as usize;
        let key = std::str::from_utf8(record.get(4..4 + key_len)?).ok()?;
        let line_len = u32_at(record, 4 + key_len)? as usize;
        let line_off = 8 + key_len;
        let line = std::str::from_utf8(record.get(line_off..line_off + line_len)?).ok()?;
        let solver_version = u32_at(record, line_off + line_len)?;
        let outcome = ServeOutcome::from_line(line)?;
        Some(MartEntry {
            hash,
            key: key.to_string(),
            outcome,
            solver_version,
        })
    }

    /// Entries skipped at load because they were truncated or corrupt.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Solver version recorded in the mart header.
    pub fn solver_version(&self) -> u32 {
        self.solver_version
    }

    /// Iterates `(canonical key, entry solver version, outcome)` in
    /// `(hash, key)` order — the refresh builder walks this to decide
    /// which entries to carry over and which to re-solve.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u32, &ServeOutcome)> {
        self.entries
            .iter()
            .map(|e| (e.key.as_str(), e.solver_version, &e.outcome))
    }

    /// First index position whose hash is `hash`.
    fn hash_start(&self, hash: u64) -> usize {
        self.entries.partition_point(|e| e.hash < hash)
    }

    /// Summarizes the mart against the `current` solver version.
    pub fn stats(&self, current: u32) -> MartStats {
        let mut verdicts = [0usize; 4];
        let mut stale = 0usize;
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for e in &self.entries {
            let idx = match e.outcome.verdict {
                VerdictTier::Proved => 0,
                VerdictTier::Tested => 1,
                VerdictTier::Skipped => 2,
                VerdictTier::Failed => 3,
            };
            verdicts[idx] += 1;
            if e.solver_version < current {
                stale += 1;
            }
            lo = lo.min(e.outcome.m);
            hi = hi.max(e.outcome.m);
        }
        MartStats {
            entries: self.entries.len(),
            skipped: self.skipped,
            solver_version: self.solver_version,
            stale,
            verdicts,
            m_range: if self.entries.is_empty() {
                (0, 0)
            } else {
                (lo, hi)
            },
        }
    }

    /// Strict integrity audit of a mart file: re-checks every checksum
    /// and record encoding and flags index hashes that do not match the
    /// FNV of their key.
    pub fn verify_file(path: &Path) -> io::Result<VerifyReport> {
        let bytes = std::fs::read(path)?;
        let mart = Mart::from_bytes(&bytes)?;
        let mut report = VerifyReport {
            corrupt: mart.skipped,
            ..VerifyReport::default()
        };
        for e in &mart.entries {
            if e.hash == fnv1a_64(e.key.as_bytes()) {
                report.ok += 1;
            } else {
                report.hash_mismatch += 1;
            }
        }
        Ok(report)
    }
}

impl DesignStore for Mart {
    fn get(&self, key: &SolveKey) -> Option<ServeOutcome> {
        let hash = key.hash64();
        self.entries[self.hash_start(hash)..]
            .iter()
            .take_while(|e| e.hash == hash)
            .find(|e| e.key == key.canonical())
            .map(|e| e.outcome.clone())
    }

    fn find_by_hash(&self, hash: u64) -> Option<(String, ServeOutcome)> {
        self.entries[self.hash_start(hash)..]
            .iter()
            .take_while(|e| e.hash == hash)
            .map(|e| (e.key.clone(), e.outcome.clone()))
            .next()
    }

    fn find_by_hash_checked(
        &self,
        hash: u64,
        expected_key: Option<&str>,
    ) -> Option<(String, ServeOutcome)> {
        self.entries[self.hash_start(hash)..]
            .iter()
            .take_while(|e| e.hash == hash)
            .find(|e| expected_key.is_none_or(|k| k == e.key))
            .map(|e| (e.key.clone(), e.outcome.clone()))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Accumulates entries and writes a mart file atomically.
#[derive(Debug)]
pub struct MartBuilder {
    solver_version: u32,
    /// key → (index hash, outcome TSV line, entry solver version).
    /// Keyed by canonical key so re-inserting a key replaces the entry.
    entries: BTreeMap<String, (u64, String, u32)>,
}

impl MartBuilder {
    /// A builder stamping `solver_version` into the header and (by
    /// default) into each entry.
    pub fn new(solver_version: u32) -> MartBuilder {
        MartBuilder {
            solver_version,
            entries: BTreeMap::new(),
        }
    }

    /// Inserts (or replaces) the outcome for `key`, stamped with the
    /// builder's solver version.
    pub fn insert(&mut self, key: &SolveKey, outcome: &ServeOutcome) {
        self.insert_with_version(key, outcome, self.solver_version);
    }

    /// [`insert`](Self::insert) with an explicit per-entry solver version
    /// — the refresh path uses this to carry old entries over without
    /// re-stamping them.
    pub fn insert_with_version(&mut self, key: &SolveKey, outcome: &ServeOutcome, version: u32) {
        self.entries.insert(
            key.canonical().to_string(),
            (key.hash64(), outcome.to_line(), version),
        );
    }

    /// Test/audit escape hatch: stores `outcome` under an *arbitrary*
    /// index hash, allowing a forced hash collision (two keys, one hash)
    /// that real FNV inputs cannot practically produce. Readers must stay
    /// correct anyway: the index hash only places an entry, the key
    /// compare decides identity.
    pub fn insert_raw(&mut self, hash: u64, canonical: &str, outcome: &ServeOutcome, version: u32) {
        self.entries
            .insert(canonical.to_string(), (hash, outcome.to_line(), version));
    }

    /// Entries accumulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries were inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the mart image (header + sorted index + records).
    pub fn to_bytes(&self) -> Vec<u8> {
        // Sort by (hash, key) — the lookup order.
        let mut sorted: Vec<(&String, &(u64, String, u32))> = self.entries.iter().collect();
        sorted.sort_by(|a, b| (a.1 .0, a.0.as_str()).cmp(&(b.1 .0, b.0.as_str())));

        let count = sorted.len();
        let records_off = HEADER_LEN + count * SLOT_LEN;
        let mut index = Vec::with_capacity(count * SLOT_LEN);
        let mut records = Vec::new();
        for (key, (hash, line, version)) in sorted {
            let mut record = Vec::with_capacity(12 + key.len() + line.len());
            record.extend_from_slice(&(key.len() as u32).to_le_bytes());
            record.extend_from_slice(key.as_bytes());
            record.extend_from_slice(&(line.len() as u32).to_le_bytes());
            record.extend_from_slice(line.as_bytes());
            record.extend_from_slice(&version.to_le_bytes());
            index.extend_from_slice(&hash.to_le_bytes());
            index.extend_from_slice(&((records_off + records.len()) as u64).to_le_bytes());
            index.extend_from_slice(&(record.len() as u64).to_le_bytes());
            index.extend_from_slice(&entry_checksum(*hash, &record).to_le_bytes());
            records.extend_from_slice(&record);
        }

        let mut out = Vec::with_capacity(records_off + records.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.solver_version.to_le_bytes());
        out.extend_from_slice(&(count as u64).to_le_bytes());
        out.extend_from_slice(&(HEADER_LEN as u64).to_le_bytes());
        out.extend_from_slice(&(records_off as u64).to_le_bytes());
        let header_sum = fnv1a_64(&out[..40]);
        out.extend_from_slice(&header_sum.to_le_bytes());
        out.extend_from_slice(&index);
        out.extend_from_slice(&records);
        out
    }

    /// Writes the mart atomically — temp file in the same directory,
    /// flushed and fsynced, then renamed over `path` — so a crash
    /// mid-write can never tear an existing mart. Returns the entry count.
    pub fn write(&self, path: &Path) -> io::Result<usize> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = self.write_to_tmp(&tmp, path);
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    fn write_to_tmp(&self, tmp: &Path, path: &Path) -> io::Result<usize> {
        let bytes = self.to_bytes();
        let mut file = std::fs::File::create(tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        std::fs::rename(tmp, path)?;
        Ok(self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomil_serve::{DesignMetrics, PpgKind};

    fn outcome(m: usize, ppg: PpgKind) -> ServeOutcome {
        ServeOutcome {
            name: format!("M-{}-{}", ppg.label(), m),
            m,
            ppg,
            metrics: DesignMetrics {
                area: m as f64 * 3.5,
                delay: 2.25,
                power: 1.5,
            },
            gates: 4 * m,
            verified: true,
            strategy: "target-search".into(),
            objective: m as f64 * 3.5,
            degraded: false,
            vs_counts: vec![2; 2 * m - 1],
            solver_nodes: 100 + m as u64,
            solver_lp_iters: 4_000,
            solver_gap: 0.0,
            solver_warm_attempts: 9,
            solver_warm_hits: 7,
            solver_refactors: 3,
            verdict: VerdictTier::Proved,
            verify_vectors: 65_536,
            verify_us: 1_200,
            root_us: 800,
            root_lp_iters: 55,
            cuts_added: 2,
            improvements: vec![(100, m as f64 * 4.0), (900, m as f64 * 3.5)],
        }
    }

    fn sample_builder() -> (MartBuilder, Vec<(SolveKey, ServeOutcome)>) {
        let mut b = MartBuilder::new(3);
        let mut expected = Vec::new();
        for (m, ppg) in [
            (4, PpgKind::And),
            (4, PpgKind::Booth4),
            (8, PpgKind::And),
            (8, PpgKind::BaughWooley),
        ] {
            let key = SolveKey::new(m, ppg, "w=8;test");
            let o = outcome(m, ppg);
            b.insert(&key, &o);
            expected.push((key, o));
        }
        (b, expected)
    }

    #[test]
    fn roundtrip_is_byte_exact() {
        let (b, expected) = sample_builder();
        let mart = Mart::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(mart.len(), 4);
        assert_eq!(mart.skipped(), 0);
        assert_eq!(mart.solver_version(), 3);
        for (key, o) in &expected {
            assert_eq!(mart.get(key).as_ref(), Some(o), "exact for {key}");
            let (canonical, found) = mart.find_by_hash(key.hash64()).unwrap();
            assert_eq!(canonical, key.canonical());
            assert_eq!(&found, o);
        }
        assert!(mart
            .get(&SolveKey::new(16, PpgKind::And, "w=8;test"))
            .is_none());
        assert!(mart.find_by_hash(0xdead_beef).is_none());
    }

    #[test]
    fn write_is_atomic_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("gomil-mart-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("designs.mart");
        let (b, expected) = sample_builder();
        assert_eq!(b.write(&path).unwrap(), 4);
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(residue.is_empty(), "temp files must be renamed away");
        let mart = Mart::load(&path).unwrap();
        assert_eq!(mart.len(), 4);
        assert_eq!(mart.get(&expected[0].0).as_ref(), Some(&expected[0].1));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Torn-write resilience, mirroring the cache v2 loader test:
    /// truncating the image at *every* byte offset must load cleanly —
    /// fewer entries, never a wrong or partial one, never a panic.
    #[test]
    fn truncation_at_every_offset_loads_cleanly_or_skips() {
        let (b, expected) = sample_builder();
        let bytes = b.to_bytes();
        for cut in 0..bytes.len() {
            let mart = match Mart::from_bytes(&bytes[..cut]) {
                Ok(m) => m,
                Err(e) => panic!("truncation at {cut} must not error: {e}"),
            };
            assert!(mart.len() <= expected.len());
            for (key, o) in &expected {
                if let Some(served) = mart.get(key) {
                    assert_eq!(&served, o, "cut at {cut}: a served entry must be exact");
                }
            }
        }
        // The untouched image still serves everything.
        assert_eq!(Mart::from_bytes(&bytes).unwrap().len(), expected.len());
    }

    /// Flipping any single byte must never change a served outcome: the
    /// affected entry is dropped (checksum) or the load errors (magic /
    /// format) — anything still served is byte-exact.
    #[test]
    fn single_byte_corruption_never_serves_a_wrong_design() {
        let (b, expected) = sample_builder();
        let bytes = b.to_bytes();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x41;
            let Ok(mart) = Mart::from_bytes(&bad) else {
                continue; // magic/format corruption: refused outright
            };
            for (key, o) in &expected {
                if let Some(served) = mart.get(key) {
                    assert_eq!(&served, o, "flip at {pos}: served entry must be exact");
                }
            }
        }
    }

    /// A forged index can place two different keys under one 64-bit hash
    /// — the scenario a real FNV collision would produce. The key compare
    /// must stay authoritative: the checked lookup returns exactly the
    /// requested design and `get` never crosses keys.
    #[test]
    fn forced_hash_collision_resolves_by_full_key() {
        let shared = 0x1234_5678_9abc_def0u64;
        let a = SolveKey::new(4, PpgKind::And, "w=8;test");
        let b_key = SolveKey::new(8, PpgKind::And, "w=8;test");
        let oa = outcome(4, PpgKind::And);
        let ob = outcome(8, PpgKind::And);
        let mut builder = MartBuilder::new(1);
        builder.insert_raw(shared, a.canonical(), &oa, 1);
        builder.insert_raw(shared, b_key.canonical(), &ob, 1);
        let mart = Mart::from_bytes(&builder.to_bytes()).unwrap();
        assert_eq!(mart.len(), 2);

        let (ka, found_a) = mart
            .find_by_hash_checked(shared, Some(a.canonical()))
            .unwrap();
        assert_eq!(ka, a.canonical());
        assert_eq!(found_a, oa);
        let (kb, found_b) = mart
            .find_by_hash_checked(shared, Some(b_key.canonical()))
            .unwrap();
        assert_eq!(kb, b_key.canonical());
        assert_eq!(found_b, ob);
        assert!(
            mart.find_by_hash_checked(shared, Some("v1;m=16;ppg=AND;w=8;test"))
                .is_none(),
            "a third key under the same hash must miss, not mis-serve"
        );
        // The unchecked lookup still returns *a* design with its true key
        // attached, so callers can detect the ambiguity.
        let (k, _) = mart.find_by_hash(shared).unwrap();
        assert!(k == a.canonical() || k == b_key.canonical());
        // `get` computes the true FNV hash, which differs from the forged
        // index hash, so by-key lookup misses rather than guessing.
        assert!(mart.get(&a).is_none());
        // The auditor flags the forged placement.
        let dir = std::env::temp_dir().join(format!("gomil-mart-forged-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("forged.mart");
        builder.write(&path).unwrap();
        let report = Mart::verify_file(&path).unwrap();
        assert_eq!(report.hash_mismatch, 2);
        assert!(!report.clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_and_verify_summarize_the_store() {
        let (mut b, _) = sample_builder();
        // One stale entry (solver version 1 < header version 3) with a
        // lower verdict tier.
        let key = SolveKey::new(12, PpgKind::And, "w=8;test");
        let mut old = outcome(12, PpgKind::And);
        old.verdict = VerdictTier::Tested;
        b.insert_with_version(&key, &old, 1);
        let mart = Mart::from_bytes(&b.to_bytes()).unwrap();
        let stats = mart.stats(3);
        assert_eq!(stats.entries, 5);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.solver_version, 3);
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.verdicts, [4, 1, 0, 0]);
        assert_eq!(stats.m_range, (4, 12));
        // Refresh iteration sees the per-entry versions.
        let stale: Vec<&str> = mart
            .entries()
            .filter(|(_, v, _)| *v < 3)
            .map(|(k, _, _)| k)
            .collect();
        assert_eq!(stale, vec![key.canonical()]);

        let dir = std::env::temp_dir().join(format!("gomil-mart-stats-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("designs.mart");
        b.write(&path).unwrap();
        let report = Mart::verify_file(&path).unwrap();
        assert_eq!(report.ok, 5);
        assert!(report.clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_magic_and_future_format_are_refused() {
        assert!(Mart::from_bytes(b"NOTAMART________").is_err());
        let (b, _) = sample_builder();
        let mut bytes = b.to_bytes();
        bytes[8] = 99; // format version
                       // Re-stamp the header checksum so only the version is "wrong".
        let sum = fnv1a_64(&bytes[..40]);
        bytes[40..48].copy_from_slice(&sum.to_le_bytes());
        let err = Mart::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("format version"));
    }
}
