//! # gomil-netlist — gate-level netlist substrate
//!
//! The GOMIL paper evaluates its multipliers with a commercial flow
//! (Design Compiler + PrimeTime on NanGate 45 nm). This crate is the
//! self-contained stand-in used by the reproduction:
//!
//! * a [`Netlist`] builder over a small [`GateKind`] cell library with
//!   NanGate-flavoured relative area/delay/load costs;
//! * 64-lane bit-parallel [simulation](Netlist::simulate) for functional
//!   verification;
//! * [static timing analysis](Netlist::critical_delay);
//! * [switching-activity power estimation](Netlist::estimate_power) and
//!   combined [`DesignMetrics`];
//! * [structural Verilog export](Netlist::to_verilog) and
//!   [sanity checks](Netlist::check);
//! * [equivalence verification](verify_multiplier) rendering a typed
//!   [`EquivVerdict`] (exhaustive up to `m = 16`, layered corner/random/
//!   structural checks beyond) — the admission gate for every design the
//!   pipeline caches or serves.
//!
//! ## Example
//!
//! ```
//! use gomil_netlist::Netlist;
//!
//! // A 4-bit ripple-carry adder.
//! let mut n = Netlist::new("rca4");
//! let a = n.add_input("a", 4);
//! let b = n.add_input("b", 4);
//! let mut carry = n.const0();
//! let mut sum = Vec::new();
//! for i in 0..4 {
//!     let (s, c) = n.full_adder(a[i], b[i], carry);
//!     sum.push(s);
//!     carry = c;
//! }
//! sum.push(carry);
//! n.add_output("sum", sum);
//!
//! assert_eq!(n.eval_ints(&[9, 8], "sum"), 17);
//! assert!(n.check().is_empty());
//! let m = n.metrics(256);
//! assert!(m.area > 0.0 && m.delay > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod gate;
mod lut;
mod metrics;
#[allow(clippy::module_inception)]
mod netlist;
mod power;
mod sim;
mod sta;
mod verify;
mod verilog;
mod verilog_parse;

pub use check::CheckIssue;
pub use gate::{delay_with_load, GateKind, REF_LOAD, SPAN_WIRE_LOAD, WIRE_LOAD};
pub use lut::LutMetrics;
pub use metrics::DesignMetrics;
pub use netlist::{Cell, NetId, Netlist, Port};
pub use power::PowerEstimate;
pub use sim::SimVectors;
pub use sta::Timing;
pub use verify::{
    verify_multiplier, Counterexample, EquivVerdict, VerdictTier, VerifyConfig, VerifyMode,
};
pub use verilog_parse::ParseVerilogError;
