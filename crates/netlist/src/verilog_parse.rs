//! Structural Verilog import (round-trip subset).
//!
//! Parses the subset of Verilog that [`Netlist::to_verilog`] emits —
//! single module, bus ports, `wire` declarations and one `assign` per
//! cell — back into a [`Netlist`]. Together with the simulator this gives
//! an export/import round-trip check: the re-imported design must behave
//! identically, which the integration tests verify for whole multipliers.

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a Verilog source could not be imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVerilogError {
    /// 1-based source line of the problem.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verilog line {}: {}", self.line, self.message)
    }
}

impl Error for ParseVerilogError {}

fn err(line: usize, message: impl Into<String>) -> ParseVerilogError {
    ParseVerilogError {
        line,
        message: message.into(),
    }
}

/// One parsed `assign` right-hand side.
#[derive(Debug, Clone, PartialEq)]
enum Rhs {
    Const(bool),
    Copy(String),
    Gate(GateKind, Vec<String>),
}

impl Netlist {
    /// Parses a module previously produced by [`Netlist::to_verilog`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseVerilogError`] on any construct outside the emitted
    /// subset (multiple modules, operators other than the gate library,
    /// undeclared identifiers, combinational cycles).
    pub fn from_verilog(src: &str) -> Result<Netlist, ParseVerilogError> {
        let mut name = String::new();
        let mut inputs: Vec<(String, usize)> = Vec::new();
        let mut outputs: Vec<(String, usize)> = Vec::new();
        let mut assigns: Vec<(usize, String, Rhs)> = Vec::new();

        for (ln, raw) in src.lines().enumerate() {
            let line = ln + 1;
            let t = raw.trim().trim_end_matches(';').trim();
            if t.is_empty() || t == "endmodule" {
                continue;
            }
            if let Some(rest) = t.strip_prefix("module ") {
                let module_name = rest.split('(').next().unwrap_or("").trim();
                if module_name.is_empty() {
                    return Err(err(line, "missing module name"));
                }
                name = module_name.to_string();
            } else if let Some(rest) = t.strip_prefix("input ") {
                inputs.push(parse_port(rest, line)?);
            } else if let Some(rest) = t.strip_prefix("output ") {
                outputs.push(parse_port(rest, line)?);
            } else if t.starts_with("wire ") {
                // Wire widths are implicit (1 bit); nothing to record.
            } else if let Some(rest) = t.strip_prefix("assign ") {
                let (lhs, rhs) = rest
                    .split_once('=')
                    .ok_or_else(|| err(line, "assign without '='"))?;
                assigns.push((line, lhs.trim().to_string(), parse_rhs(rhs.trim(), line)?));
            } else {
                return Err(err(line, format!("unsupported construct: {t}")));
            }
        }
        if name.is_empty() {
            return Err(err(1, "no module declaration found"));
        }

        let mut nl = Netlist::new(name);
        let mut nets: HashMap<String, NetId> = HashMap::new();
        for (pname, width) in &inputs {
            let bits = nl.add_input(pname.clone(), *width);
            for (i, b) in bits.into_iter().enumerate() {
                nets.insert(format!("{pname}[{i}]"), b);
            }
        }

        // Assigns arrive in the emitter's topological order, but accept any
        // order by iterating to a fixpoint.
        let mut pending: Vec<(usize, String, Rhs)> = assigns;
        let mut out_bits: HashMap<String, NetId> = HashMap::new();
        loop {
            let mut progressed = false;
            let mut next_round = Vec::new();
            for (line, lhs, rhs) in pending {
                let ready = match &rhs {
                    Rhs::Const(_) => true,
                    Rhs::Copy(a) => nets.contains_key(a),
                    Rhs::Gate(_, ins) => ins.iter().all(|i| nets.contains_key(i)),
                };
                if !ready {
                    next_round.push((line, lhs, rhs));
                    continue;
                }
                progressed = true;
                let net = match rhs {
                    Rhs::Const(true) => nl.const1(),
                    Rhs::Const(false) => nl.const0(),
                    Rhs::Copy(a) => nets[&a],
                    Rhs::Gate(kind, ins) => {
                        let in_nets: Vec<NetId> = ins.iter().map(|i| nets[i]).collect();
                        nl.gate(kind, &in_nets)
                    }
                };
                // Output-bit assign (`p[3] = …`) vs internal wire.
                if let Some((port, _)) = split_indexed(&lhs) {
                    if outputs.iter().any(|(n, _)| n == &port) {
                        out_bits.insert(lhs.clone(), net);
                        continue;
                    }
                }
                nets.insert(lhs, net);
            }
            if next_round.is_empty() {
                break;
            }
            if !progressed {
                let (line, lhs, _) = &next_round[0];
                return Err(err(
                    *line,
                    format!("unresolvable or cyclic assignment to {lhs}"),
                ));
            }
            pending = next_round;
        }

        for (pname, width) in &outputs {
            let mut bits = Vec::with_capacity(*width);
            for i in 0..*width {
                let key = format!("{pname}[{i}]");
                let bit = out_bits
                    .get(&key)
                    .or_else(|| nets.get(&key))
                    .copied()
                    .ok_or_else(|| err(0, format!("output bit {key} never assigned")))?;
                bits.push(bit);
            }
            nl.add_output(pname.clone(), bits);
        }
        Ok(nl)
    }
}

/// Parses `[hi:0] name` into `(name, width)`.
fn parse_port(rest: &str, line: usize) -> Result<(String, usize), ParseVerilogError> {
    let rest = rest.trim();
    let (range, name) = rest
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .ok_or_else(|| err(line, "port without a [msb:0] range"))?;
    let hi: usize = range
        .split(':')
        .next()
        .and_then(|h| h.trim().parse().ok())
        .ok_or_else(|| err(line, "malformed port range"))?;
    Ok((name.trim().to_string(), hi + 1))
}

fn split_indexed(s: &str) -> Option<(String, usize)> {
    let (base, idx) = s.split_once('[')?;
    let idx = idx.strip_suffix(']')?.parse().ok()?;
    Some((base.to_string(), idx))
}

/// Parses the emitted expression shapes back to gate kinds.
fn parse_rhs(rhs: &str, line: usize) -> Result<Rhs, ParseVerilogError> {
    let rhs = rhs.trim();
    match rhs {
        "1'b0" => return Ok(Rhs::Const(false)),
        "1'b1" => return Ok(Rhs::Const(true)),
        _ => {}
    }
    // Mux: `sel ? hi : lo`.
    if let Some((sel, rest)) = split_top(rhs, '?') {
        let (hi, lo) = split_top(&rest, ':').ok_or_else(|| err(line, "malformed conditional"))?;
        return Ok(Rhs::Gate(
            GateKind::Mux2,
            vec![ident(&sel, line)?, ident(&lo, line)?, ident(&hi, line)?],
        ));
    }
    // Majority: `(a & b) | (a & c) | (b & c)`.
    if rhs.matches('|').count() == 2 && rhs.matches('&').count() == 3 {
        let parts: Vec<&str> = rhs.split('|').collect();
        let mut ids = Vec::new();
        for p in &parts {
            let inner = p.trim().trim_start_matches('(').trim_end_matches(')');
            let (a, b) = inner
                .split_once('&')
                .ok_or_else(|| err(line, "malformed majority term"))?;
            ids.push((ident(a, line)?, ident(b, line)?));
        }
        let (a, b) = ids[0].clone();
        let c = ids[1].1.clone();
        return Ok(Rhs::Gate(GateKind::Maj3, vec![a, b, c]));
    }
    // AO21: `a | (b & c)`.
    if let Some((l, r)) = split_top(rhs, '|') {
        let r = r.trim();
        if r.starts_with('(') && r.contains('&') {
            let inner = r.trim_start_matches('(').trim_end_matches(')');
            let (b, c) = inner
                .split_once('&')
                .ok_or_else(|| err(line, "malformed and-or"))?;
            if !l.contains(['&', '|', '^', '~']) {
                return Ok(Rhs::Gate(
                    GateKind::Ao21,
                    vec![ident(&l, line)?, ident(b, line)?, ident(c, line)?],
                ));
            }
        }
        if !l.contains(['&', '^']) && !r.contains(['&', '^', '(']) {
            return Ok(Rhs::Gate(
                GateKind::Or2,
                vec![ident(&l, line)?, ident(r, line)?],
            ));
        }
    }
    // Inverted forms.
    if let Some(inner) = rhs.strip_prefix("~(") {
        let inner = inner
            .strip_suffix(')')
            .ok_or_else(|| err(line, "unbalanced ~()"))?;
        for (op, kind) in [
            ('&', GateKind::Nand2),
            ('|', GateKind::Nor2),
            ('^', GateKind::Xnor2),
        ] {
            if let Some((a, b)) = inner.split_once(op) {
                return Ok(Rhs::Gate(kind, vec![ident(a, line)?, ident(b, line)?]));
            }
        }
        return Err(err(line, "unrecognized inverted expression"));
    }
    if let Some(a) = rhs.strip_prefix('~') {
        return Ok(Rhs::Gate(GateKind::Not, vec![ident(a, line)?]));
    }
    // Plain binary gates.
    for (op, kind) in [('&', GateKind::And2), ('^', GateKind::Xor2)] {
        if let Some((a, b)) = rhs.split_once(op) {
            return Ok(Rhs::Gate(kind, vec![ident(a, line)?, ident(b, line)?]));
        }
    }
    // Bare identifier: a copy (port forwarding / buffer).
    Ok(Rhs::Copy(ident(rhs, line)?))
}

/// Splits at the first top-level (non-parenthesized) occurrence of `op`.
fn split_top(s: &str, op: char) -> Option<(String, String)> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            _ if c == op && depth == 0 => {
                return Some((s[..i].to_string(), s[i + 1..].to_string()));
            }
            _ => {}
        }
    }
    None
}

fn ident(s: &str, line: usize) -> Result<String, ParseVerilogError> {
    let s = s
        .trim()
        .trim_start_matches('(')
        .trim_end_matches(')')
        .trim();
    if s.is_empty()
        || !s
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '[' || c == ']')
    {
        return Err(err(line, format!("not a plain identifier: {s:?}")));
    }
    Ok(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(nl: &Netlist) -> Netlist {
        let v = nl.to_verilog();
        Netlist::from_verilog(&v).unwrap_or_else(|e| panic!("{e}\n{v}"))
    }

    #[test]
    fn half_adder_roundtrip() {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a", 1);
        let b = nl.add_input("b", 1);
        let (s, c) = nl.half_adder(a[0], b[0]);
        nl.add_output("o", vec![s, c]);
        let re = roundtrip(&nl);
        for x in 0..2u128 {
            for y in 0..2u128 {
                assert_eq!(nl.eval_ints(&[x, y], "o"), re.eval_ints(&[x, y], "o"));
            }
        }
    }

    #[test]
    fn all_gate_kinds_roundtrip() {
        use GateKind::*;
        let mut nl = Netlist::new("all");
        let a = nl.add_input("a", 3);
        let mut outs = Vec::new();
        outs.push(nl.gate(Not, &[a[0]]));
        for k in [And2, Or2, Nand2, Nor2, Xor2, Xnor2] {
            outs.push(nl.gate(k, &[a[0], a[1]]));
        }
        for k in [Mux2, Maj3, Ao21] {
            outs.push(nl.gate(k, &[a[0], a[1], a[2]]));
        }
        let c0 = nl.const0();
        let c1 = nl.const1();
        outs.push(c0);
        outs.push(c1);
        nl.add_output("o", outs);
        let re = roundtrip(&nl);
        for v in 0..8u128 {
            assert_eq!(
                nl.eval_ints(&[v], "o"),
                re.eval_ints(&[v], "o"),
                "input {v:03b}"
            );
        }
    }

    #[test]
    fn ripple_adder_roundtrip() {
        let mut nl = Netlist::new("rca");
        let a = nl.add_input("a", 6);
        let b = nl.add_input("b", 6);
        let mut carry = nl.const0();
        let mut bits = Vec::new();
        for i in 0..6 {
            let (s, c) = nl.full_adder(a[i], b[i], carry);
            bits.push(s);
            carry = c;
        }
        bits.push(carry);
        nl.add_output("sum", bits);
        let re = roundtrip(&nl);
        for (x, y) in [(0u128, 0u128), (63, 63), (40, 23), (17, 5)] {
            assert_eq!(re.eval_ints(&[x, y], "sum"), x + y);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Netlist::from_verilog("always @(posedge clk)").is_err());
        assert!(Netlist::from_verilog(
            "module m (a);\n  input [0:0] a;\n  assign x = a[0] ** 2;\nendmodule"
        )
        .is_err());
        let e = Netlist::from_verilog("wire x;").unwrap_err();
        assert!(e.to_string().contains("module"));
    }
}
