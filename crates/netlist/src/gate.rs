//! Gate library and technology cost model.
//!
//! The cost numbers are relative units shaped after the NanGate 45 nm Open
//! Cell Library that the paper synthesizes with: areas are expressed in
//! NAND2-equivalents and delays in normalized gate-delay units. Only the
//! *ratios* matter for reproducing the paper's comparisons, since every
//! reported figure is normalized to the `B-Wal-RCA` baseline.

use std::fmt;

/// Fixed wire capacitance added to every net's load.
pub const WIRE_LOAD: f64 = 0.3;
/// Reference load a cell's nominal delay is specified at (one typical
/// input pin plus local wire).
pub const REF_LOAD: f64 = 1.3;
/// Extra wire capacitance per bit-column pitch a connection spans beyond
/// its own column. Long-reach networks (Kogge-Stone especially) pay for
/// their wiring through this term, as they do physically.
pub const SPAN_WIRE_LOAD: f64 = 0.12;

/// Load-dependent cell delay (logical-effort style): the nominal delay
/// scales with the driven capacitance, so high-fanout nodes — e.g. the
/// inner nodes of a Sklansky network — genuinely cost time, as they do in
/// a physical library. Loads beyond 4× the reference are assumed to be
/// driven through a fanout-of-4 buffer tree (what synthesis would insert),
/// so the penalty grows logarithmically rather than linearly there.
pub fn delay_with_load(kind: GateKind, load: f64) -> f64 {
    let x = load / REF_LOAD;
    let base = kind.delay() * (0.55 + 0.45 * x.min(4.0));
    let buffered = if x > 4.0 {
        GateKind::Buf.delay() * (x / 4.0).log(4.0).ceil()
    } else {
        0.0
    };
    base + buffered
}

/// The primitive cell kinds understood by the netlist, simulator, timer and
/// Verilog writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input placeholder (no logic, no cost).
    Input,
    /// Constant 0 driver.
    Const0,
    /// Constant 1 driver.
    Const1,
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer: inputs `[sel, a, b]`, output `sel ? b : a`.
    Mux2,
    /// 3-input majority (full-adder carry cell).
    Maj3,
    /// AND-OR gate `a | (b & c)` (prefix generate cell).
    Ao21,
}

impl GateKind {
    /// Number of input pins.
    pub fn arity(self) -> usize {
        use GateKind::*;
        match self {
            Input | Const0 | Const1 => 0,
            Buf | Not => 1,
            And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 => 2,
            Mux2 | Maj3 | Ao21 => 3,
        }
    }

    /// Cell area in NAND2-equivalent units.
    pub fn area(self) -> f64 {
        use GateKind::*;
        match self {
            Input | Const0 | Const1 => 0.0,
            Buf => 1.0,
            Not => 0.53,
            Nand2 | Nor2 => 1.0,
            And2 | Or2 => 1.33,
            Xor2 | Xnor2 => 2.0,
            Mux2 => 2.33,
            Maj3 => 2.33,
            Ao21 => 1.67,
        }
    }

    /// Pin-to-output delay in normalized gate-delay units.
    pub fn delay(self) -> f64 {
        use GateKind::*;
        match self {
            Input | Const0 | Const1 => 0.0,
            Buf => 0.6,
            Not => 0.35,
            Nand2 | Nor2 => 0.7,
            And2 | Or2 => 1.0,
            Xor2 | Xnor2 => 1.4,
            Mux2 => 1.4,
            Maj3 => 1.3,
            Ao21 => 1.2,
        }
    }

    /// Relative input-pin capacitance, used as the switching-power load
    /// weight of nets that drive this gate.
    pub fn input_load(self) -> f64 {
        use GateKind::*;
        match self {
            Input | Const0 | Const1 => 0.0,
            Not | Buf => 1.0,
            Nand2 | Nor2 => 1.0,
            And2 | Or2 => 1.1,
            Xor2 | Xnor2 => 1.6,
            Mux2 | Maj3 | Ao21 => 1.3,
        }
    }

    /// Evaluates the boolean function on 64 parallel lanes.
    ///
    /// `ins` must contain exactly [`arity`](Self::arity) words; unused
    /// positions of the fixed-size array are ignored.
    #[inline]
    pub fn eval(self, ins: [u64; 3]) -> u64 {
        use GateKind::*;
        let [a, b, c] = ins;
        match self {
            Input => 0,
            Const0 => 0,
            Const1 => !0,
            Buf => a,
            Not => !a,
            And2 => a & b,
            Or2 => a | b,
            Nand2 => !(a & b),
            Nor2 => !(a | b),
            Xor2 => a ^ b,
            Xnor2 => !(a ^ b),
            Mux2 => (!a & b) | (a & c),
            Maj3 => (a & b) | (a & c) | (b & c),
            Ao21 => a | (b & c),
        }
    }

    /// Verilog expression template with `$0..$2` input placeholders.
    pub fn verilog_expr(self) -> &'static str {
        use GateKind::*;
        match self {
            Input => "$0",
            Const0 => "1'b0",
            Const1 => "1'b1",
            Buf => "$0",
            Not => "~$0",
            And2 => "$0 & $1",
            Or2 => "$0 | $1",
            Nand2 => "~($0 & $1)",
            Nor2 => "~($0 | $1)",
            Xor2 => "$0 ^ $1",
            Xnor2 => "~($0 ^ $1)",
            Mux2 => "$0 ? $2 : $1",
            Maj3 => "($0 & $1) | ($0 & $2) | ($1 & $2)",
            Ao21 => "$0 | ($1 & $2)",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_usage() {
        for k in [
            GateKind::Not,
            GateKind::And2,
            GateKind::Maj3,
            GateKind::Mux2,
            GateKind::Ao21,
        ] {
            assert!(k.arity() >= 1);
        }
        assert_eq!(GateKind::Input.arity(), 0);
    }

    #[test]
    fn eval_truth_tables() {
        let t = !0u64;
        let f = 0u64;
        assert_eq!(GateKind::And2.eval([t, f, 0]), f);
        assert_eq!(GateKind::Or2.eval([t, f, 0]), t);
        assert_eq!(GateKind::Xor2.eval([t, t, 0]), f);
        assert_eq!(GateKind::Nand2.eval([t, t, 0]), f);
        assert_eq!(GateKind::Nor2.eval([f, f, 0]), t);
        assert_eq!(GateKind::Xnor2.eval([t, f, 0]), f);
        // Mux: sel=1 selects input 2.
        assert_eq!(GateKind::Mux2.eval([t, f, t]), t);
        assert_eq!(GateKind::Mux2.eval([f, f, t]), f);
        // Majority.
        assert_eq!(GateKind::Maj3.eval([t, t, f]), t);
        assert_eq!(GateKind::Maj3.eval([t, f, f]), f);
        // AO21: a | (b & c).
        assert_eq!(GateKind::Ao21.eval([f, t, t]), t);
        assert_eq!(GateKind::Ao21.eval([f, t, f]), f);
    }

    #[test]
    fn xor_costs_more_than_nand() {
        assert!(GateKind::Xor2.area() > GateKind::Nand2.area());
        assert!(GateKind::Xor2.delay() > GateKind::Nand2.delay());
    }

    #[test]
    fn lane_parallelism_is_bitwise() {
        // Two lanes with different values in one word.
        let a = 0b10u64;
        let b = 0b11u64;
        assert_eq!(GateKind::And2.eval([a, b, 0]), 0b10);
        assert_eq!(GateKind::Xor2.eval([a, b, 0]), 0b01);
    }
}
