//! One-stop area/delay/power evaluation.

use crate::netlist::Netlist;

/// Synthesis-style quality-of-results metrics for a netlist.
///
/// These stand in for the paper's Design Compiler / PrimeTime measurements;
/// all values are in the relative units of the gate cost model.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignMetrics {
    /// Total cell area (NAND2 equivalents).
    pub area: f64,
    /// Critical-path delay (normalized gate delays).
    pub delay: f64,
    /// Estimated total power (relative units).
    pub power: f64,
}

impl DesignMetrics {
    /// Power-delay product — the paper's headline comparison metric.
    pub fn pdp(&self) -> f64 {
        self.power * self.delay
    }

    /// Area-delay product.
    pub fn adp(&self) -> f64 {
        self.area * self.delay
    }
}

impl std::fmt::Display for DesignMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "area={:.1} delay={:.2} power={:.2} pdp={:.2}",
            self.area,
            self.delay,
            self.power,
            self.pdp()
        )
    }
}

impl Netlist {
    /// Measures area, delay and power in one call.
    ///
    /// `power_vectors` random vectors (seeded deterministically) drive the
    /// switching-activity estimate; 512 is plenty for stable relative
    /// numbers.
    pub fn metrics(&self, power_vectors: usize) -> DesignMetrics {
        DesignMetrics {
            area: self.area(),
            delay: self.critical_delay(),
            power: self.estimate_power(power_vectors, 0xD5EED).total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_are_consistent_with_parts() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 4);
        let mut acc = a[0];
        for &b in &a[1..] {
            acc = n.xor(acc, b);
        }
        n.add_output("o", vec![acc]);
        let m = n.metrics(256);
        assert_eq!(m.area, n.area());
        assert_eq!(m.delay, n.critical_delay());
        assert!(m.power > 0.0);
        assert!((m.pdp() - m.power * m.delay).abs() < 1e-12);
    }
}
