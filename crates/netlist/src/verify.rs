//! Equivalence verification: the admission gate for emitted multipliers.
//!
//! Every netlist the pipeline wants to cache, serve, or export must carry a
//! machine-checkable [`EquivVerdict`] against the `a × b` reference
//! (two's-complement for signed partial-product encodings):
//!
//! * **Proved** — exhaustive 64-lane bit-parallel equivalence over all
//!   `4^m` operand pairs, feasible up to `m = 16` in a release build;
//! * **Tested** — for wider designs, a layered check: structural
//!   invariants, corner vectors (0, 1, ±max, sign boundaries, alternating
//!   bit patterns), and a seeded random sweep with a configurable budget;
//! * **Failed** — a concrete [`Counterexample`] or a structural defect
//!   (wrong port shape, combinational cycle);
//! * **Skipped** — verification was deliberately not run (approximate
//!   designs, `--verify off`), with the reason recorded.
//!
//! The exhaustive kernel compiles the netlist into a flat step list once,
//! packs 64 operand pairs per simulation pass, and compares against the
//! reference products through a 64×64 bit transpose, so the whole `m = 8`
//! space (65 536 pairs) verifies in ~1 k passes.

use crate::check::CheckIssue;
use crate::gate::GateKind;
use crate::netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// How much verification the pipeline runs on each emitted design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum VerifyMode {
    /// No verification: every design is `Skipped`. For benchmarking the
    /// solve path only — nothing produced under `Off` should be trusted.
    Off,
    /// Exhaustive up to `m = 8`, then corners + 1024 random vectors.
    #[default]
    Fast,
    /// Exhaustive up to `m = 16`, then corners + 16384 random vectors.
    Strict,
}

impl VerifyMode {
    /// Stable lowercase label (CLI flag value and TSV field).
    pub fn label(self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Fast => "fast",
            VerifyMode::Strict => "strict",
        }
    }

    /// Parses a CLI flag value.
    pub fn from_name(s: &str) -> Option<VerifyMode> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(VerifyMode::Off),
            "fast" => Some(VerifyMode::Fast),
            "strict" => Some(VerifyMode::Strict),
            _ => None,
        }
    }

    /// The effort budget for this mode; `None` means skip entirely.
    pub fn config(self) -> Option<VerifyConfig> {
        match self {
            VerifyMode::Off => None,
            VerifyMode::Fast => Some(VerifyConfig::fast()),
            VerifyMode::Strict => Some(VerifyConfig::strict()),
        }
    }
}

/// Effort budget for [`verify_multiplier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Exhaustive equivalence for `m ≤ exhaustive_limit` (all `4^m` pairs).
    pub exhaustive_limit: usize,
    /// Random operand pairs for the sampled tier (on top of all corner
    /// pairs).
    pub random_vectors: u64,
    /// Seed for the random sweep — fixed so verdicts are reproducible.
    pub seed: u64,
    /// Worker threads for the exhaustive sweep; 0 = one per core.
    pub jobs: usize,
}

impl VerifyConfig {
    /// Budget behind [`VerifyMode::Fast`].
    pub fn fast() -> VerifyConfig {
        VerifyConfig {
            exhaustive_limit: 8,
            random_vectors: 1024,
            seed: 0x60311,
            jobs: 0,
        }
    }

    /// Budget behind [`VerifyMode::Strict`].
    pub fn strict() -> VerifyConfig {
        VerifyConfig {
            exhaustive_limit: 16,
            random_vectors: 16384,
            seed: 0x60311,
            jobs: 0,
        }
    }
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig::fast()
    }
}

/// Strength ordering of verdicts, for admission policies: `Failed` is the
/// weakest, `Proved` the strongest, and a cache can demand a minimum tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum VerdictTier {
    /// A counterexample or structural defect exists.
    Failed,
    /// Verification was not run.
    Skipped,
    /// Corner + random vectors passed (no counterexample found).
    Tested,
    /// Exhaustively equivalent to the reference product.
    Proved,
}

impl VerdictTier {
    /// Whether a design at this tier may be admitted under a policy that
    /// requires at least `min`. `Failed` is never admissible.
    pub fn admits(self, min: VerdictTier) -> bool {
        self != VerdictTier::Failed && self >= min
    }

    /// Stable lowercase label (TSV field).
    pub fn label(self) -> &'static str {
        match self {
            VerdictTier::Failed => "failed",
            VerdictTier::Skipped => "skipped",
            VerdictTier::Tested => "tested",
            VerdictTier::Proved => "proved",
        }
    }

    /// Parses a TSV field written by [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<VerdictTier> {
        match s {
            "failed" => Some(VerdictTier::Failed),
            "skipped" => Some(VerdictTier::Skipped),
            "tested" => Some(VerdictTier::Tested),
            "proved" => Some(VerdictTier::Proved),
            _ => None,
        }
    }
}

impl fmt::Display for VerdictTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete operand pair on which the netlist disagrees with `a × b`.
///
/// Values are the raw (unsigned) bit patterns of the operand buses and the
/// product bus, so the mismatch can be replayed directly through
/// [`Netlist::eval_ints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counterexample {
    /// Operand `a` bit pattern.
    pub x: u128,
    /// Operand `b` bit pattern.
    pub y: u128,
    /// What the netlist produced.
    pub got: u128,
    /// The reference product.
    pub want: u128,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} = {}, netlist produced {}",
            self.x, self.y, self.want, self.got
        )
    }
}

/// The equivalence verdict attached to every design the pipeline emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivVerdict {
    /// Exhaustively equivalent: all `vectors` operand pairs checked.
    Proved {
        /// Number of operand pairs simulated (`4^m`).
        vectors: u64,
    },
    /// Sampled equivalence: corners plus random vectors, no mismatch.
    Tested {
        /// Number of operand pairs simulated.
        vectors: u64,
    },
    /// Not equivalent (or structurally unsound). The counterexample is
    /// absent only for structural failures, where no single vector exists.
    Failed {
        /// Human-readable description of the defect.
        reason: String,
        /// A replayable mismatch, when one was found.
        counterexample: Option<Counterexample>,
    },
    /// Verification deliberately not run.
    Skipped {
        /// Why (e.g. "verification disabled", "approximate design").
        reason: String,
    },
}

impl EquivVerdict {
    /// The verdict's strength tier.
    pub fn tier(&self) -> VerdictTier {
        match self {
            EquivVerdict::Proved { .. } => VerdictTier::Proved,
            EquivVerdict::Tested { .. } => VerdictTier::Tested,
            EquivVerdict::Failed { .. } => VerdictTier::Failed,
            EquivVerdict::Skipped { .. } => VerdictTier::Skipped,
        }
    }

    /// Number of operand pairs simulated to reach this verdict.
    pub fn vectors(&self) -> u64 {
        match self {
            EquivVerdict::Proved { vectors } | EquivVerdict::Tested { vectors } => *vectors,
            _ => 0,
        }
    }

    /// Convenience for the admission gate: see [`VerdictTier::admits`].
    pub fn admits(&self, min: VerdictTier) -> bool {
        self.tier().admits(min)
    }
}

impl fmt::Display for EquivVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivVerdict::Proved { vectors } => {
                write!(f, "proved (exhaustive, {vectors} vectors)")
            }
            EquivVerdict::Tested { vectors } => write!(f, "tested ({vectors} vectors)"),
            EquivVerdict::Failed {
                reason,
                counterexample,
            } => match counterexample {
                Some(cex) => write!(f, "FAILED: {reason}: {cex}"),
                None => write!(f, "FAILED: {reason}"),
            },
            EquivVerdict::Skipped { reason } => write!(f, "skipped ({reason})"),
        }
    }
}

/// Verifies that `nl` computes the `m × m → 2m` product `a × b`
/// (two's-complement when `signed`), rendering an [`EquivVerdict`].
///
/// The check is layered: structural invariants first (port shape,
/// combinational acyclicity — both can be violated by imported Verilog or
/// corrupted artifacts, even though the builder enforces them), then
/// exhaustive bit-parallel equivalence when `m ≤ cfg.exhaustive_limit`,
/// otherwise corner pairs plus a seeded random sweep.
///
/// Never returns `Skipped`: deciding *not* to verify is the caller's
/// policy ([`VerifyMode`]), not this function's.
pub fn verify_multiplier(nl: &Netlist, m: usize, signed: bool, cfg: &VerifyConfig) -> EquivVerdict {
    if let Some(verdict) = structural_failure(nl, m) {
        return verdict;
    }
    // Port shape is now known-good: inputs a/b of width m, output of
    // width 2m.
    if m <= cfg.exhaustive_limit && m <= 16 {
        exhaustive(nl, m, signed, cfg)
    } else {
        sampled(nl, m, signed, cfg)
    }
}

// ---------------------------------------------------------------------
// Structural tier.
// ---------------------------------------------------------------------

fn structural_failure(nl: &Netlist, m: usize) -> Option<EquivVerdict> {
    let fail = |reason: String| {
        Some(EquivVerdict::Failed {
            reason,
            counterexample: None,
        })
    };
    if m == 0 || m > 64 {
        return fail(format!("unsupported word length m={m}"));
    }
    for issue in nl.check() {
        if let CheckIssue::CombinationalCycle { net } = issue {
            return fail(format!("combinational cycle through net n{net}"));
        }
    }
    let (a, b) = match operand_ports(nl) {
        Some(ports) => ports,
        None => return fail("fewer than two input ports".into()),
    };
    for port in [a, b] {
        if nl.inputs()[port].bits.len() != m {
            return fail(format!(
                "operand port '{}' has width {}, expected {m}",
                nl.inputs()[port].name,
                nl.inputs()[port].bits.len()
            ));
        }
    }
    let p = match product_port(nl) {
        Some(p) => p,
        None => return fail("no output port".into()),
    };
    if nl.outputs()[p].bits.len() != 2 * m {
        return fail(format!(
            "product port '{}' has width {}, expected {}",
            nl.outputs()[p].name,
            nl.outputs()[p].bits.len(),
            2 * m
        ));
    }
    None
}

/// Input-port indices for the two operands: `a`/`b` by name when present,
/// otherwise the first two declared ports.
fn operand_ports(nl: &Netlist) -> Option<(usize, usize)> {
    let by_name = |want: &str| nl.inputs().iter().position(|p| p.name == want);
    match (by_name("a"), by_name("b")) {
        (Some(a), Some(b)) => Some((a, b)),
        _ if nl.inputs().len() >= 2 => Some((0, 1)),
        _ => None,
    }
}

/// Output-port index of the product: `p` by name, else the first output.
fn product_port(nl: &Netlist) -> Option<usize> {
    nl.outputs()
        .iter()
        .position(|p| p.name == "p")
        .or(if nl.outputs().is_empty() {
            None
        } else {
            Some(0)
        })
}

// ---------------------------------------------------------------------
// Compiled simulator: the netlist flattened to a step list so the hot
// loop touches no ports, no matches on Input, and a single reused buffer.
// ---------------------------------------------------------------------

struct Compiled {
    /// `(kind, in0, in1, in2, out)` for every non-input cell, in order.
    steps: Vec<(GateKind, u32, u32, u32, u32)>,
    num_nets: usize,
    a_bits: Vec<u32>,
    b_bits: Vec<u32>,
    p_bits: Vec<u32>,
}

impl Compiled {
    fn new(nl: &Netlist) -> Compiled {
        let (a, b) = operand_ports(nl).expect("checked structurally");
        let p = product_port(nl).expect("checked structurally");
        let as_idx = |bits: &[crate::netlist::NetId]| -> Vec<u32> {
            bits.iter().map(|n| n.index() as u32).collect()
        };
        Compiled {
            steps: nl
                .cells()
                .iter()
                .filter(|c| c.kind != GateKind::Input)
                .map(|c| {
                    (
                        c.kind,
                        c.inputs[0].index() as u32,
                        c.inputs[1].index() as u32,
                        c.inputs[2].index() as u32,
                        c.output.index() as u32,
                    )
                })
                .collect(),
            num_nets: nl.num_nets(),
            a_bits: as_idx(&nl.inputs()[a].bits),
            b_bits: as_idx(&nl.inputs()[b].bits),
            p_bits: as_idx(&nl.outputs()[p].bits),
        }
    }

    /// One 64-lane pass over the step list. `values` must have
    /// `num_nets` entries with the input-bit words already written.
    #[inline]
    fn run(&self, values: &mut [u64]) {
        for &(kind, i0, i1, i2, out) in &self.steps {
            let ins = [
                values[i0 as usize],
                values[i1 as usize],
                values[i2 as usize],
            ];
            values[out as usize] = kind.eval(ins);
        }
    }
}

// ---------------------------------------------------------------------
// Exhaustive tier: all 4^m pairs, 64 per pass.
// ---------------------------------------------------------------------

/// Word `i` has bit pattern `(lane >> i) & 1` across the 64 lanes: the six
/// constants that enumerate a 6-bit counter bit-parallel.
const LOW_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

#[inline]
fn splat_bit(bit: u64) -> u64 {
    // 0 → all-zero word, 1 → all-one word.
    (bit & 1).wrapping_neg()
}

fn exhaustive(nl: &Netlist, m: usize, signed: bool, cfg: &VerifyConfig) -> EquivVerdict {
    let compiled = Compiled::new(nl);
    let total: u64 = 1u64 << (2 * m); // operand pairs, ≤ 2^32
    let passes: u64 = total.div_ceil(64);
    let jobs = if cfg.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.jobs
    };
    // Worker threads only pay off when there is real work to split.
    let jobs = if passes >= 4096 {
        jobs.min(passes as usize)
    } else {
        1
    };

    let found = AtomicBool::new(false);
    let first: Mutex<Option<(u64, Counterexample)>> = Mutex::new(None);
    let chunk = passes.div_ceil(jobs as u64);
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let start = w as u64 * chunk;
            let end = (start + chunk).min(passes);
            let compiled = &compiled;
            let found = &found;
            let first = &first;
            scope.spawn(move || {
                let mut values = vec![0u64; compiled.num_nets];
                for pass in start..end {
                    if pass % 1024 == 0 && found.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(cex) =
                        exhaustive_pass(compiled, m, signed, total, pass, &mut values)
                    {
                        found.store(true, Ordering::Relaxed);
                        let mut slot = first.lock().unwrap();
                        // Keep the lowest-numbered mismatch so the verdict
                        // is deterministic regardless of thread timing.
                        if slot.is_none() || slot.as_ref().unwrap().0 > pass {
                            *slot = Some((pass, cex));
                        }
                        return;
                    }
                }
            });
        }
    });

    match first.into_inner().unwrap() {
        Some((_, cex)) => EquivVerdict::Failed {
            reason: "product mismatch".into(),
            counterexample: Some(cex),
        },
        None => EquivVerdict::Proved { vectors: total },
    }
}

/// Simulates operand pairs `[pass*64, pass*64+64) ∩ [0, total)` and
/// returns the first mismatch in the pass, if any.
fn exhaustive_pass(
    c: &Compiled,
    m: usize,
    signed: bool,
    total: u64,
    pass: u64,
    values: &mut [u64],
) -> Option<Counterexample> {
    let base = pass * 64;
    let lanes = (total - base).min(64) as usize;
    let mask = (1u64 << m) - 1;
    if m >= 6 && lanes == 64 {
        // Lane `i` enumerates pair `base + i`: x's low six bits are the
        // lane counter (base is 64-aligned), everything else is constant
        // across the pass.
        for (i, &net) in c.a_bits.iter().enumerate() {
            values[net as usize] = if i < 6 {
                LOW_PATTERNS[i]
            } else {
                splat_bit(base >> i)
            };
        }
        for (i, &net) in c.b_bits.iter().enumerate() {
            values[net as usize] = splat_bit(base >> (m + i));
        }
    } else {
        for (i, &net) in c.a_bits.iter().enumerate() {
            let mut w = 0u64;
            for lane in 0..lanes {
                w |= (((base + lane as u64) >> i) & 1) << lane;
            }
            values[net as usize] = w;
        }
        for (i, &net) in c.b_bits.iter().enumerate() {
            let mut w = 0u64;
            for lane in 0..lanes {
                w |= (((base + lane as u64) >> (m + i)) & 1) << lane;
            }
            values[net as usize] = w;
        }
    }
    c.run(values);

    // Expected products, one row per lane, bit-sliced to per-bit words.
    let out_mask = (1u64 << (2 * m)) - 1;
    let mut rows = [0u64; 64];
    for (lane, row) in rows.iter_mut().enumerate().take(lanes) {
        let v = base + lane as u64;
        let (x, y) = (v & mask, v >> m);
        *row = expected_u64(x, y, m, signed) & out_mask;
    }
    transpose64(&mut rows);

    let mut bad = 0u64;
    let lane_mask = if lanes == 64 {
        !0u64
    } else {
        (1u64 << lanes) - 1
    };
    for (j, &net) in c.p_bits.iter().enumerate() {
        bad |= (values[net as usize] ^ rows[j]) & lane_mask;
    }
    if bad == 0 {
        return None;
    }
    let lane = bad.trailing_zeros() as u64;
    let v = base + lane;
    let (x, y) = (v & mask, v >> m);
    let mut got = 0u128;
    for (j, &net) in c.p_bits.iter().enumerate() {
        got |= ((values[net as usize] as u128 >> lane) & 1) << j;
    }
    Some(Counterexample {
        x: x as u128,
        y: y as u128,
        got,
        want: (expected_u64(x, y, m, signed) & out_mask) as u128,
    })
}

/// Reference product for `m ≤ 16`: fits comfortably in a `u64`.
#[inline]
fn expected_u64(x: u64, y: u64, m: usize, signed: bool) -> u64 {
    if signed {
        let shift = 64 - m as u32;
        let sx = ((x as i64) << shift) >> shift;
        let sy = ((y as i64) << shift) >> shift;
        sx.wrapping_mul(sy) as u64
    } else {
        x.wrapping_mul(y)
    }
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3): after the
/// call, bit `i` of word `j` is what bit `j` of word `i` was.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            // Swap the j-bit-set positions of a[k] with the j-bit-clear
            // positions of a[k + j] (LSB-first bit numbering).
            let t = ((a[k] >> j) ^ a[k + j]) & mask;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

// ---------------------------------------------------------------------
// Sampled tier: corners + seeded random, for designs too wide to prove.
// ---------------------------------------------------------------------

/// Operand corner values for an `m`-bit word: the boundaries where
/// carry-chain, truncation, and sign-extension bugs live. For signed
/// encodings this includes both sign boundaries (−2^(m−1) = `1000…0`,
/// −1 = `111…1`) and the sign-alternating patterns `0101…`/`1010…`, so
/// Baugh-Wooley/Booth sign-extension defects cannot hide from the sweep.
fn corner_values(m: usize) -> Vec<u128> {
    let mask: u128 = if m >= 128 {
        u128::MAX
    } else {
        (1u128 << m) - 1
    };
    let half = 1u128 << (m - 1); // sign boundary −2^(m−1)
    let candidates = [
        0,
        1,
        2,
        mask,     // −1 signed / max unsigned
        mask - 1, // −2 signed
        half,
        half - 1, // +max signed
        half + 1,
        half | 1, // negative with LSB set
        0x5555_5555_5555_5555_5555_5555_5555_5555u128 & mask,
        0xAAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAAu128 & mask, // sign-alternating, negative
        0x3333_3333_3333_3333_3333_3333_3333_3333u128 & mask,
        0xCCCC_CCCC_CCCC_CCCC_CCCC_CCCC_CCCC_CCCCu128 & mask,
    ];
    let mut out: Vec<u128> = Vec::new();
    for c in candidates {
        let c = c & mask;
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

fn sampled(nl: &Netlist, m: usize, signed: bool, cfg: &VerifyConfig) -> EquivVerdict {
    let compiled = Compiled::new(nl);
    let mask: u128 = if m >= 128 {
        u128::MAX
    } else {
        (1u128 << m) - 1
    };
    let corners = corner_values(m);
    let mut pairs: Vec<(u128, u128)> = Vec::new();
    for &x in &corners {
        for &y in &corners {
            pairs.push((x, y));
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (m as u64).rotate_left(17));
    for _ in 0..cfg.random_vectors {
        pairs.push((rng.gen::<u128>() & mask, rng.gen::<u128>() & mask));
    }

    let vectors = pairs.len() as u64;
    let mut values = vec![0u64; compiled.num_nets];
    for chunk in pairs.chunks(64) {
        if let Some(cex) = sampled_pass(&compiled, m, signed, chunk, &mut values) {
            return EquivVerdict::Failed {
                reason: "product mismatch".into(),
                counterexample: Some(cex),
            };
        }
    }
    EquivVerdict::Tested { vectors }
}

fn sampled_pass(
    c: &Compiled,
    m: usize,
    signed: bool,
    chunk: &[(u128, u128)],
    values: &mut [u64],
) -> Option<Counterexample> {
    for (i, &net) in c.a_bits.iter().enumerate() {
        let mut w = 0u64;
        for (lane, &(x, _)) in chunk.iter().enumerate() {
            w |= (((x >> i) & 1) as u64) << lane;
        }
        values[net as usize] = w;
    }
    for (i, &net) in c.b_bits.iter().enumerate() {
        let mut w = 0u64;
        for (lane, &(_, y)) in chunk.iter().enumerate() {
            w |= (((y >> i) & 1) as u64) << lane;
        }
        values[net as usize] = w;
    }
    c.run(values);

    for (lane, &(x, y)) in chunk.iter().enumerate() {
        let mut got = 0u128;
        for (j, &net) in c.p_bits.iter().enumerate() {
            got |= (((values[net as usize] >> lane) & 1) as u128) << j;
        }
        let want = expected_u128(x, y, m, signed);
        if got != want {
            return Some(Counterexample { x, y, got, want });
        }
    }
    None
}

/// Reference product for any `m ≤ 64` (2m-bit result fits in `u128`).
fn expected_u128(x: u128, y: u128, m: usize, signed: bool) -> u128 {
    let out_mask: u128 = if 2 * m >= 128 {
        u128::MAX
    } else {
        (1u128 << (2 * m)) - 1
    };
    if signed {
        let shift = 128 - m as u32;
        let sx = ((x as i128) << shift) >> shift;
        let sy = ((y as i128) << shift) >> shift;
        sx.wrapping_mul(sy) as u128 & out_mask
    } else {
        x.wrapping_mul(y) & out_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 2-bit array multiplier (known correct).
    fn mul2() -> Netlist {
        let mut nl = Netlist::new("mul2");
        let a = nl.add_input("a", 2);
        let b = nl.add_input("b", 2);
        let p0 = nl.and(a[0], b[0]);
        let t1 = nl.and(a[1], b[0]);
        let t2 = nl.and(a[0], b[1]);
        let t3 = nl.and(a[1], b[1]);
        let (p1, c1) = nl.half_adder(t1, t2);
        let (p2, p3) = nl.half_adder(t3, c1);
        nl.add_output("p", vec![p0, p1, p2, p3]);
        nl
    }

    /// An `m`-bit unsigned array multiplier, for wider tests.
    fn array_mul(m: usize) -> Netlist {
        let mut nl = Netlist::new(format!("array{m}"));
        let a = nl.add_input("a", m);
        let b = nl.add_input("b", m);
        let zero = nl.const0();
        let mut acc = vec![zero; 2 * m];
        for (j, &bj) in b.iter().enumerate() {
            let mut carry = nl.const0();
            for (i, &ai) in a.iter().enumerate() {
                let pp = nl.and(ai, bj);
                let (s, c1) = nl.full_adder(acc[i + j], pp, carry);
                acc[i + j] = s;
                carry = c1;
            }
            acc[j + m] = carry;
        }
        nl.add_output("p", acc);
        nl
    }

    #[test]
    fn exhaustive_proves_a_correct_multiplier() {
        let v = verify_multiplier(&mul2(), 2, false, &VerifyConfig::fast());
        assert_eq!(v, EquivVerdict::Proved { vectors: 16 });
        assert_eq!(v.tier(), VerdictTier::Proved);
        assert_eq!(v.vectors(), 16);
    }

    #[test]
    fn exhaustive_fast_path_matches_on_wider_widths() {
        // m = 7 exercises the pattern-based input build (m ≥ 6, full
        // passes) and the tail pass.
        let v = verify_multiplier(&array_mul(7), 7, false, &VerifyConfig::fast());
        assert_eq!(v, EquivVerdict::Proved { vectors: 1 << 14 });
    }

    #[test]
    fn exhaustive_finds_a_counterexample_in_a_corrupted_netlist() {
        let mut nl = mul2();
        // Flip the gate driving p[1]'s half-adder sum from XOR to XNOR.
        let p1 = nl.outputs()[0].bits[1];
        let idx = nl
            .cells()
            .iter()
            .position(|c| c.output == p1)
            .expect("p1 has a driver");
        let old = nl.inject_cell_kind(idx, GateKind::Xnor2);
        assert_eq!(old, GateKind::Xor2);
        let v = verify_multiplier(&nl, 2, false, &VerifyConfig::fast());
        let cex = match &v {
            EquivVerdict::Failed {
                counterexample: Some(cex),
                ..
            } => *cex,
            other => panic!("expected a counterexample, got {other:?}"),
        };
        // The counterexample replays: the netlist really computes `got`.
        assert_eq!(nl.eval_ints(&[cex.x, cex.y], "p"), cex.got);
        assert_ne!(cex.got, cex.want);
        assert_eq!(cex.want, cex.x * cex.y);
        // 0 × 0 is unaffected by a sum-bit flip only if the XNOR output
        // differs — which it does: the lowest mismatching pair is (0, 0).
        assert_eq!(v.tier(), VerdictTier::Failed);
        assert!(!v.admits(VerdictTier::Skipped));
    }

    #[test]
    fn sampled_tier_tests_wide_designs() {
        let cfg = VerifyConfig {
            exhaustive_limit: 4, // force the sampled path at m = 6
            random_vectors: 128,
            ..VerifyConfig::fast()
        };
        let v = verify_multiplier(&array_mul(6), 6, false, &cfg);
        match v {
            EquivVerdict::Tested { vectors } => assert!(vectors > 128),
            other => panic!("expected Tested, got {other:?}"),
        }
    }

    #[test]
    fn sampled_tier_catches_corruption_via_corners() {
        let mut nl = array_mul(6);
        // Corrupt the driver of the top product bit (the final carry, a
        // Maj3): it only misbehaves when the top partial product fires,
        // so corner coverage (e.g. −2^(m−1) × −2^(m−1)) is what catches
        // it — a Mux2 with the same pins agrees with Maj3 except when
        // the middle input is 1 and the carry-in is 0.
        let top = nl.outputs()[0].bits[11];
        let idx = nl.cells().iter().position(|c| c.output == top).unwrap();
        let old = nl.inject_cell_kind(idx, GateKind::Mux2);
        assert_eq!(old, GateKind::Maj3);
        let cfg = VerifyConfig {
            exhaustive_limit: 4,
            random_vectors: 0, // corners only
            ..VerifyConfig::fast()
        };
        let v = verify_multiplier(&nl, 6, false, &cfg);
        assert_eq!(v.tier(), VerdictTier::Failed);
    }

    #[test]
    fn signed_reference_handles_sign_boundaries() {
        // −8 × −8 = 64 for m = 4; raw bit patterns: 8 × 8.
        assert_eq!(expected_u64(8, 8, 4, true), 64);
        // −1 × −1 = 1: patterns 15 × 15.
        assert_eq!(expected_u64(15, 15, 4, true), 1);
        // −1 × 1 = −1 → 0xFF in 8 product bits.
        assert_eq!(expected_u64(15, 1, 4, true) & 0xFF, 0xFF);
        assert_eq!(expected_u128(15, 15, 4, true), 1);
        assert_eq!(
            expected_u128((1 << 31) | 1, 3, 32, true),
            expected_u64((1 << 31) | 1, 3, 32, true) as u128 & ((1u128 << 64) - 1)
        );
    }

    #[test]
    fn corner_values_cover_sign_boundaries() {
        for m in [4usize, 8, 16, 32] {
            let cs = corner_values(m);
            let mask = (1u128 << m) - 1;
            let half = 1u128 << (m - 1);
            assert!(cs.contains(&0));
            assert!(cs.contains(&mask), "−1 / max at m={m}");
            assert!(cs.contains(&half), "−2^(m−1) at m={m}");
            assert!(cs.contains(&(half - 1)), "+max at m={m}");
            assert!(
                cs.contains(&(0xAAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAAu128 & mask)),
                "sign-alternating at m={m}"
            );
            // All values are in range and distinct.
            assert!(cs.iter().all(|&c| c <= mask));
            let mut sorted = cs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), cs.len());
        }
    }

    #[test]
    fn structural_checks_reject_bad_port_shapes() {
        // Wrong operand width.
        let v = verify_multiplier(&mul2(), 3, false, &VerifyConfig::fast());
        assert_eq!(v.tier(), VerdictTier::Failed);
        // A netlist with no outputs.
        let mut nl = Netlist::new("t");
        nl.add_input("a", 2);
        nl.add_input("b", 2);
        let v = verify_multiplier(&nl, 2, false, &VerifyConfig::fast());
        match v {
            EquivVerdict::Failed {
                counterexample: None,
                ..
            } => {}
            other => panic!("structural failure has no counterexample: {other:?}"),
        }
    }

    #[test]
    fn verdict_tiers_order_and_admit() {
        use VerdictTier::*;
        assert!(Failed < Skipped && Skipped < Tested && Tested < Proved);
        assert!(Proved.admits(Proved));
        assert!(Proved.admits(Skipped));
        assert!(Tested.admits(Tested));
        assert!(!Tested.admits(Proved));
        assert!(Skipped.admits(Skipped));
        assert!(!Skipped.admits(Tested));
        // Failed is inadmissible even under the weakest policy.
        assert!(!Failed.admits(Failed));
        assert!(!Failed.admits(Skipped));
        for t in [Failed, Skipped, Tested, Proved] {
            assert_eq!(VerdictTier::from_label(t.label()), Some(t));
        }
        assert_eq!(VerdictTier::from_label("bogus"), None);
    }

    #[test]
    fn verify_mode_parses_and_maps_to_budgets() {
        assert_eq!(VerifyMode::from_name("off"), Some(VerifyMode::Off));
        assert_eq!(VerifyMode::from_name("FAST"), Some(VerifyMode::Fast));
        assert_eq!(VerifyMode::from_name("strict"), Some(VerifyMode::Strict));
        assert_eq!(VerifyMode::from_name("paranoid"), None);
        assert!(VerifyMode::Off.config().is_none());
        assert_eq!(VerifyMode::Fast.config().unwrap().exhaustive_limit, 8);
        assert_eq!(VerifyMode::Strict.config().unwrap().exhaustive_limit, 16);
        assert_eq!(VerifyMode::default(), VerifyMode::Fast);
        for mode in [VerifyMode::Off, VerifyMode::Fast, VerifyMode::Strict] {
            assert_eq!(VerifyMode::from_name(mode.label()), Some(mode));
        }
    }

    #[test]
    fn counterexample_display_names_the_product() {
        let cex = Counterexample {
            x: 3,
            y: 5,
            got: 14,
            want: 15,
        };
        assert_eq!(cex.to_string(), "3 × 5 = 15, netlist produced 14");
        let v = EquivVerdict::Failed {
            reason: "product mismatch".into(),
            counterexample: Some(cex),
        };
        assert!(v.to_string().contains('×'));
    }

    #[test]
    fn transpose64_is_an_involution_and_transposes() {
        let mut a = [0u64; 64];
        for (i, w) in a.iter_mut().enumerate() {
            *w = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (1 << (i % 64));
        }
        let orig = a;
        transpose64(&mut a);
        for (i, row) in orig.iter().enumerate() {
            for (j, col) in a.iter().enumerate() {
                assert_eq!((col >> i) & 1, (row >> j) & 1, "({i},{j})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn exhaustive_limit_zero_forces_the_sampled_tier() {
        let cfg = VerifyConfig {
            exhaustive_limit: 0,
            random_vectors: 16,
            ..VerifyConfig::fast()
        };
        let v = verify_multiplier(&mul2(), 2, false, &cfg);
        assert_eq!(v.tier(), VerdictTier::Tested);
    }
}
