//! K-LUT technology mapping (FPGA cost view).
//!
//! The paper's conclusions name FPGA synthesis as planned future work.
//! This module provides the measurement side of that direction: a greedy
//! level-oriented mapper that packs the gate network into K-input lookup
//! tables, reporting LUT count (FPGA area) and LUT depth (FPGA delay).
//!
//! The mapper is the classic quick estimator: walk in topological order,
//! absorbing a gate into its fanins' cone while the united support stays
//! within `k` inputs; otherwise cut the fanins into LUT roots. Primary
//! outputs always become roots. This is not FlowMap-optimal but tracks it
//! closely on arithmetic netlists and is deterministic.

use crate::gate::GateKind;
use crate::netlist::Netlist;
use std::collections::BTreeSet;

/// FPGA mapping result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LutMetrics {
    /// Number of K-input LUTs.
    pub luts: usize,
    /// LUT levels on the longest combinational path.
    pub depth: usize,
}

impl Netlist {
    /// Maps the netlist onto `k`-input LUTs and reports count and depth.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` (a 3-input gate could not fit a smaller LUT).
    pub fn map_to_luts(&self, k: usize) -> LutMetrics {
        assert!(k >= 3, "LUT width must cover the widest gate (3 inputs)");
        let n = self.num_nets();
        // Per net: the input support of its (tentative) cone, and the LUT
        // level at which the cone's root would sit.
        let mut support: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        let mut level: Vec<usize> = vec![0; n];
        let mut is_root = vec![false; n];
        // Leaf level of a net used as a cone input.
        let leaf_level = |net: usize, is_root: &[bool], level: &[usize]| -> usize {
            if is_root[net] {
                level[net]
            } else {
                0 // primary input / constant
            }
        };

        for cell in self.cells() {
            let out = cell.output.index();
            match cell.kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
                    // Zero-cost sources; their "support" is themselves.
                    continue;
                }
                _ => {}
            }
            // Tentative absorb: union of fanin cone supports.
            let mut s: BTreeSet<u32> = BTreeSet::new();
            for i in 0..cell.kind.arity() {
                let f = cell.inputs[i].index();
                let fk = self.driver_of(cell.inputs[i]).kind;
                let is_source = matches!(fk, GateKind::Input | GateKind::Const0 | GateKind::Const1);
                if is_source || is_root[f] {
                    s.insert(f as u32);
                } else {
                    s.extend(support[f].iter().copied());
                }
            }
            if s.len() > k {
                // Cut: promote every non-source fanin to a LUT root and use
                // the fanin nets directly (≤ 3 ≤ k inputs).
                s.clear();
                for i in 0..cell.kind.arity() {
                    let f = cell.inputs[i].index();
                    let fk = self.driver_of(cell.inputs[i]).kind;
                    if !matches!(fk, GateKind::Input | GateKind::Const0 | GateKind::Const1) {
                        is_root[f] = true;
                    }
                    s.insert(f as u32);
                }
            }
            level[out] = 1 + s
                .iter()
                .map(|&leaf| leaf_level(leaf as usize, &is_root, &level))
                .max()
                .unwrap_or(0);
            support[out] = s;
        }

        // Outputs are roots.
        for p in self.outputs() {
            for &b in &p.bits {
                let kind = self.driver_of(b).kind;
                if !matches!(kind, GateKind::Input | GateKind::Const0 | GateKind::Const1) {
                    is_root[b.index()] = true;
                }
            }
        }

        let luts = is_root.iter().filter(|&&r| r).count();
        let depth = self
            .outputs()
            .iter()
            .flat_map(|p| p.bits.iter())
            .map(|b| {
                let i = b.index();
                if is_root[i] {
                    level[i]
                } else {
                    0
                }
            })
            .max()
            .unwrap_or(0);
        LutMetrics { luts, depth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain(width: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a", width);
        let mut acc = a[0];
        for &b in &a[1..] {
            acc = nl.xor(acc, b);
        }
        nl.add_output("o", vec![acc]);
        nl
    }

    #[test]
    fn single_gate_is_one_lut() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 2);
        let x = nl.and(a[0], a[1]);
        nl.add_output("o", vec![x]);
        assert_eq!(nl.map_to_luts(6), LutMetrics { luts: 1, depth: 1 });
    }

    #[test]
    fn xor_chain_packs_into_wide_luts() {
        // A 6-input XOR chain fits exactly one 6-LUT.
        assert_eq!(
            xor_chain(6).map_to_luts(6),
            LutMetrics { luts: 1, depth: 1 }
        );
        // 11 inputs: greedy cuts once → 2 levels, small count.
        let m = xor_chain(11).map_to_luts(6);
        assert!(m.luts <= 3, "{m:?}");
        assert_eq!(m.depth, 2);
    }

    #[test]
    fn wider_luts_never_increase_count_or_depth() {
        let nl = xor_chain(24);
        let m4 = nl.map_to_luts(4);
        let m6 = nl.map_to_luts(6);
        assert!(m6.luts <= m4.luts);
        assert!(m6.depth <= m4.depth);
    }

    #[test]
    fn full_adder_fits_two_luts() {
        // sum and carry are two 3-input functions of (a, b, cin).
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a", 3);
        let (s, c) = nl.full_adder(a[0], a[1], a[2]);
        nl.add_output("o", vec![s, c]);
        let m = nl.map_to_luts(6);
        assert_eq!(m.luts, 2, "{m:?}");
        assert_eq!(m.depth, 1);
    }

    #[test]
    fn depth_tracks_logic_depth() {
        // Two chained 6-input cones → depth 2.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 11);
        let mut acc = a[0];
        for &b in &a[1..6] {
            acc = nl.xor(acc, b);
        }
        let mid = acc; // 5-input cone
        let mut acc2 = mid;
        for &b in &a[6..11] {
            acc2 = nl.and(acc2, b);
        }
        nl.add_output("o", vec![acc2]);
        let m = nl.map_to_luts(6);
        assert_eq!(m.depth, 2, "{m:?}");
    }
}
