//! Switching-activity power estimation.
//!
//! Dynamic power in CMOS is `P ∝ Σ_net activity(net) · C_load(net)`. We
//! estimate the activity of every net by simulating a stream of random
//! input vectors and counting toggles between consecutive vectors, and the
//! load as the summed input-pin capacitance of the gates the net drives
//! (plus a wire constant). This plays the role of the paper's PrimeTime
//! power measurement at a fixed operating frequency — relative numbers
//! across designs are what matter.

use crate::gate::{SPAN_WIRE_LOAD, WIRE_LOAD};
use crate::netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Power estimation report.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Relative dynamic power (activity-weighted capacitance per vector).
    pub dynamic: f64,
    /// Relative leakage proxy (proportional to area).
    pub leakage: f64,
}

impl PowerEstimate {
    /// Total relative power.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }
}

impl Netlist {
    /// Estimates switching power from `num_vectors` random input vectors
    /// (deterministic for a given `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `num_vectors` is zero.
    pub fn estimate_power(&self, num_vectors: usize, seed: u64) -> PowerEstimate {
        assert!(num_vectors > 0, "need at least one vector");
        let mut rng = StdRng::seed_from_u64(seed);

        // Load per net = wire constant + Σ input-pin caps of readers.
        let mut load = vec![WIRE_LOAD; self.num_nets()];
        for cell in self.cells() {
            for i in 0..cell.kind.arity() {
                load[cell.inputs[i].index()] +=
                    cell.kind.input_load() + SPAN_WIRE_LOAD * (cell.spans[i] - 1.0);
            }
        }

        // Simulate in 64-lane batches; lanes are consecutive random vectors,
        // so toggles are counted between adjacent lanes (and across batch
        // boundaries via the carried last lane).
        let mut toggle_weight = 0.0f64;
        let mut transitions = 0usize;
        let mut prev_last: Option<Vec<u64>> = None; // last lane value per net (0/1 in bit 0)
        let mut remaining = num_vectors;
        while remaining > 0 {
            let lanes = remaining.min(64);
            let words: Vec<Vec<u64>> = self
                .inputs()
                .iter()
                .map(|p| p.bits.iter().map(|_| rng.gen::<u64>()).collect())
                .collect();
            let sim = self.simulate(&words);
            let vals = sim.all();
            // Toggles between adjacent lanes: x ^ (x >> 1) over lanes-1 bits.
            let mask = if lanes >= 64 {
                !0u64 >> 1
            } else {
                (1u64 << (lanes - 1)) - 1
            };
            for (net, &w) in vals.iter().enumerate() {
                let t = ((w ^ (w >> 1)) & mask).count_ones() as f64;
                toggle_weight += t * load[net];
            }
            transitions += lanes - 1;
            // Boundary between batches.
            if let Some(prev) = &prev_last {
                for (net, &w) in vals.iter().enumerate() {
                    if (w & 1) != (prev[net] & 1) {
                        toggle_weight += load[net];
                    }
                }
                transitions += 1;
            }
            prev_last = Some(vals.iter().map(|&w| (w >> (lanes - 1)) & 1).collect());
            remaining -= lanes;
        }

        let dynamic = if transitions == 0 {
            0.0
        } else {
            toggle_weight / transitions as f64
        };
        PowerEstimate {
            dynamic,
            leakage: 0.002 * self.area(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain(width: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a", width);
        let mut acc = a[0];
        for &bit in &a[1..] {
            acc = n.xor(acc, bit);
        }
        n.add_output("o", vec![acc]);
        n
    }

    #[test]
    fn power_is_deterministic_for_a_seed() {
        let n = xor_chain(8);
        let p1 = n.estimate_power(200, 3);
        let p2 = n.estimate_power(200, 3);
        assert_eq!(p1, p2);
    }

    #[test]
    fn bigger_circuits_burn_more_power() {
        let small = xor_chain(4).estimate_power(500, 1).total();
        let big = xor_chain(32).estimate_power(500, 1).total();
        assert!(big > 2.0 * small, "small={small} big={big}");
    }

    #[test]
    fn constant_circuit_has_no_dynamic_power() {
        let mut n = Netlist::new("c");
        let _a = n.add_input("a", 1);
        let c = n.const1();
        let c2 = n.not(c);
        n.add_output("o", vec![c2]);
        let p = n.estimate_power(300, 9);
        // Input net toggles but drives nothing; internal nets never toggle.
        // Wire load on the toggling input is the only dynamic contribution.
        assert!(p.dynamic <= 0.55, "dynamic={}", p.dynamic);
    }

    #[test]
    fn batching_matches_across_boundary_sizes() {
        // 64 vs 65 vectors should give similar (not wildly different) power.
        let n = xor_chain(8);
        let p64 = n.estimate_power(64, 5).dynamic;
        let p200 = n.estimate_power(200, 5).dynamic;
        assert!((p64 - p200).abs() / p200 < 0.35, "p64={p64} p200={p200}");
    }
}
