//! Netlist sanity checks.
//!
//! The builder already guarantees single drivers and define-before-use, so
//! these checks focus on the properties a *generator* can still get wrong:
//! dangling logic, unused inputs, and output bits that were never driven by
//! real logic.

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A structural problem found by [`Netlist::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckIssue {
    /// A logic cell whose output is not (transitively) observable from any
    /// declared output — usually a generator bug or wasted area.
    DeadLogic {
        /// Number of unobservable cells.
        count: usize,
    },
    /// A declared input bit that no cell reads and no output exposes.
    UnusedInput {
        /// Port name.
        port: String,
        /// Bit index within the port.
        bit: usize,
    },
    /// The netlist declares no outputs at all.
    NoOutputs,
    /// A net that (transitively) depends on its own value. The builder's
    /// define-before-use rule makes this impossible to construct, but
    /// imported Verilog and fault-injected netlists carry no such
    /// guarantee — and simulation silently reads stale values through a
    /// back edge, so cycles must be surfaced structurally.
    CombinationalCycle {
        /// Index of a net on the cycle.
        net: usize,
    },
}

impl fmt::Display for CheckIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckIssue::DeadLogic { count } => {
                write!(f, "{count} logic cells unreachable from outputs")
            }
            CheckIssue::UnusedInput { port, bit } => {
                write!(f, "input bit {port}[{bit}] is never read")
            }
            CheckIssue::NoOutputs => f.write_str("netlist declares no outputs"),
            CheckIssue::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net n{net}")
            }
        }
    }
}

impl Error for CheckIssue {}

impl Netlist {
    /// Runs structural checks, returning all issues found (empty = clean).
    pub fn check(&self) -> Vec<CheckIssue> {
        let mut issues = Vec::new();
        if self.outputs().is_empty() {
            issues.push(CheckIssue::NoOutputs);
        }

        // Combinational cycles: iterative three-color DFS over the net
        // dependency graph (a net depends on its driver's inputs).
        if let Some(net) = self.find_cycle() {
            issues.push(CheckIssue::CombinationalCycle { net });
        }

        // Mark cone of influence of the outputs.
        let mut live = vec![false; self.num_nets()];
        let mut stack: Vec<_> = self
            .outputs()
            .iter()
            .flat_map(|p| p.bits.iter().copied())
            .collect();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut live[n.index()], true) {
                continue;
            }
            let cell = self.driver_of(n);
            for i in 0..cell.kind.arity() {
                stack.push(cell.inputs[i]);
            }
        }
        let dead = self
            .cells()
            .iter()
            .filter(|c| {
                !matches!(
                    c.kind,
                    GateKind::Input | GateKind::Const0 | GateKind::Const1
                ) && !live[c.output.index()]
            })
            .count();
        if dead > 0 {
            issues.push(CheckIssue::DeadLogic { count: dead });
        }

        // Unused inputs.
        let mut read: HashSet<usize> = HashSet::new();
        for c in self.cells() {
            for i in 0..c.kind.arity() {
                read.insert(c.inputs[i].index());
            }
        }
        for p in self.outputs() {
            for b in &p.bits {
                read.insert(b.index());
            }
        }
        for p in self.inputs() {
            for (bit, b) in p.bits.iter().enumerate() {
                if !read.contains(&b.index()) {
                    issues.push(CheckIssue::UnusedInput {
                        port: p.name.clone(),
                        bit,
                    });
                }
            }
        }
        issues
    }

    /// Returns a net on a combinational cycle, if one exists.
    fn find_cycle(&self) -> Option<usize> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.num_nets()];
        for root in 0..self.num_nets() {
            if color[root] != WHITE {
                continue;
            }
            // Frames of (net, next input pin to visit).
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = GRAY;
            while let Some(frame) = stack.last_mut() {
                let (net, pin) = *frame;
                let cell = self.driver_of(NetId(net as u32));
                if pin < cell.kind.arity() {
                    frame.1 += 1;
                    let child = cell.inputs[pin].index();
                    match color[child] {
                        WHITE => {
                            color[child] = GRAY;
                            stack.push((child, 0));
                        }
                        GRAY => return Some(child),
                        _ => {}
                    }
                } else {
                    color[net] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_netlist_has_no_issues() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 2);
        let x = n.and(a[0], a[1]);
        n.add_output("o", vec![x]);
        assert!(n.check().is_empty());
    }

    #[test]
    fn detects_dead_logic_and_unused_inputs() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 2);
        let _dead = n.xor(a[0], a[0]);
        n.add_output("o", vec![a[0]]);
        let issues = n.check();
        assert!(issues
            .iter()
            .any(|i| matches!(i, CheckIssue::DeadLogic { count: 1 })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, CheckIssue::UnusedInput { bit: 1, .. })));
    }

    #[test]
    fn detects_a_combinational_cycle() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1);
        let x = n.and(a[0], a[0]);
        let y = n.or(x, a[0]);
        n.add_output("o", vec![y]);
        assert!(n.check().is_empty());
        // Rewire the AND to read the OR's output: x → y → x.
        let x_cell = n
            .cells()
            .iter()
            .position(|c| c.output == x)
            .expect("x has a driver");
        n.inject_cell_input(x_cell, 1, y);
        let issues = n.check();
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, CheckIssue::CombinationalCycle { .. })),
            "{issues:?}"
        );
    }

    #[test]
    fn detects_missing_outputs() {
        let mut n = Netlist::new("t");
        n.add_input("a", 1);
        assert!(n.check().contains(&CheckIssue::NoOutputs));
    }
}
