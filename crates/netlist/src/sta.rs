//! Static timing analysis.
//!
//! Computes per-net arrival times in one topological pass (cells are stored
//! in topological order by construction) and extracts the critical path.
//! This substitutes for the PrimeTime delay measurements in the paper; the
//! per-gate delays come from [`GateKind::delay`](crate::GateKind::delay).

use crate::gate::{delay_with_load, SPAN_WIRE_LOAD, WIRE_LOAD};
use crate::netlist::{NetId, Netlist};

/// Timing analysis results.
#[derive(Debug, Clone)]
pub struct Timing {
    arrival: Vec<f64>,
}

impl Timing {
    /// Arrival time of a net (0 for primary inputs and constants).
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival[net.index()]
    }

    /// Latest arrival among the given nets.
    pub fn max_arrival(&self, nets: &[NetId]) -> f64 {
        nets.iter()
            .map(|n| self.arrival[n.index()])
            .fold(0.0, f64::max)
    }
}

impl Netlist {
    /// Runs static timing analysis with load-dependent cell delays: each
    /// net's load is the wire constant plus the input-pin capacitances of
    /// its readers, and a cell's delay scales with the load it drives
    /// (logical-effort style). This is what makes high-fanout prefix
    /// networks pay a realistic price.
    pub fn timing(&self) -> Timing {
        let mut load = vec![WIRE_LOAD; self.num_nets()];
        for cell in self.cells() {
            for i in 0..cell.kind.arity() {
                load[cell.inputs[i].index()] +=
                    cell.kind.input_load() + SPAN_WIRE_LOAD * (cell.spans[i] - 1.0);
            }
        }
        let mut arrival = vec![0.0f64; self.num_nets()];
        for cell in self.cells() {
            let arity = cell.kind.arity();
            if arity == 0 {
                continue;
            }
            let worst = (0..arity)
                .map(|i| arrival[cell.inputs[i].index()])
                .fold(0.0, f64::max);
            arrival[cell.output.index()] =
                worst + delay_with_load(cell.kind, load[cell.output.index()]);
        }
        Timing { arrival }
    }

    /// Critical-path delay: the worst arrival over all declared outputs.
    pub fn critical_delay(&self) -> f64 {
        let t = self.timing();
        self.outputs()
            .iter()
            .flat_map(|p| p.bits.iter())
            .map(|n| t.arrival(*n))
            .fold(0.0, f64::max)
    }

    /// Traces one critical path from the worst output back to an input,
    /// returning the nets on it (output first).
    pub fn critical_path(&self) -> Vec<NetId> {
        let t = self.timing();
        let mut cur = match self
            .outputs()
            .iter()
            .flat_map(|p| p.bits.iter().copied())
            .max_by(|a, b| t.arrival(*a).partial_cmp(&t.arrival(*b)).unwrap())
        {
            Some(n) => n,
            None => return Vec::new(),
        };
        let mut path = vec![cur];
        loop {
            let cell = self.driver_of(cur);
            let arity = cell.kind.arity();
            if arity == 0 {
                break;
            }
            cur = (0..arity)
                .map(|i| cell.inputs[i])
                .max_by(|a, b| t.arrival(*a).partial_cmp(&t.arrival(*b)).unwrap())
                .expect("arity >= 1");
            path.push(cur);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    #[test]
    fn chain_delay_accumulates_with_loads() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        let x1 = n.and(a, b);
        let x2 = n.and(x1, b);
        let x3 = n.and(x2, b);
        n.add_output("o", vec![x3]);
        // x1 and x2 each drive one AND pin; x3 drives only the output wire.
        let driven = delay_with_load(GateKind::And2, WIRE_LOAD + GateKind::And2.input_load());
        let last = delay_with_load(GateKind::And2, WIRE_LOAD);
        let d = n.critical_delay();
        assert!((d - (2.0 * driven + last)).abs() < 1e-9, "d={d}");
    }

    #[test]
    fn parallel_paths_take_max() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        let slow = n.xor(a, b);
        let fast = n.nand(a, b);
        let out = n.and(slow, fast);
        n.add_output("o", vec![out]);
        let and_pin = WIRE_LOAD + GateKind::And2.input_load();
        let expect =
            delay_with_load(GateKind::Xor2, and_pin) + delay_with_load(GateKind::And2, WIRE_LOAD);
        assert!((n.critical_delay() - expect).abs() < 1e-9);
    }

    #[test]
    fn fanout_slows_a_driver_down() {
        let build = |fanout: usize| {
            let mut n = Netlist::new("t");
            let a = n.add_input("a", 2);
            let x = n.and(a[0], a[1]);
            let mut outs = Vec::new();
            for _ in 0..fanout {
                outs.push(n.xor(x, a[0]));
            }
            n.add_output("o", outs);
            n.critical_delay()
        };
        assert!(build(8) > build(1), "higher fanout must cost delay");
    }

    #[test]
    fn critical_path_reaches_an_input() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        let x = n.xor(a, b);
        let y = n.and(x, b);
        n.add_output("o", vec![y]);
        let path = n.critical_path();
        assert_eq!(path.first(), Some(&y));
        let last = *path.last().unwrap();
        assert!(matches!(n.driver_of(last).kind, GateKind::Input));
    }

    #[test]
    fn ripple_carry_is_linear_in_width() {
        let delay_of = |w: usize| {
            let mut n = Netlist::new("rca");
            let a = n.add_input("a", w);
            let b = n.add_input("b", w);
            let mut carry = n.const0();
            let mut bits = Vec::new();
            for i in 0..w {
                let (s, c) = n.full_adder(a[i], b[i], carry);
                bits.push(s);
                carry = c;
            }
            bits.push(carry);
            n.add_output("sum", bits);
            n.critical_delay()
        };
        let d8 = delay_of(8);
        let d16 = delay_of(16);
        // Roughly doubles with width.
        assert!(d16 > 1.7 * d8 && d16 < 2.3 * d8, "d8={d8} d16={d16}");
    }
}
