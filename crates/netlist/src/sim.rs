//! Bit-parallel functional simulation.
//!
//! Each net carries a `u64`, so one pass simulates 64 independent input
//! vectors ("lanes"). This is the engine behind both functional
//! verification of multipliers and switching-activity estimation for the
//! power model.

use crate::netlist::{NetId, Netlist};

/// Simulation state: one 64-lane word per net.
#[derive(Debug, Clone)]
pub struct SimVectors {
    values: Vec<u64>,
}

impl SimVectors {
    /// Value word of a net.
    pub fn net(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// Reads a bus (LSB-first bits) for one lane as an integer.
    pub fn bus_lane(&self, bits: &[NetId], lane: usize) -> u128 {
        assert!(lane < 64, "lane out of range");
        let mut out = 0u128;
        for (i, &b) in bits.iter().enumerate() {
            if (self.values[b.index()] >> lane) & 1 == 1 {
                out |= 1 << i;
            }
        }
        out
    }

    /// All per-net words (indexed by net index).
    pub fn all(&self) -> &[u64] {
        &self.values
    }
}

impl Netlist {
    /// Simulates the netlist with the given input assignment.
    ///
    /// `input_words` provides, for each input port (in declaration order),
    /// one `u64` word per bit (LSB-first): bit *i* of a word is the value in
    /// lane *i*.
    ///
    /// # Panics
    ///
    /// Panics if `input_words` does not match the declared input ports.
    pub fn simulate(&self, input_words: &[Vec<u64>]) -> SimVectors {
        assert_eq!(
            input_words.len(),
            self.inputs().len(),
            "expected one word vector per input port"
        );
        let mut values = vec![0u64; self.num_nets()];
        for (port, words) in self.inputs().iter().zip(input_words) {
            assert_eq!(
                words.len(),
                port.bits.len(),
                "input port {} expects {} words",
                port.name,
                port.bits.len()
            );
            for (&bit, &w) in port.bits.iter().zip(words) {
                values[bit.index()] = w;
            }
        }
        for cell in self.cells() {
            use crate::gate::GateKind::*;
            match cell.kind {
                Input => continue, // already assigned
                _ => {
                    let ins = [
                        values[cell.inputs[0].index()],
                        values[cell.inputs[1].index()],
                        values[cell.inputs[2].index()],
                    ];
                    values[cell.output.index()] = cell.kind.eval(ins);
                }
            }
        }
        SimVectors { values }
    }

    /// Convenience: simulates one lane with integer-valued input buses and
    /// returns the integer value of the named output bus.
    ///
    /// # Panics
    ///
    /// Panics if `out_name` is not a declared output or the inputs mismatch
    /// the ports.
    pub fn eval_ints(&self, inputs: &[u128], out_name: &str) -> u128 {
        let words: Vec<Vec<u64>> = self
            .inputs()
            .iter()
            .zip(inputs)
            .map(|(p, &v)| {
                p.bits
                    .iter()
                    .enumerate()
                    .map(|(i, _)| if (v >> i) & 1 == 1 { 1u64 } else { 0 })
                    .collect()
            })
            .collect();
        assert_eq!(words.len(), self.inputs().len(), "input count mismatch");
        let sim = self.simulate(&words);
        let port = self
            .outputs()
            .iter()
            .find(|p| p.name == out_name)
            .unwrap_or_else(|| panic!("no output port named {out_name}"));
        sim.bus_lane(&port.bits, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new("fa");
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        let c = n.add_input("c", 1)[0];
        let (s, co) = n.full_adder(a, b, c);
        n.add_output("out", vec![s, co]);
        for bits in 0..8u32 {
            let (av, bv, cv) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
            let got = n.eval_ints(&[av as u128, bv as u128, cv as u128], "out");
            let total = av + bv + cv;
            assert_eq!(got as u32, total, "a={av} b={bv} c={cv}");
        }
    }

    #[test]
    fn lanes_are_independent() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        let x = n.xor(a, b);
        n.add_output("x", vec![x]);
        // lane0: 0^0, lane1: 1^0, lane2: 0^1, lane3: 1^1
        let sim = n.simulate(&[vec![0b1010], vec![0b1100]]);
        assert_eq!(sim.net(x) & 0xF, 0b0110);
    }

    #[test]
    fn ripple_adder_matches_integer_addition() {
        // 8-bit ripple carry adder built from full adders.
        let mut n = Netlist::new("rca");
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let mut carry = n.const0();
        let mut sum_bits = Vec::new();
        for i in 0..8 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            sum_bits.push(s);
            carry = c;
        }
        sum_bits.push(carry);
        n.add_output("sum", sum_bits);
        for (x, y) in [(0u128, 0u128), (1, 1), (255, 255), (200, 100), (127, 128)] {
            assert_eq!(n.eval_ints(&[x, y], "sum"), x + y);
        }
    }

    #[test]
    #[should_panic(expected = "input count")]
    fn eval_ints_validates_input_count() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        n.add_output("o", vec![a]);
        n.eval_ints(&[], "o");
    }
}
