//! Structural Verilog export.
//!
//! Emits a single synthesizable module with `assign` statements in
//! topological order, mirroring what the paper's C++ generator hands to
//! Design Compiler.

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};
use std::fmt::Write as _;

impl Netlist {
    /// Renders the netlist as a Verilog-2001 module.
    pub fn to_verilog(&self) -> String {
        let mut s = String::new();
        let mut ports = Vec::new();
        for p in self.inputs() {
            ports.push(p.name.clone());
        }
        for p in self.outputs() {
            ports.push(p.name.clone());
        }
        let _ = writeln!(
            s,
            "module {} ({});",
            sanitize(self.name()),
            ports.join(", ")
        );
        for p in self.inputs() {
            let _ = writeln!(s, "  input [{}:0] {};", p.bits.len() - 1, p.name);
        }
        for p in self.outputs() {
            let _ = writeln!(s, "  output [{}:0] {};", p.bits.len() - 1, p.name);
        }

        // Name map: input bits use port indexing, everything else gets a wire.
        let mut name = vec![String::new(); self.num_nets()];
        for p in self.inputs() {
            for (i, &b) in p.bits.iter().enumerate() {
                name[b.index()] = format!("{}[{}]", p.name, i);
            }
        }
        for cell in self.cells() {
            if cell.kind != GateKind::Input && name[cell.output.index()].is_empty() {
                name[cell.output.index()] = format!("n{}", cell.output.index());
            }
        }
        for cell in self.cells() {
            if cell.kind != GateKind::Input {
                let _ = writeln!(s, "  wire {};", name[cell.output.index()]);
            }
        }
        for cell in self.cells() {
            if cell.kind == GateKind::Input {
                continue;
            }
            let mut expr = cell.kind.verilog_expr().to_string();
            for i in 0..cell.kind.arity() {
                expr = expr.replace(&format!("${i}"), &name[cell.inputs[i].index()]);
            }
            let _ = writeln!(s, "  assign {} = {};", name[cell.output.index()], expr);
        }
        for p in self.outputs() {
            for (i, &b) in p.bits.iter().enumerate() {
                let _ = writeln!(s, "  assign {}[{}] = {};", p.name, i, net_ref(&name, b));
            }
        }
        let _ = writeln!(s, "endmodule");
        s
    }
}

fn net_ref(names: &[String], n: NetId) -> &str {
    &names[n.index()]
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verilog_has_module_ports_and_assigns() {
        let mut n = Netlist::new("adder 1b");
        let a = n.add_input("a", 1);
        let b = n.add_input("b", 1);
        let (s0, c0) = n.half_adder(a[0], b[0]);
        n.add_output("sum", vec![s0, c0]);
        let v = n.to_verilog();
        assert!(v.starts_with("module adder_1b (a, b, sum);"));
        assert!(v.contains("input [0:0] a;"));
        assert!(v.contains("output [1:0] sum;"));
        assert!(v.contains(" ^ "));
        assert!(v.contains(" & "));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn every_gate_kind_renders() {
        use crate::gate::GateKind::*;
        let mut n = Netlist::new("all");
        let a = n.add_input("a", 3);
        for k in [Buf, Not] {
            n.gate(k, &[a[0]]);
        }
        for k in [And2, Or2, Nand2, Nor2, Xor2, Xnor2] {
            n.gate(k, &[a[0], a[1]]);
        }
        let mut outs = Vec::new();
        for k in [Mux2, Maj3, Ao21] {
            outs.push(n.gate(k, &[a[0], a[1], a[2]]));
        }
        let c0 = n.const0();
        let c1 = n.const1();
        outs.push(c0);
        outs.push(c1);
        n.add_output("o", outs);
        let v = n.to_verilog();
        assert!(v.contains("1'b0"));
        assert!(v.contains("1'b1"));
        assert!(v.contains("?"));
    }
}
