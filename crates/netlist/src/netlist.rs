//! Structural netlist representation and builder.
//!
//! A [`Netlist`] is a DAG of single-output cells over nets. Construction is
//! define-before-use: a gate can only read nets that already exist, so the
//! cell list is a valid topological order by construction and combinational
//! loops are impossible. This makes simulation and timing single passes.

use crate::gate::GateKind;
use std::fmt;

/// Handle to a net (a single wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index of the net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One cell instance: a gate driving exactly one net.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Gate function.
    pub kind: GateKind,
    /// Input nets, length = `kind.arity()`.
    pub inputs: [NetId; 3],
    /// Driven net.
    pub output: NetId,
    /// Estimated wire span of each input connection, in bit-column pitches
    /// (≥ 1). Builders that know their geometry — prefix networks,
    /// carry-select blocks — declare how far each operand travels; the
    /// timing and power models charge extra wire capacitance on the read
    /// nets accordingly.
    pub spans: [f64; 3],
}

/// A named output port (a bus of nets, LSB first).
#[derive(Debug, Clone)]
pub struct Port {
    /// Port name as it appears in exported Verilog.
    pub name: String,
    /// Bus bits, least significant first.
    pub bits: Vec<NetId>,
}

/// A combinational gate-level netlist.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    /// Driver cell index per net (cells are in topological order).
    driver: Vec<u32>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl Netlist {
    /// Creates an empty netlist named `name`.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            cells: Vec::new(),
            driver: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            const0: None,
            const1: None,
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All cells in topological order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Declared input ports.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Declared output ports.
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.driver.len()
    }

    /// The cell driving `net`.
    pub fn driver_of(&self, net: NetId) -> &Cell {
        &self.cells[self.driver[net.index()] as usize]
    }

    fn new_net(&mut self, kind: GateKind, inputs: [NetId; 3], spans: [f64; 3]) -> NetId {
        for input in inputs.iter().take(kind.arity()) {
            assert!(
                input.index() < self.driver.len(),
                "gate input {input} is not a defined net"
            );
        }
        let net = NetId(self.driver.len() as u32);
        self.driver.push(self.cells.len() as u32);
        self.cells.push(Cell {
            kind,
            inputs,
            output: net,
            spans: spans.map(|x| x.max(1.0)),
        });
        net
    }

    /// Declares an input bus of `width` bits (LSB first) and returns its
    /// nets.
    pub fn add_input(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let z = NetId(0); // dummy padding, never read for arity-0 cells
        let bits: Vec<NetId> = (0..width)
            .map(|_| self.new_net(GateKind::Input, [z; 3], [1.0; 3]))
            .collect();
        self.inputs.push(Port {
            name: name.into(),
            bits: bits.clone(),
        });
        bits
    }

    /// Declares an output bus. Bits are LSB first.
    pub fn add_output(&mut self, name: impl Into<String>, bits: Vec<NetId>) {
        for &b in &bits {
            assert!(b.index() < self.driver.len(), "output bit {b} undefined");
        }
        self.outputs.push(Port {
            name: name.into(),
            bits,
        });
    }

    /// The constant-0 net (created on first use, then shared).
    pub fn const0(&mut self) -> NetId {
        if let Some(n) = self.const0 {
            return n;
        }
        let n = self.new_net(GateKind::Const0, [NetId(0); 3], [1.0; 3]);
        self.const0 = Some(n);
        n
    }

    /// The constant-1 net (created on first use, then shared).
    pub fn const1(&mut self) -> NetId {
        if let Some(n) = self.const1 {
            return n;
        }
        let n = self.new_net(GateKind::Const1, [NetId(0); 3], [1.0; 3]);
        self.const1 = Some(n);
        n
    }

    /// Adds a gate and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if `ins` has the wrong length for `kind` or references an
    /// undefined net.
    pub fn gate(&mut self, kind: GateKind, ins: &[NetId]) -> NetId {
        assert_eq!(ins.len(), kind.arity(), "wrong input count for {kind}");
        let mut padded = [NetId(0); 3];
        padded[..ins.len()].copy_from_slice(ins);
        self.new_net(kind, padded, [1.0; 3])
    }

    /// Adds a gate declaring, per input pin, how many bit-column pitches
    /// its wire spans (used by builders that know their physical reach,
    /// e.g. a Kogge-Stone level at distance `d` whose lower operand
    /// travels `d` columns). Spans are clamped to at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `ins`/`spans` have the wrong length for `kind` or `ins`
    /// references an undefined net.
    pub fn gate_spanned(&mut self, kind: GateKind, ins: &[NetId], spans: &[f64]) -> NetId {
        assert_eq!(ins.len(), kind.arity(), "wrong input count for {kind}");
        assert_eq!(spans.len(), kind.arity(), "one span per input pin");
        let mut padded = [NetId(0); 3];
        padded[..ins.len()].copy_from_slice(ins);
        let mut sp = [1.0; 3];
        sp[..spans.len()].copy_from_slice(spans);
        self.new_net(kind, padded, sp)
    }

    /// `a ∧ b`
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::And2, &[a, b])
    }
    /// `a ∨ b`
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Or2, &[a, b])
    }
    /// `a ⊕ b`
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xor2, &[a, b])
    }
    /// `¬a`
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Not, &[a])
    }
    /// `¬(a ∧ b)`
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nand2, &[a, b])
    }
    /// `¬(a ∨ b)`
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nor2, &[a, b])
    }
    /// `¬(a ⊕ b)`
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xnor2, &[a, b])
    }
    /// `sel ? hi : lo`
    pub fn mux(&mut self, sel: NetId, lo: NetId, hi: NetId) -> NetId {
        self.gate(GateKind::Mux2, &[sel, lo, hi])
    }
    /// 3-input majority.
    pub fn maj3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.gate(GateKind::Maj3, &[a, b, c])
    }
    /// `a ∨ (b ∧ c)`
    pub fn ao21(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.gate(GateKind::Ao21, &[a, b, c])
    }

    /// Full adder on `(a, b, cin)`; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let carry = self.maj3(a, b, cin);
        (sum, carry)
    }

    /// Half adder on `(a, b)`; returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        let sum = self.xor(a, b);
        let carry = self.and(a, b);
        (sum, carry)
    }

    /// Removes logic cells that are unreachable from any declared output
    /// (dead-logic elimination, as a synthesis tool would). Primary inputs
    /// are always kept so the port list is stable. Returns the number of
    /// cells removed.
    ///
    /// Existing [`NetId`]s are invalidated by this pass; call it only when
    /// construction is finished.
    pub fn prune_dead(&mut self) -> usize {
        // Mark the cone of influence of the outputs.
        let mut live = vec![false; self.driver.len()];
        let mut stack: Vec<NetId> = self
            .outputs
            .iter()
            .flat_map(|p| p.bits.iter().copied())
            .collect();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut live[n.index()], true) {
                continue;
            }
            let cell = &self.cells[self.driver[n.index()] as usize];
            for i in 0..cell.kind.arity() {
                stack.push(cell.inputs[i]);
            }
        }
        // Inputs always survive (ports must not change).
        for p in &self.inputs {
            for b in &p.bits {
                live[b.index()] = true;
            }
        }

        // Compact: rebuild cells in order, remapping net ids.
        let mut remap: Vec<u32> = vec![u32::MAX; self.driver.len()];
        let mut new_cells = Vec::with_capacity(self.cells.len());
        let mut new_driver = Vec::with_capacity(self.driver.len());
        let mut removed = 0usize;
        for cell in &self.cells {
            if !live[cell.output.index()] {
                removed += 1;
                continue;
            }
            let mut c = cell.clone();
            for i in 0..c.kind.arity() {
                let m = remap[c.inputs[i].index()];
                debug_assert_ne!(m, u32::MAX, "live cell reads dead net");
                c.inputs[i] = NetId(m);
            }
            let new_net = NetId(new_driver.len() as u32);
            remap[c.output.index()] = new_net.0;
            c.output = new_net;
            new_driver.push(new_cells.len() as u32);
            new_cells.push(c);
        }
        self.cells = new_cells;
        self.driver = new_driver;
        let remap_net = |n: &mut NetId| *n = NetId(remap[n.index()]);
        for p in &mut self.inputs {
            p.bits.iter_mut().for_each(remap_net);
        }
        for p in &mut self.outputs {
            p.bits.iter_mut().for_each(remap_net);
        }
        self.const0 = self
            .const0
            .and_then(|n| (remap[n.index()] != u32::MAX).then(|| NetId(remap[n.index()])));
        self.const1 = self
            .const1
            .and_then(|n| (remap[n.index()] != u32::MAX).then(|| NetId(remap[n.index()])));
        removed
    }

    /// Fault-injection hook: replaces the gate kind of cell `index`,
    /// returning the previous kind. Used by verification tests to plant
    /// known-bad hardware; the new kind must have the same arity so the
    /// netlist stays well-formed (only its *function* is corrupted).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the arities differ.
    pub fn inject_cell_kind(&mut self, index: usize, kind: GateKind) -> GateKind {
        let cell = &mut self.cells[index];
        assert_eq!(
            cell.kind.arity(),
            kind.arity(),
            "fault injection must preserve arity ({} vs {})",
            cell.kind,
            kind
        );
        std::mem::replace(&mut cell.kind, kind)
    }

    /// Fault-injection hook: rewires input pin `pin` of cell `index` to
    /// `net`. Unlike every builder method this does **not** enforce
    /// define-before-use, so it can create backward references and
    /// combinational cycles — exactly the corruptions
    /// [`Netlist::check`] and the verifier must catch.
    ///
    /// # Panics
    ///
    /// Panics if `index`, `pin`, or `net` is out of range.
    pub fn inject_cell_input(&mut self, index: usize, pin: usize, net: NetId) {
        assert!(net.index() < self.driver.len(), "unknown net {net}");
        let cell = &mut self.cells[index];
        assert!(pin < cell.kind.arity(), "pin {pin} out of range");
        cell.inputs[pin] = net;
    }

    /// Total cell area (sum of per-gate areas).
    pub fn area(&self) -> f64 {
        self.cells.iter().map(|c| c.kind.area()).sum()
    }

    /// Gate count per kind, for reports.
    pub fn gate_histogram(&self) -> Vec<(GateKind, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for c in &self.cells {
            map.entry(format!("{}", c.kind))
                .or_insert((c.kind, 0usize))
                .1 += 1;
        }
        map.into_values().collect()
    }

    /// Number of logic cells (excluding inputs and constants).
    pub fn num_gates(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| {
                !matches!(
                    c.kind,
                    GateKind::Input | GateKind::Const0 | GateKind::Const1
                )
            })
            .count()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist {}: {} nets, {} gates, area {:.1}",
            self.name,
            self.num_nets(),
            self.num_gates(),
            self.area()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_before_use_is_enforced() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1);
        // A net id from the future:
        let bogus = NetId(99);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut n2 = n.clone();
            n2.and(a[0], bogus);
        }));
        assert!(result.is_err());
        let _ = n.const0();
    }

    #[test]
    fn constants_are_shared() {
        let mut n = Netlist::new("t");
        let c0a = n.const0();
        let c0b = n.const0();
        assert_eq!(c0a, c0b);
        assert_eq!(n.num_nets(), 1);
    }

    #[test]
    fn full_adder_structure() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        let c = n.add_input("c", 1)[0];
        let (s, co) = n.full_adder(a, b, c);
        n.add_output("s", vec![s]);
        n.add_output("co", vec![co]);
        assert_eq!(n.num_gates(), 3); // xor, xor, maj
        assert!(n.area() > 0.0);
    }

    #[test]
    fn prune_removes_dead_cells_and_preserves_function() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 2);
        let live = n.xor(a[0], a[1]);
        let dead1 = n.and(a[0], a[1]);
        let _dead2 = n.or(dead1, a[0]);
        n.add_output("o", vec![live]);
        assert_eq!(n.prune_dead(), 2);
        assert!(n.check().is_empty());
        assert_eq!(n.eval_ints(&[0b01, 0], "o") & 1, 1);
        assert_eq!(n.eval_ints(&[0b11, 0], "o") & 1, 0);
    }

    #[test]
    fn prune_keeps_inputs_and_is_idempotent() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 3);
        let x = n.and(a[0], a[1]); // a[2] never used but stays a port
        n.add_output("o", vec![x]);
        assert_eq!(n.prune_dead(), 0);
        assert_eq!(n.prune_dead(), 0);
        assert_eq!(n.inputs()[0].bits.len(), 3);
    }

    #[test]
    fn prune_drops_unused_constants() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1);
        let _c = n.const1();
        n.add_output("o", vec![a[0]]);
        n.prune_dead();
        // const1 was dead; asking again must recreate it safely.
        let c2 = n.const1();
        n.add_output("one", vec![c2]);
        assert_eq!(n.eval_ints(&[0], "one"), 1);
    }

    #[test]
    fn histogram_counts_kinds() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 2);
        n.and(a[0], a[1]);
        n.and(a[0], a[1]);
        n.xor(a[0], a[1]);
        let h = n.gate_histogram();
        let and_count = h
            .iter()
            .find(|(k, _)| *k == GateKind::And2)
            .map(|(_, c)| *c)
            .unwrap();
        assert_eq!(and_count, 2);
    }
}
