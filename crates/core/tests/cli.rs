//! End-to-end tests of the `gomil` CLI binary.

use std::process::Command;

fn gomil(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gomil"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn info_prints_paper_defaults() {
    let out = gomil(&["info"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("w = 8"));
    assert!(text.contains("L = 10"));
}

#[test]
fn prefix_solves_example_1() {
    let out = gomil(&["prefix", "2", "2", "1", "2", "1", "1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("area  = 16"));
    assert!(text.contains("delay = 5"));
}

#[test]
fn gen_writes_verilog_to_stdout() {
    let out = gomil(&["gen", "4"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("module "));
    assert!(text.contains("output [7:0] p;"));
    let log = String::from_utf8_lossy(&out.stderr);
    // The equivalence gate proves m = 4 exhaustively and says so.
    assert!(log.contains("equivalence:"), "{log}");
    assert!(log.contains("proved"), "{log}");
    assert!(log.contains("verdict:"), "{log}");
}

#[test]
fn gen_verify_off_reports_a_skipped_verdict() {
    let out = gomil(&["gen", "4", "--verify", "off"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("skipped"), "{log}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = gomil(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
